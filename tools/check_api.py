#!/usr/bin/env python3
"""Check that the docs match the actual public API (used by CI).

Four contracts are enforced, all both ways:

* every name in ``repro.api.__all__`` appears in the marked *surface*
  block of ``docs/api.md``, and the block documents no stale names,
* every CLI command path (``repro analyze``, ``repro cache stats``, …)
  derived from the real argument parser appears in the marked *cli*
  block, and the block documents no removed commands,
* every HTTP route of the analysis service daemon
  (``repro.service.server.ROUTES``) appears in the marked *endpoints*
  block of ``docs/service.md``, and the block documents no removed
  endpoints,
* every HTTP route of the cluster coordinator
  (``repro.service.coordinator.ROUTES``) appears in the marked
  *coordinator-endpoints* block of the same file, likewise both ways,
* every HTTP route of the asyncio gateway
  (``repro.service.gateway.ROUTES``) appears in the marked
  *gateway-endpoints* block of the same file, likewise both ways —
  which also catches a server route added without gateway coverage,
  since the gateway declares its surface as the server's route set.

Exits non-zero listing each mismatch, so an API change that forgets the
docs — or docs that promise an API that does not exist — fails the docs
job instead of shipping.

Usage::

    python tools/check_api.py [repo-root]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: inline code spans inside a marker block
CODE_SPAN_RE = re.compile(r"`([^`]+)`")

#: an HTTP endpoint declaration: method + path (other spans in the
#: endpoints block — query parameters, JSON examples — are prose)
ENDPOINT_RE = re.compile(r"^(GET|POST|PUT|PATCH|DELETE) /\S+$")


def marker_block(text: str, name: str, path: Path) -> str:
    """The contents of a ``<!-- check_api:NAME -->`` block in ``text``."""
    match = re.search(
        rf"<!--\s*check_api:{name}\s*-->(.*?)<!--\s*/check_api:{name}\s*-->",
        text, re.DOTALL)
    if match is None:
        raise SystemExit(f"{path}: missing '<!-- check_api:{name} -->' block")
    return match.group(1)


def documented_surface(text: str, path: Path) -> set[str]:
    """The public names documented in the api.md surface block."""
    return set(CODE_SPAN_RE.findall(marker_block(text, "surface", path)))


def documented_commands(text: str, path: Path) -> set[str]:
    """The ``repro ...`` command paths documented in the api.md cli block.

    Spans carrying flags (``repro analyze --batch``) are example
    invocations, not command-path declarations, and are skipped.
    """
    commands = set()
    for span in CODE_SPAN_RE.findall(marker_block(text, "cli", path)):
        if not span.startswith("repro "):
            continue
        if any(part.startswith("-") for part in span.split()):
            continue
        commands.add(span.removeprefix("repro ").strip())
    return commands


def documented_endpoints(text: str, path: Path,
                         block: str = "endpoints") -> set[str]:
    """The ``METHOD /path`` endpoints documented in a service.md block."""
    return {span for span in CODE_SPAN_RE.findall(marker_block(text, block, path))
            if ENDPOINT_RE.match(span)}


def actual_endpoints() -> set[str]:
    """Every HTTP route the analysis service daemon actually serves."""
    from repro.service.server import ROUTES

    return {f"{method} {route}" for method, route in ROUTES}


def actual_coordinator_endpoints() -> set[str]:
    """Every HTTP route the cluster coordinator actually serves."""
    from repro.service.coordinator import ROUTES

    return {f"{method} {route}" for method, route in ROUTES}


def actual_gateway_endpoints() -> set[str]:
    """Every HTTP route the asyncio gateway front end actually serves."""
    from repro.service.gateway import ROUTES

    return {f"{method} {route}" for method, route in ROUTES}


def actual_workload_endpoints() -> set[str]:
    """The workload/cancel/query routes shared by every front end."""
    from repro.service.workloads import ROUTES

    return {f"{method} {route}" for method, route in ROUTES}


def actual_surface() -> set[str]:
    """The names ``repro.api`` actually exports."""
    import repro.api

    return set(repro.api.__all__)


def _walk_commands(parser: argparse.ArgumentParser, prefix: str = "") -> set[str]:
    subparsers = [action for action in parser._actions
                  if isinstance(action, argparse._SubParsersAction)]
    if not subparsers:
        return {prefix} if prefix else set()
    commands: set[str] = set()
    for action in subparsers:
        for name, child in action.choices.items():
            path = f"{prefix} {name}".strip()
            commands |= _walk_commands(child, path)
    return commands


def actual_commands() -> set[str]:
    """Every leaf command path of the real ``repro`` argument parser."""
    from repro.cli import build_parser

    return _walk_commands(build_parser())


def check(kind: str, documented: set[str], actual: set[str],
          where: str = "docs/api.md") -> list[str]:
    """Mismatch messages between the documented and the actual set."""
    problems = []
    for name in sorted(actual - documented):
        problems.append(f"{where}: {kind} {name!r} exists but is undocumented")
    for name in sorted(documented - actual):
        problems.append(f"{where}: {kind} {name!r} is documented but does not exist")
    return problems


def main(argv: list[str]) -> int:
    """Check both surfaces; returns a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    sys.path.insert(0, str(root / "src"))
    path = root / "docs" / "api.md"
    text = path.read_text(encoding="utf-8")
    problems = check("public name", documented_surface(text, path), actual_surface())
    problems += check("CLI command", documented_commands(text, path), actual_commands())
    service_path = root / "docs" / "service.md"
    service_text = service_path.read_text(encoding="utf-8")
    # the workload block documents the routes every front end shares, so
    # the per-front blocks only carry their front-specific endpoints
    workload_documented = documented_endpoints(service_text, service_path,
                                               "workload-endpoints")
    problems += check("workload endpoint", workload_documented,
                      actual_workload_endpoints(), where="docs/service.md")
    problems += check("service endpoint",
                      documented_endpoints(service_text, service_path)
                      | workload_documented,
                      actual_endpoints(), where="docs/service.md")
    problems += check("coordinator endpoint",
                      documented_endpoints(service_text, service_path,
                                           "coordinator-endpoints")
                      | workload_documented,
                      actual_coordinator_endpoints(), where="docs/service.md")
    problems += check("gateway endpoint",
                      documented_endpoints(service_text, service_path,
                                           "gateway-endpoints")
                      | workload_documented,
                      actual_gateway_endpoints(), where="docs/service.md")
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(actual_surface())} public names, "
          f"{len(actual_commands())} CLI commands, and "
          f"{len(actual_endpoints()) + len(actual_coordinator_endpoints()) + len(actual_gateway_endpoints())} "
          f"service endpoints against the docs: "
          f"{len(problems)} mismatch(es)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
