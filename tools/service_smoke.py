#!/usr/bin/env python3
"""End-to-end smoke of the analysis service daemon (used by CI).

Exercises the *real* deployment shape — a ``repro serve`` subprocess on
a free loopback port — rather than an in-process server:

1. start the daemon (``--port 0``) and parse the bound URL from stdout,
2. ingest a small synthetic contract corpus over ``POST /v1/corpus``,
3. submit ``ccd`` + ``ccc`` jobs and assert their results,
4. assert stream/poll parity and the /v1/stats counters,
5. SIGTERM the daemon and assert a clean exit (code 0),
6. restart it over the same data directory and assert the index
   reloaded (durability smoke).

Exits non-zero with a diagnostic on the first failed step.

Usage::

    python tools/service_smoke.py [repo-root]
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path


def start_daemon(root: Path, data_dir: str) -> tuple:
    """Start ``repro serve`` on a free port; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir", data_dir,
         "--port", "0", "--backend", "thread"],
        cwd=root, env={**os.environ, "PYTHONPATH": str(root / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline().strip()
    if "http://" not in line:
        process.kill()
        raise SystemExit(f"daemon did not announce a URL, said: {line!r}")
    url = next(part for part in line.split() if part.startswith("http://"))
    print(f"daemon up: {line}")
    return process, url


def stop_daemon(process: subprocess.Popen) -> None:
    """SIGTERM the daemon and assert a clean, prompt exit."""
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("daemon did not shut down within 30s of SIGTERM")
    if code != 0:
        raise SystemExit(f"daemon exited with code {code} on SIGTERM")
    print("daemon shut down cleanly")


def main(argv: list[str]) -> int:
    """Run the smoke sequence; returns a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    sys.path.insert(0, str(root / "src"))
    from repro.datasets.sanctuary import generate_sanctuary
    from repro.datasets.snippets import generate_qa_corpus
    from repro.service import ServiceClient

    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [[contract.address, contract.source]
                 for contract in sanctuary.contracts]
    snippets = [[snippet.snippet_id, snippet.text]
                for post in qa_corpus.posts for snippet in post.snippets][:8]

    with tempfile.TemporaryDirectory() as data_dir:
        process, url = start_daemon(root, data_dir)
        try:
            client = ServiceClient(url)
            assert client.healthz()["status"] == "ok"

            summary = client.ingest(contracts)
            assert summary["ingested"] > 0, summary
            print(f"ingested {summary['ingested']} contracts "
                  f"({summary['shards_rewritten']} shard(s) written)")

            job = client.submit(snippets, analyses=["ccd", "ccc"])
            finished = client.wait(job["id"], timeout=120.0)
            results = finished["results"]
            assert finished["job"]["state"] == "done"
            assert len(results) == 2 * len(snippets), len(results)
            ccd = [r for r in results if r["analyzer"] == "ccd"]
            ccc = [r for r in results if r["analyzer"] == "ccc"]
            assert len(ccd) == len(ccc) == len(snippets)
            matched = sum(1 for r in ccd if r["payload"])
            flagged = sum(1 for r in ccc if r["payload"]
                          and r["payload"].get("findings"))
            print(f"job {job['id']}: {matched}/{len(snippets)} snippets "
                  f"clone-matched, {flagged} flagged vulnerable")
            assert matched > 0, "no snippet matched the ingested corpus"

            streamed = list(client.stream(job["id"]))
            assert streamed == results, "stream/poll results diverge"

            stats = client.stats()
            assert stats["jobs"]["done"] >= 1, stats["jobs"]
            assert stats["index"]["documents"] == summary["documents"]
            print(f"stats: {stats['jobs']['done']} done, index "
                  f"{stats['index']['documents']} documents, store hit rate "
                  f"{stats['store']['hit_rate']:.1%}")
        finally:
            stop_daemon(process)

        # durability: a second daemon over the same data dir has the index
        process, url = start_daemon(root, data_dir)
        try:
            stats = ServiceClient(url).stats()
            assert stats["index"]["documents"] == len(contracts), stats["index"]
            print(f"restart: index reloaded with "
                  f"{stats['index']['documents']} documents")
        finally:
            stop_daemon(process)

    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
