"""Stdlib load generator for the analysis service daemon.

Drives ``POST /v1/jobs`` against a running daemon (threaded or asyncio
front end) from N concurrent clients, each on its own keep-alive
connection, and reports what admission control did to them:

* **closed loop** (default): every client fires its next request the
  moment the previous response lands — the classic saturation probe.
* **open loop** (``--mode open --rate R``): arrivals are scheduled at R
  requests/second spread across the clients, independent of response
  times, so queueing delay shows up as latency instead of back-off.

Each request picks a tenant from the configured weights (sent as
``X-Repro-Tenant``) and a lane (``--interactive-fraction`` of requests
submit ``priority: interactive``).  Every response is tallied by status
code — 202 accepted, 429/503 shed — and successful submissions get a
latency sample.  The summary prints throughput, a p50/p95/p99 table and
a log-bucket latency histogram.

Usable as a CLI against any daemon, or imported by the benchmarks::

    from loadgen import run_load
    result = run_load(url, clients=1000, requests_per_client=2)
    print(result.percentile(0.99), result.shed)

Stdlib only; one thread + one pooled ``http.client`` connection per
simulated client.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import statistics
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence
from urllib.parse import urlsplit

#: log-scale latency histogram bucket upper bounds, in seconds
HISTOGRAM_BUCKETS = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
                     0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: a tiny-but-valid Solidity snippet: cheap to analyze, happy in any corpus
DEFAULT_SOURCE = (
    "pragma solidity ^0.4.24;\n"
    "contract Probe {\n"
    "    uint256 public value;\n"
    "    function set(uint256 v) public { value = v; }\n"
    "}\n")


@dataclass
class LoadResult:
    """Everything one load run observed, ready for reporting."""

    wall: float = 0.0
    #: latency samples (seconds) of accepted submissions only
    latencies: list = field(default_factory=list)
    #: HTTP status -> count over every completed request
    status_counts: dict = field(default_factory=dict)
    #: transport-level failures (refused, reset, timed out)
    errors: int = 0
    #: requests that never got a response within the client timeout
    hung: int = 0
    #: per-tenant accepted counts
    accepted_by_tenant: dict = field(default_factory=dict)
    #: per-lane accepted counts
    accepted_by_lane: dict = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Requests that completed with any HTTP status."""
        return sum(self.status_counts.values())

    @property
    def accepted(self) -> int:
        """Submissions the daemon admitted (HTTP 202)."""
        return self.status_counts.get(202, 0)

    @property
    def shed(self) -> int:
        """Submissions shed by admission control (429 + 503)."""
        return self.status_counts.get(429, 0) + self.status_counts.get(503, 0)

    @property
    def jobs_per_sec(self) -> float:
        """Accepted submissions per second of wall time."""
        return self.accepted / self.wall if self.wall > 0 else 0.0

    def percentile(self, fraction: float) -> float:
        """The latency at ``fraction`` (0..1) of accepted submissions."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[max(0, int(len(ordered) * fraction) - 1)]

    def histogram(self) -> list:
        """``(label, count)`` rows over the log-scale latency buckets."""
        counts = [0] * (len(HISTOGRAM_BUCKETS) + 1)
        for sample in self.latencies:
            for index, bound in enumerate(HISTOGRAM_BUCKETS):
                if sample <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        rows = []
        lower = 0.0
        for bound, count in zip(HISTOGRAM_BUCKETS, counts):
            rows.append((f"{lower * 1000:7.1f}-{bound * 1000:7.1f} ms", count))
            lower = bound
        rows.append((f"{lower * 1000:7.1f}+        ms", counts[-1]))
        return rows

    def summary(self) -> dict:
        """The machine-readable row the benchmarks persist."""
        return {
            "wall_seconds": self.wall,
            "requests": self.requests,
            "accepted": self.accepted,
            "shed": self.shed,
            "errors": self.errors,
            "hung": self.hung,
            "jobs_per_sec": self.jobs_per_sec,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "status_counts": {str(code): count
                              for code, count in sorted(self.status_counts.items())},
        }


def _pick_weighted(rng: random.Random, weights: Sequence) -> Optional[str]:
    """One tenant name drawn from ``[(name, weight), ...]`` (or ``None``)."""
    if not weights:
        return None
    total = sum(weight for _, weight in weights)
    mark = rng.uniform(0.0, total)
    for name, weight in weights:
        mark -= weight
        if mark <= 0.0:
            return name
    return weights[-1][0]


def _client_worker(index: int, host: str, port: int, *,
                   requests_per_client: int, interval: float, start_at: float,
                   tenant_weights: Sequence, interactive_fraction: float,
                   analyses: Sequence, source: str, unique: bool, seed: int,
                   timeout: float, result: LoadResult, lock: threading.Lock,
                   barrier: threading.Barrier) -> None:
    """One simulated client: its own connection, its own request schedule."""
    rng = random.Random((seed << 20) ^ index)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        return
    for sequence in range(requests_per_client):
        if interval > 0.0:  # open loop: wait for this arrival's slot
            slot = start_at + (sequence * interval)
            delay = slot - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        tenant = _pick_weighted(rng, tenant_weights)
        lane = ("interactive" if rng.random() < interactive_fraction
                else "batch")
        source_id = (f"probe-{index}-{sequence}" if unique else "probe")
        body = {"sources": [[source_id, source]], "analyses": list(analyses)}
        if lane == "interactive":
            body["priority"] = "interactive"
        headers = {"Content-Type": "application/json"}
        if tenant is not None:
            headers["X-Repro-Tenant"] = tenant
        payload = json.dumps(body)
        started = time.monotonic()
        try:
            connection.request("POST", "/v1/jobs", body=payload, headers=headers)
            response = connection.getresponse()
            response.read()
            status = response.status
            if response.will_close:
                connection.close()
        except TimeoutError:
            connection.close()
            with lock:
                result.hung += 1
            continue
        except (http.client.HTTPException, OSError) as error:
            connection.close()
            if isinstance(error, OSError) and "timed out" in str(error):
                with lock:
                    result.hung += 1
            else:
                with lock:
                    result.errors += 1
            continue
        elapsed = time.monotonic() - started
        with lock:
            result.status_counts[status] = result.status_counts.get(status, 0) + 1
            if status == 202:
                result.latencies.append(elapsed)
                label = tenant or "-"
                result.accepted_by_tenant[label] = (
                    result.accepted_by_tenant.get(label, 0) + 1)
                result.accepted_by_lane[lane] = (
                    result.accepted_by_lane.get(lane, 0) + 1)
    connection.close()


def run_load(url: str, *, clients: int, requests_per_client: int = 1,
             mode: str = "closed", rate: Optional[float] = None,
             tenant_weights: Optional[Sequence] = None,
             interactive_fraction: float = 0.0,
             analyses: Sequence = ("ccd",), source: str = DEFAULT_SOURCE,
             unique: bool = True, seed: int = 0,
             timeout: float = 30.0) -> LoadResult:
    """Run one load test against ``url`` and return its :class:`LoadResult`.

    Parameters
    ----------
    url:
        Base URL of the daemon (``http://host:port``).
    clients:
        Concurrent simulated clients, one thread + connection each.
    requests_per_client:
        ``POST /v1/jobs`` submissions each client issues.
    mode:
        ``closed`` (back-to-back) or ``open`` (scheduled arrivals).
    rate:
        Open-loop total arrival rate in requests/second (required for
        ``mode="open"``; each client fires at ``rate / clients``).
    tenant_weights:
        ``[(tenant, weight), ...]`` mix; ``None`` sends no tenant header.
    interactive_fraction:
        Probability a request submits on the ``interactive`` lane.
    analyses:
        Analyzer ids each job requests.
    source:
        Source text of the single-snippet job body.
    unique:
        Give every request a distinct source id so submissions do not
        coalesce; set ``False`` to measure coalescing on purpose.
    seed:
        Base seed of the per-client tenant/lane choices.
    timeout:
        Per-request client timeout; expiry counts as ``hung``.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown mode: {mode!r} (closed or open)")
    if mode == "open" and (rate is None or rate <= 0):
        raise ValueError("open-loop mode needs a positive --rate")
    parts = urlsplit(url)
    host, port = parts.hostname, parts.port or 80
    interval = (clients / rate) if mode == "open" else 0.0
    result = LoadResult()
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)
    start_at = time.monotonic() + max(0.2, clients / 5000.0)
    workers = [
        threading.Thread(
            target=_client_worker, args=(index, host, port),
            kwargs=dict(requests_per_client=requests_per_client,
                        interval=interval, start_at=start_at,
                        tenant_weights=tenant_weights or (),
                        interactive_fraction=interactive_fraction,
                        analyses=analyses, source=source, unique=unique,
                        seed=seed, timeout=timeout, result=result,
                        lock=lock, barrier=barrier),
            daemon=True, name=f"loadgen-{index}")
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()  # every connection object built; release the herd at once
    started = time.monotonic()
    for worker in workers:
        worker.join()
    result.wall = time.monotonic() - started
    return result


def _parse_tenant_weights(spec: Optional[str]) -> Optional[list]:
    """``"a:3,b:1"`` -> ``[("a", 3.0), ("b", 1.0)]`` (``None`` passthrough)."""
    if not spec:
        return None
    weights = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, weight = item.partition(":")
        weights.append((name, float(weight) if weight else 1.0))
    return weights


def render_result(result: LoadResult, show_histogram: bool = True) -> str:
    """The human-readable summary block the CLI prints."""
    lines = [
        f"requests : {result.requests} completed, {result.errors} transport "
        f"errors, {result.hung} hung (wall {result.wall:.2f}s)",
        f"admitted : {result.accepted} (202) -> {result.jobs_per_sec:.1f} "
        f"jobs/sec",
        f"shed     : {result.shed} "
        f"(429: {result.status_counts.get(429, 0)}, "
        f"503: {result.status_counts.get(503, 0)})",
    ]
    if result.latencies:
        lines.append(
            f"latency  : p50 {result.percentile(0.5) * 1000:.1f} ms, "
            f"p95 {result.percentile(0.95) * 1000:.1f} ms, "
            f"p99 {result.percentile(0.99) * 1000:.1f} ms, "
            f"mean {statistics.fmean(result.latencies) * 1000:.1f} ms")
    if result.accepted_by_tenant:
        mix = ", ".join(f"{tenant}: {count}" for tenant, count
                        in sorted(result.accepted_by_tenant.items()))
        lines.append(f"tenants  : {mix}")
    if result.accepted_by_lane:
        mix = ", ".join(f"{lane}: {count}" for lane, count
                        in sorted(result.accepted_by_lane.items()))
        lines.append(f"lanes    : {mix}")
    if show_histogram and result.latencies:
        lines.append("latency histogram (accepted submissions):")
        peak = max(count for _, count in result.histogram()) or 1
        for label, count in result.histogram():
            if count == 0:
                continue
            bar = "#" * max(1, round(40 * count / peak))
            lines.append(f"  {label} {count:6d} {bar}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="stdlib load generator for the repro analysis daemon")
    parser.add_argument("--url", required=True,
                        help="base URL of the daemon (http://host:port)")
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent clients (default: 50)")
    parser.add_argument("--requests", type=int, default=4,
                        help="submissions per client (default: 4)")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed",
                        help="closed: back-to-back; open: scheduled arrivals")
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop total arrival rate, requests/second")
    parser.add_argument("--tenants", default=None,
                        help="tenant mix as name:weight[,name:weight...]")
    parser.add_argument("--interactive-fraction", type=float, default=0.0,
                        help="fraction of requests on the interactive lane")
    parser.add_argument("--analyses", default="ccd",
                        help="comma-separated analyzer ids (default: ccd)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request client timeout seconds (default: 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed of tenant/lane choices (default: 0)")
    parser.add_argument("--no-histogram", action="store_true",
                        help="skip the latency histogram block")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable summary instead")
    args = parser.parse_args(argv)
    try:
        result = run_load(
            args.url, clients=args.clients, requests_per_client=args.requests,
            mode=args.mode, rate=args.rate,
            tenant_weights=_parse_tenant_weights(args.tenants),
            interactive_fraction=args.interactive_fraction,
            analyses=[item.strip() for item in args.analyses.split(",")
                      if item.strip()],
            seed=args.seed, timeout=args.timeout)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    else:
        print(render_result(result, show_histogram=not args.no_histogram))
    return 0


if __name__ == "__main__":
    sys.exit(main())
