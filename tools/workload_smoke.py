#!/usr/bin/env python3
"""End-to-end smoke of the workload engine (used by CI).

Exercises the *real* deployment shape — a ``repro serve`` subprocess on
a free loopback port — against the headline claims of
``repro.service.workloads``:

1. start the daemon and submit a Figure-9 parameter sweep over
   ``POST /v1/workloads``,
2. **SIGKILL** the daemon mid-sweep (after at least one chunk
   completed, before all did),
3. restart it over the same data directory: crash recovery requeues the
   workload and the run resumes from the completed chunks — asserted on
   unchanged chunk ``finished`` timestamps (provably skipped),
4. assert the merged report is **byte-identical** to the same sweep run
   inline, with no daemon (``canonical_json`` parity),
5. register a custom DSL query over ``POST /v1/queries`` and assert it
   changes ``ccc`` findings identically to local registration,
6. cancel a queued workload and assert the terminal state.

Writes ``workload_smoke.json`` (progress trace + parity verdicts) next
to the data dir or to ``$WORKLOAD_SMOKE_ARTIFACT`` for CI upload.
Exits non-zero with a diagnostic on the first failed step.

Usage::

    python tools/workload_smoke.py [repo-root]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: a sweep big enough to survive a mid-run SIGKILL: 3 x 2 x 3 = 18 cells
SWEEP_PARAMS = {
    "honeypot": {"seed": 7, "counts": {"balance_disorder": 3,
                                       "hidden_transfer": 3,
                                       "skip_empty_string_literal": 3}},
    "ngram_sizes": [2, 3, 4],
    "ngram_thresholds": [0.4, 0.6],
    "similarity_thresholds": [0.5, 0.7, 0.9],
}

QUERY_SPEC = {
    "query_id": "custom-smoke-transfer",
    "category": "Access Control",
    "title": "Ether transfer reachable without access control",
    "select": "ether_transfers",
    "exclude": ["access_controlled"],
}

PAYOUT_SOURCE = """
contract Payout {
    function pay(address to) public { to.transfer(1 ether); }
}
"""


def start_daemon(root: Path, data_dir: str) -> tuple:
    """Start ``repro serve`` on a free port; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir", data_dir,
         "--port", "0", "--backend", "serial"],
        cwd=root, env={**os.environ, "PYTHONPATH": str(root / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline().strip()
    if "http://" not in line:
        process.kill()
        raise SystemExit(f"daemon did not announce a URL, said: {line!r}")
    url = next(part for part in line.split() if part.startswith("http://"))
    print(f"daemon up: {line}")
    return process, url


def stop_daemon(process: subprocess.Popen) -> None:
    """SIGTERM the daemon and assert a clean, prompt exit."""
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("daemon did not shut down within 30s of SIGTERM")
    if code != 0:
        raise SystemExit(f"daemon exited with code {code} on SIGTERM")


def local_sweep_bytes() -> str:
    """The reference report: the same sweep run inline, no daemon."""
    from repro.api.envelope import canonical_json
    from repro.service.workloads import WORKLOADS, WorkloadContext

    workload = WORKLOADS.get("parameter_sweep")
    params = workload.normalize(SWEEP_PARAMS)
    context = WorkloadContext()
    results = [workload.run_chunk(params, spec, context)
               for spec in workload.decompose(params)]
    return canonical_json(workload.merge(params, results))


def main(argv: list[str]) -> int:
    """Run the smoke sequence; returns a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    sys.path.insert(0, str(root / "src"))
    from repro.api import AnalysisSession, SessionConfig, canonical_json
    from repro.ccc.custom import compile_query
    from repro.ccc.registry import register_query, unregister_query
    from repro.service import ServiceClient

    trace: dict = {"steps": []}

    with tempfile.TemporaryDirectory() as data_dir:
        process, url = start_daemon(root, data_dir)
        client = ServiceClient(url)
        submitted = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
        job_id = submitted["id"]
        total = None
        print(f"submitted parameter_sweep as job {job_id}")

        # wait for mid-run: >= 2 chunks done, not all — then SIGKILL
        deadline = time.monotonic() + 120.0
        while True:
            if time.monotonic() > deadline:
                process.kill()
                raise SystemExit("sweep never reached mid-run within 120s")
            progress = client.workload(job_id)["progress"]
            total = progress["total"]
            if 2 <= progress["done"] < total:
                break
            if progress["done"] >= total:
                raise SystemExit(
                    "sweep finished before the kill; enlarge SWEEP_PARAMS")
            time.sleep(0.02)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
        print(f"SIGKILLed the daemon at {progress['done']}/{total} chunks")
        trace["steps"].append({"killed_at": progress})

        # restart over the same data dir: recovery resumes the sweep
        process, url = start_daemon(root, data_dir)
        try:
            client = ServiceClient(url)
            status = client.workload(job_id, chunks=True)
            survivors = {row["chunk"]: row["finished"]
                         for row in status["chunks"]
                         if row["state"] == "done"}
            if not survivors:
                raise SystemExit("no completed chunk survived the crash")
            final = client.wait_workload(job_id, timeout=300.0)
            if final["job"]["state"] != "done":
                raise SystemExit(f"resumed sweep ended {final['job']}")
            rows = {row["chunk"]: row["finished"]
                    for row in client.workload(job_id, chunks=True)["chunks"]}
            skipped = [chunk for chunk, stamp in survivors.items()
                       if rows[chunk] == stamp]
            if not skipped:
                raise SystemExit(
                    "every chunk re-ran after the crash; resume is broken")
            print(f"resume: {len(skipped)}/{total} chunk(s) provably "
                  f"skipped (unchanged finished timestamps)")
            daemon_bytes = canonical_json(final["results"][0])
            if daemon_bytes != local_sweep_bytes():
                raise SystemExit(
                    "merged report diverges from the inline run")
            print("byte parity: resumed daemon report == inline run")
            trace["steps"].append({"resume": {"skipped": len(skipped),
                                              "total": total,
                                              "parity": True}})

            # custom query: local and API registration agree byte-for-byte
            register_query(compile_query(QUERY_SPEC))
            with AnalysisSession(SessionConfig(backend="serial")) as session:
                local = [canonical_json(envelope) for envelope in
                         session.run([("payout", PAYOUT_SOURCE)],
                                     analyses=["ccc"])]
            unregister_query(QUERY_SPEC["query_id"])
            client.register_query(QUERY_SPEC)
            listed = {row["query_id"] for row in client.queries()}
            if QUERY_SPEC["query_id"] not in listed:
                raise SystemExit("registered query missing from the listing")
            job = client.submit([["payout", PAYOUT_SOURCE]],
                                analyses=["ccc"])
            finished = client.wait(job["id"], timeout=120.0)
            daemon = [canonical_json(envelope)
                      for envelope in finished["results"]]
            if daemon != local:
                raise SystemExit("custom query findings diverge from local")
            if QUERY_SPEC["query_id"] not in daemon[0]:
                raise SystemExit("custom query produced no finding")
            print("custom query: daemon findings == local registration")
            trace["steps"].append({"custom_query": {"parity": True}})

            # cancellation: a fresh workload cancelled while queued/running
            extra = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
            outcome = client.cancel(extra["id"])
            final_extra = client.wait_workload(extra["id"], timeout=300.0)
            print(f"cancel: job {extra['id']} -> {outcome['state']} -> "
                  f"{final_extra['job']['state']}")
            if final_extra["job"]["state"] not in ("cancelled", "done"):
                raise SystemExit(f"cancel left {final_extra['job']}")
            trace["steps"].append(
                {"cancel": final_extra["job"]["state"]})
        finally:
            stop_daemon(process)

    artifact = Path(os.environ.get("WORKLOAD_SMOKE_ARTIFACT",
                                   "workload_smoke.json"))
    artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(json.dumps(trace, indent=2), encoding="utf-8")
    print(f"workload smoke: OK (trace: {artifact})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
