#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only, used by CI).

Scans the repository's Markdown files for inline links and validates
every *relative* target (external ``http(s)://`` URLs and anchors are
not fetched).  Exits non-zero listing each broken link, so a renamed
file or a stale cross-reference fails the docs job instead of shipping.

Usage::

    python tools/check_docs.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline Markdown links: [text](target) — images share the syntax
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: directories never scanned for Markdown sources
SKIPPED_DIRECTORIES = {".git", ".github", "node_modules", "__pycache__",
                       ".pytest_cache", ".ruff_cache"}


def markdown_files(root: Path) -> list[Path]:
    """All Markdown files under ``root``, skipping tooling directories."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIPPED_DIRECTORIES for part in path.parts):
            files.append(path)
    return files


def broken_links(path: Path, root: Path) -> list[str]:
    """Broken relative link targets referenced from ``path``."""
    problems = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (root / candidate) if candidate.startswith("/") \
            else (path.parent / candidate)
        if not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    """Check every Markdown file; returns a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files = markdown_files(root)
    problems = [problem for path in files for problem in broken_links(path, root)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
