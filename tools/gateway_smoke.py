#!/usr/bin/env python3
"""End-to-end smoke of the asyncio gateway front end (used by CI).

Exercises the *real* deployment shape — ``repro serve --frontend
asyncio`` subprocesses on free loopback ports — rather than in-process
servers:

1. start one threaded and one asyncio daemon over the same synthetic
   corpus and assert **wire parity**: identical job results (canonical
   envelope bytes) and identical error bodies across an error matrix,
2. assert the gateway block of ``/v1/stats`` reports the asyncio
   front end with live keep-alive counters,
3. restart the asyncio daemon with a tiny ``--max-pending-jobs`` bound
   and drive a ``tools/loadgen.py`` burst into it: every request must
   be *answered* (202 accepted or 429/503 shed with ``Retry-After``) —
   shed load, never hang,
4. SIGTERM both daemons and assert clean exits (code 0).

Exits non-zero with a diagnostic on the first failed step.

Usage::

    python tools/gateway_smoke.py [repo-root]
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from urllib.parse import urlsplit

#: requests whose response bodies must be byte-identical across front ends
ERROR_MATRIX = [
    ("POST", "/v1/jobs", b"not json"),
    ("POST", "/v1/jobs", b"[1, 2]"),
    ("GET", "/v1/nope", None),
    ("GET", "/v1/jobs/not-a-number", None),
    ("GET", "/v1/jobs/999", None),
    ("GET", "/v1/jobs?limit=x", None),
    ("GET", "/v1/jobs?state=nope", None),
]


def start_daemon(root: Path, data_dir: str, *extra_args: str) -> tuple:
    """Start ``repro serve`` on a free port; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir", data_dir,
         "--port", "0", "--backend", "serial", *extra_args],
        cwd=root, env={**os.environ, "PYTHONPATH": str(root / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline().strip()
    if "http://" not in line:
        process.kill()
        raise SystemExit(f"daemon did not announce a URL, said: {line!r}")
    url = next(part for part in line.split() if part.startswith("http://"))
    print(f"daemon up: {line}")
    return process, url


def stop_daemon(process: subprocess.Popen) -> None:
    """SIGTERM the daemon and assert a clean, prompt exit."""
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SystemExit("daemon did not shut down within 30s of SIGTERM")
    if code != 0:
        raise SystemExit(f"daemon exited with code {code} on SIGTERM")
    print("daemon shut down cleanly")


def http_exchange(url: str, method: str, path: str, body=None) -> tuple:
    """One raw request; returns ``(status, body_bytes)``."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=30)
    try:
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def run_job(url: str, contracts, snippets):
    """Ingest + one ccd/ccc job; returns the canonical envelope bytes."""
    from repro.api import canonical_json
    from repro.service import ServiceClient

    client = ServiceClient(url)
    client.wait_ready()
    summary = client.ingest(contracts)
    assert summary["ingested"] > 0, summary
    job = client.submit(snippets, analyses=["ccd", "ccc"])
    finished = client.wait(job["id"], timeout=120.0)
    assert finished["job"]["state"] == "done", finished["job"]
    return [canonical_json(envelope) for envelope in finished["results"]]


def main(argv: list[str]) -> int:
    """Run the smoke sequence; returns a process exit code."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    sys.path.insert(0, str(root / "src"))
    sys.path.insert(0, str(root / "tools"))
    import loadgen
    from repro.datasets.sanctuary import generate_sanctuary
    from repro.datasets.snippets import generate_qa_corpus
    from repro.service import ServiceClient

    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [[contract.address, contract.source]
                 for contract in sanctuary.contracts]
    snippets = [[snippet.snippet_id, snippet.text]
                for post in qa_corpus.posts for snippet in post.snippets][:6]

    with tempfile.TemporaryDirectory() as tmp:
        # -- step 1+2: threaded vs asyncio wire parity --------------------
        threaded, threaded_url = start_daemon(
            root, str(Path(tmp) / "threaded"), "--frontend", "threaded")
        gateway, gateway_url = start_daemon(
            root, str(Path(tmp) / "asyncio"), "--frontend", "asyncio")
        try:
            results = {url: run_job(url, contracts, snippets)
                       for url in (threaded_url, gateway_url)}
            if results[threaded_url] != results[gateway_url]:
                raise SystemExit("job results diverge between front ends")
            print(f"parity: {len(results[gateway_url])} canonical envelopes "
                  f"byte-identical across front ends")

            for method, path, body in ERROR_MATRIX:
                expected = http_exchange(threaded_url, method, path, body)
                actual = http_exchange(gateway_url, method, path, body)
                if actual != expected:
                    raise SystemExit(
                        f"error parity broke on {method} {path}: "
                        f"threaded {expected} vs asyncio {actual}")
            print(f"parity: {len(ERROR_MATRIX)} error bodies byte-identical")

            stats = ServiceClient(gateway_url).stats()["gateway"]
            assert stats["frontend"] == "asyncio", stats
            assert stats["requests"] > 0, stats
            print(f"gateway stats: {stats['requests']} requests over "
                  f"{stats['connections_opened']} connection(s)")
        finally:
            stop_daemon(gateway)
            stop_daemon(threaded)

        # -- step 3: shed under a deliberate burst ------------------------
        gateway, gateway_url = start_daemon(
            root, str(Path(tmp) / "burst"), "--frontend", "asyncio",
            "--max-pending-jobs", "8", "--workers", "1")
        try:
            result = loadgen.run_load(
                gateway_url, clients=64, requests_per_client=2,
                interactive_fraction=0.25, timeout=30.0)
            print(f"burst: {result.requests} requests -> "
                  f"{result.accepted} accepted, {result.shed} shed, "
                  f"{result.errors} errors, {result.hung} hung "
                  f"(p99 {result.percentile(0.99) * 1000.0:.0f} ms)")
            if result.hung or result.errors:
                raise SystemExit("gateway hung or errored under burst load")
            if result.accepted + result.shed != result.requests:
                raise SystemExit("some burst requests went unanswered")
            if not result.shed:
                raise SystemExit(
                    "burst never tripped the 8-job queue bound — "
                    "the shed path went unexercised")
            shed_stats = ServiceClient(gateway_url).stats()["gateway"]["shed"]
            assert shed_stats["queue_full"] > 0, shed_stats
            print(f"shed counters: {json.dumps(shed_stats)}")
        finally:
            stop_daemon(gateway)

    print("gateway smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
