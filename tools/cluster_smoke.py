#!/usr/bin/env python3
"""End-to-end smoke of the sharded cluster (used by CI).

Spawns the *real* deployment shape — one coordinator fronting three
``repro serve`` worker subprocesses on free loopback ports, via the same
harness the cluster tests use (``tests/cluster_harness.py``) — and
asserts the two headline properties:

1. **byte parity** — a ``ccd`` + ``ccc`` job answered by the
   coordinator is byte-identical to the same job against a single
   daemon holding the whole corpus,
2. **degraded completion** — with one worker SIGKILLed mid-flight the
   job still completes, reporting the dead shard explicitly in
   ``fanout.degraded`` (no hang, no silent partial),

then dumps every shard's ``/v1/stats`` (plus the coordinator's
aggregate view) as JSON files for CI to upload as artifacts.

Exits non-zero with a diagnostic on the first failed step.

Usage::

    python tools/cluster_smoke.py [repo-root]

Environment:

* ``CLUSTER_ARTIFACTS_DIR`` — where the per-shard stats dumps land
  (default: ``cluster-artifacts``).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests"))

import cluster_harness  # noqa: E402

from repro.api.envelope import canonical_json  # noqa: E402
from repro.datasets.sanctuary import generate_sanctuary  # noqa: E402
from repro.datasets.snippets import generate_qa_corpus  # noqa: E402
from repro.pipeline.collection import SnippetCollector  # noqa: E402

SHARDS = 3


def corpus():
    """The deterministic synthetic corpus pair shared by the smokes."""
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for snippet in SnippetCollector().collect(qa_corpus).snippets]
    return contracts, snippets


def job_bytes(client, sources, timeout=180.0):
    """Submit a ccd+ccc job and return (canonical lines, job dict)."""
    job = client.submit(sources, analyses=["ccd", "ccc"])
    finished = client.wait(job["id"], timeout=timeout)
    return ([canonical_json(envelope) for envelope in finished["results"]],
            finished["job"])


def single_node_reference(base_dir, contracts, snippets):
    """The reference bytes: one worker daemon holding everything."""
    daemon = cluster_harness.spawn_daemon(base_dir / "single")
    try:
        client = daemon.client()
        client.ingest(contracts)
        lines, _job = job_bytes(client, snippets)
        return lines
    finally:
        daemon.close()


def dump_stats(cluster, artifacts: Path, tag: str) -> None:
    """Write per-shard and coordinator /v1/stats dumps for CI artifacts."""
    artifacts.mkdir(parents=True, exist_ok=True)
    for index, worker in enumerate(cluster.workers):
        path = artifacts / f"CLUSTER_{tag}_shard-{index}_stats.json"
        try:
            stats = worker.client(connect_timeout=0.0).stats()
        except Exception as error:  # noqa: BLE001 — a dead shard is data too
            stats = {"error": f"{type(error).__name__}: {error}"}
        path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")
    path = artifacts / f"CLUSTER_{tag}_coordinator_stats.json"
    path.write_text(
        json.dumps(cluster.client().stats(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {path}")


def main() -> int:
    """Run the cluster smoke; returns a process exit code."""
    artifacts = Path(os.environ.get("CLUSTER_ARTIFACTS_DIR",
                                    "cluster-artifacts")).resolve()
    contracts, snippets = corpus()
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as scratch:
        base_dir = Path(scratch)
        print(f"reference: single daemon, {len(contracts)} contracts, "
              f"{len(snippets)} snippets")
        expected = single_node_reference(base_dir, contracts, snippets)

        print(f"cluster: coordinator + {SHARDS} workers")
        cluster = cluster_harness.spawn_cluster(
            base_dir / "cluster", SHARDS,
            coordinator_extra=("--connect-timeout", "10",
                               "--shard-timeout", "120"))
        try:
            client = cluster.client()
            summary = client.ingest(contracts)
            if summary["documents"] != len(contracts):
                raise SystemExit(f"ingest routed {summary['documents']} of "
                                 f"{len(contracts)} documents")
            print(f"ingest routed: {summary['routed']}")

            merged, job = job_bytes(client, snippets)
            if merged != expected:
                raise SystemExit(
                    "cluster response is not byte-identical to single-node "
                    f"({len(merged)} vs {len(expected)} lines)")
            if job["fanout"]["degraded"]:
                raise SystemExit(f"healthy cluster reported degraded shards: "
                                 f"{job['fanout']['degraded']}")
            print(f"byte parity OK across {SHARDS} shards "
                  f"({len(merged)} envelopes)")
            dump_stats(cluster, artifacts, "healthy")

            # kill one worker, submit again: the job must complete with
            # the dead shard named in the degraded report
            cluster.workers[SHARDS - 1].kill()
            print(f"killed worker shard-{SHARDS - 1} (SIGKILL)")
            degraded_client = cluster.client()
            job = degraded_client.submit(snippets[:4], analyses=["ccd"])
            started = time.monotonic()
            finished = degraded_client.wait(job["id"], timeout=180.0)
            elapsed = time.monotonic() - started
            state = finished["job"]
            if state["state"] != "done":
                raise SystemExit(f"degraded job ended {state['state']!r}: "
                                 f"{state.get('error')}")
            if state["fanout"]["degraded"] != [f"shard-{SHARDS - 1}"]:
                raise SystemExit("degraded report missing the dead shard: "
                                 f"{state['fanout']}")
            print(f"worker-kill job completed in {elapsed:.1f}s with "
                  f"explicit degraded report: {state['fanout']['degraded']}")
            dump_stats(cluster, artifacts, "degraded")
        finally:
            cluster.stop()
    print("cluster smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
