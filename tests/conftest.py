"""Shared fixtures: sample contracts, snippets and small generated corpora."""

from __future__ import annotations

import pytest

from repro.ccc.checker import ContractChecker
from repro.datasets.honeypots import generate_honeypot_corpus
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.smartbugs import generate_smartbugs_corpus
from repro.datasets.snippets import generate_qa_corpus


VULNERABLE_WALLET = """
pragma solidity ^0.4.24;

contract Wallet {
    address owner;
    mapping(address => uint) balances;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        balances[msg.sender] += msg.value;
    }

    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }

    function kill() public {
        selfdestruct(msg.sender);
    }

    modifier onlyOwner() {
        require(msg.sender == owner, "Not owner");
        _;
    }
}
"""

SAFE_WALLET = """
pragma solidity ^0.8.0;

contract SafeWallet {
    address owner;
    mapping(address => uint) balances;

    constructor() { owner = msg.sender; }

    modifier onlyOwner() {
        require(msg.sender == owner, "Not owner");
        _;
    }

    function deposit() public payable {
        balances[msg.sender] += msg.value;
    }

    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount, "insufficient");
        balances[msg.sender] -= amount;
        payable(msg.sender).transfer(amount);
    }

    function kill() public onlyOwner {
        selfdestruct(payable(owner));
    }
}
"""

REENTRANCY_SNIPPET = """
function withdraw(uint amount) {
    require(balances[msg.sender] >= amount)
    msg.sender.call.value(amount)();
    balances[msg.sender] -= amount;
}
"""

STATEMENT_SNIPPET = """
msg.sender.call.value(amount)();
balances[msg.sender] -= amount;
"""

JAVASCRIPT_SNIPPET = """
const Web3 = require('web3');
const web3 = new Web3('http://localhost:8545');
web3.eth.getBalance(account).then(console.log);
"""

PROSE_SNIPPET = """
I think you should first check how much money the caller has and then
stop the whole thing early if there is not enough left over, no?
"""


@pytest.fixture(scope="session")
def checker():
    return ContractChecker(timeout=30.0)


@pytest.fixture(scope="session")
def vulnerable_wallet_source():
    return VULNERABLE_WALLET


@pytest.fixture(scope="session")
def safe_wallet_source():
    return SAFE_WALLET


@pytest.fixture(scope="session")
def reentrancy_snippet():
    return REENTRANCY_SNIPPET


@pytest.fixture(scope="session")
def statement_snippet():
    return STATEMENT_SNIPPET


@pytest.fixture(scope="session")
def javascript_snippet():
    return JAVASCRIPT_SNIPPET


@pytest.fixture(scope="session")
def prose_snippet():
    return PROSE_SNIPPET


@pytest.fixture(scope="session")
def small_qa_corpus():
    """A small but structurally complete Q&A corpus."""
    return generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 25, "ethereum.stackexchange": 60})


@pytest.fixture(scope="session")
def small_sanctuary(small_qa_corpus):
    return generate_sanctuary(small_qa_corpus, seed=11, independent_contracts=25)


@pytest.fixture(scope="session")
def small_smartbugs_corpus():
    """A reduced labelled corpus that keeps every category present."""
    from repro.ccc.dasp import DaspCategory

    counts = {
        DaspCategory.ACCESS_CONTROL: 6,
        DaspCategory.ARITHMETIC: 6,
        DaspCategory.BAD_RANDOMNESS: 6,
        DaspCategory.DENIAL_OF_SERVICE: 4,
        DaspCategory.FRONT_RUNNING: 3,
        DaspCategory.REENTRANCY: 6,
        DaspCategory.SHORT_ADDRESSES: 1,
        DaspCategory.TIME_MANIPULATION: 3,
        DaspCategory.UNCHECKED_LOW_LEVEL_CALLS: 8,
    }
    return generate_smartbugs_corpus(seed=13, label_counts=counts)


@pytest.fixture(scope="session")
def small_honeypot_corpus():
    counts = {
        "balance_disorder": 4,
        "type_deduction_overflow": 3,
        "hidden_transfer": 4,
        "unexecuted_call": 3,
        "uninitialised_struct": 4,
        "hidden_state_update": 6,
        "inheritance_disorder": 4,
        "skip_empty_string_literal": 3,
        "straw_man_contract": 4,
    }
    return generate_honeypot_corpus(seed=7, counts=counts)
