"""Kill-and-resume study tests: checkpoint durability and warm-cache reruns."""

import pytest

from repro.core.persistence import DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import (
    StudyCheckpoint,
    StudyCheckpointError,
    StudyConfiguration,
    VulnerableCodeReuseStudy,
    render_study_report,
)
from repro.pipeline.checkpoint import CHECKPOINT_FORMAT_VERSION


@pytest.fixture(scope="module")
def corpora():
    qa = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 10, "ethereum.stackexchange": 20})
    sanctuary = generate_sanctuary(qa, seed=11, independent_contracts=10)
    return qa, sanctuary.contracts


def make_configuration(**overrides):
    settings = dict(validation_timeout_seconds=15.0,
                    snippet_analysis_timeout_seconds=10.0,
                    checkpoint_chunk_size=6)
    settings.update(overrides)
    return StudyConfiguration(**settings)


@pytest.fixture(scope="module")
def reference(corpora):
    qa, contracts = corpora
    with VulnerableCodeReuseStudy(make_configuration()) as study:
        return study.run(qa, contracts)


class KilledMidStage(Exception):
    pass


def outcome_fields(result):
    """Validation outcomes minus wall-clock timing (measurement, not result)."""
    return [{name: value for name, value in vars(outcome).items()
             if name != "elapsed_seconds"}
            for outcome in result.validation.outcomes]


# ---------------------------------------------------------------------------
# StudyCheckpoint unit behavior
# ---------------------------------------------------------------------------

class TestStudyCheckpoint:
    def test_fresh_directory_starts_pending(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        assert [row["state"] for row in checkpoint.summary()] == ["pending"] * 4

    def test_stage_roundtrip(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        checkpoint.save_stage("collection", {"x": 1})
        assert checkpoint.is_complete("collection")
        assert StudyCheckpoint(tmp_path / "ck").load_stage("collection") == {"x": 1}

    def test_corrupt_stage_payload_demotes_to_pending(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        checkpoint.save_stage("collection", {"x": 1})
        (tmp_path / "ck" / "stage-collection.pkl").write_bytes(b"garbage")
        reopened = StudyCheckpoint(tmp_path / "ck")
        assert reopened.load_stage("collection") is None
        assert not reopened.is_complete("collection")

    def test_chunk_prefix_replay(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        checkpoint.save_chunk("checking", 0, ["a"], total=3)
        checkpoint.save_chunk("checking", 1, ["b"], total=3)
        assert checkpoint.stage_state("checking")["state"] == "partial"
        assert checkpoint.load_chunks("checking") == [["a"], ["b"]]
        checkpoint.save_chunk("checking", 2, ["c"], total=3)
        assert checkpoint.is_complete("checking")

    def test_corrupt_chunk_truncates_replay(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        for index in range(3):
            checkpoint.save_chunk("checking", index, [index], total=4)
        (tmp_path / "ck" / "stage-checking.chunk-0001.pkl").write_bytes(b"garbage")
        assert StudyCheckpoint(tmp_path / "ck").load_chunks("checking") == [[0]]

    def test_metadata_roundtrip(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "ck")
        checkpoint.update_metadata(corpus={"seed": 3})
        assert StudyCheckpoint(tmp_path / "ck").metadata["corpus"] == {"seed": 3}

    def test_format_version_mismatch_raises(self, tmp_path):
        directory = tmp_path / "ck"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            f'{{"format_version": {CHECKPOINT_FORMAT_VERSION + 1}, "stages": {{}}}}')
        with pytest.raises(StudyCheckpointError):
            StudyCheckpoint(directory)


# ---------------------------------------------------------------------------
# kill-and-resume
# ---------------------------------------------------------------------------

class TestKillAndResume:
    @pytest.mark.parametrize("kill_stage,kill_after", [
        ("checking", 1),       # killed during CCC snippet analysis
        ("validation", 1),     # killed during candidate validation
        ("clone_mapping", 1),  # killed right after clone mapping completed
    ])
    def test_resume_is_byte_identical(self, tmp_path, corpora, reference,
                                      kill_stage, kill_after):
        qa, contracts = corpora
        directory = tmp_path / "ck"
        seen = {"count": 0}

        def killer(stage, done, total):
            if stage == kill_stage:
                seen["count"] += 1
                if seen["count"] >= kill_after:
                    raise KilledMidStage()

        with pytest.raises(KilledMidStage):
            with VulnerableCodeReuseStudy(make_configuration()) as study:
                study.run(qa, contracts, checkpoint=StudyCheckpoint(directory),
                          progress=killer)

        with VulnerableCodeReuseStudy(make_configuration()) as study:
            resumed = study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))

        assert render_study_report(resumed).encode() == \
            render_study_report(reference).encode()
        assert resumed.funnel() == reference.funnel()
        assert resumed.dasp_distribution() == reference.dasp_distribution()
        assert outcome_fields(resumed) == outcome_fields(reference)

    def test_resume_skips_replayed_chunks(self, tmp_path, corpora):
        qa, contracts = corpora
        directory = tmp_path / "ck"
        seen = {"count": 0}

        def killer(stage, done, total):
            if stage == "checking":
                seen["count"] += 1
                if seen["count"] >= 3:
                    raise KilledMidStage()

        with pytest.raises(KilledMidStage):
            with VulnerableCodeReuseStudy(make_configuration()) as study:
                study.run(qa, contracts, checkpoint=StudyCheckpoint(directory),
                          progress=killer)
        state = StudyCheckpoint(directory).stage_state("checking")
        assert state["state"] == "partial" and state["chunks"] >= 2

        with VulnerableCodeReuseStudy(make_configuration()) as study:
            analyzed = []
            original = study.checker.analyze

            def counting(source, **kwargs):
                analyzed.append(source)
                return original(source, **kwargs)

            study.checker.analyze = counting
            resumed = study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))
        total_snippets = resumed.collection.total_funnel.unique
        replayed = state["chunks"] * make_configuration().checkpoint_chunk_size
        assert len(analyzed) == total_snippets - replayed

    def test_fully_checkpointed_resume_recomputes_nothing(self, tmp_path, corpora,
                                                          reference):
        qa, contracts = corpora
        directory = tmp_path / "ck"
        with VulnerableCodeReuseStudy(make_configuration()) as study:
            study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))
        with VulnerableCodeReuseStudy(make_configuration()) as study:
            replayed = study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))
            # every stage replayed from disk: nothing was parsed at all
            assert study.store.stats.parse_calls == 0
            assert study.store.stats.lookups == 0
        assert render_study_report(replayed).encode() == \
            render_study_report(reference).encode()

    def test_resume_with_different_configuration_is_refused(self, tmp_path, corpora):
        qa, contracts = corpora
        directory = tmp_path / "ck"
        with VulnerableCodeReuseStudy(make_configuration()) as study:
            study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))
        with pytest.raises(StudyCheckpointError):
            with VulnerableCodeReuseStudy(
                    make_configuration(similarity_threshold=0.7)) as study:
                study.run(qa, contracts, checkpoint=StudyCheckpoint(directory))

    def test_progress_reports_all_stages(self, tmp_path, corpora):
        qa, contracts = corpora
        events = []
        with VulnerableCodeReuseStudy(make_configuration()) as study:
            study.run(qa, contracts, progress=lambda *event: events.append(event))
        stages = {stage for stage, _, _ in events}
        assert stages == {"collection", "clone_mapping", "checking", "validation"}
        # chunked stages count up to their totals
        checking = [event for event in events if event[0] == "checking"]
        assert checking[-1][1] == checking[-1][2]


# ---------------------------------------------------------------------------
# warm disk-cache reruns
# ---------------------------------------------------------------------------

class TestWarmCacheRerun:
    def test_warm_rerun_performs_zero_parses(self, tmp_path, corpora, reference):
        qa, contracts = corpora
        cache = tmp_path / "cache"
        with VulnerableCodeReuseStudy(
                make_configuration(artifact_cache_dir=str(cache))) as study:
            cold = study.run(qa, contracts)
            assert study.store.stats.parse_calls > 0
            study.store.close()
        with VulnerableCodeReuseStudy(
                make_configuration(artifact_cache_dir=str(cache))) as study:
            warm = study.run(qa, contracts)
            stats = study.store.stats
            assert stats.parse_calls == 0
            assert stats.cpg_builds == 0
            assert stats.fingerprint_builds == 0
            assert stats.disk_hits > 0
            study.store.close()
        assert render_study_report(warm).encode() == \
            render_study_report(cold).encode() == \
            render_study_report(reference).encode()

    def test_incremental_rerun_parses_only_new_sources(self, tmp_path, corpora):
        qa, contracts = corpora
        cache = tmp_path / "cache"
        with VulnerableCodeReuseStudy(
                make_configuration(artifact_cache_dir=str(cache))) as study:
            study.run(qa, contracts)
            study.store.close()
        extra = generate_sanctuary(
            generate_qa_corpus(seed=99, posts_per_site={"stackoverflow": 2}),
            seed=7, independent_contracts=3)
        known = {contract.source for contract in contracts}
        new_sources = [contract for contract in extra.contracts
                       if contract.source not in known]
        with VulnerableCodeReuseStudy(
                make_configuration(artifact_cache_dir=str(cache))) as study:
            study.run(qa, contracts + new_sources)
            # only the genuinely new contract sources were parsed
            assert 0 < study.store.stats.parse_calls <= len(new_sources)
            study.store.close()
