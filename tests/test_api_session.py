"""Tests for the unified ``repro.api`` analysis session and registry.

Acceptance criteria of the API redesign:

* ``session.run_iter`` streams per-contract ``AnalysisResult`` envelopes
  for a ccd+ccc run under the serial, thread, and process backends with
  byte-identical canonical output to batch ``session.run``,
* each unique source is parsed exactly once per session,
* analyzers are pluggable through the registry decorator.
"""

from __future__ import annotations

import pickle
import types

import pytest

from repro.api import (
    AnalysisRequest,
    AnalysisSession,
    Analyzer,
    AnalyzerRegistry,
    REGISTRY,
    SessionConfig,
    as_request,
    canonicalize,
    register_analyzer,
)
from repro.ccc.checker import AnalysisResult as CccResult
from repro.core.executor import BACKENDS
from repro.core.persistence import DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline.collection import SnippetCollector
from repro.pipeline.temporal import TemporalCategories

REENTRANT = """
contract Wallet {
    mapping(address => uint) balances;
    function withdraw() public {
        uint amount = balances[msg.sender];
        msg.sender.call{value: amount}("");
        balances[msg.sender] = 0;
    }
}
"""

TIMESTAMP = """
contract Lottery {
    function draw() public {
        if (block.timestamp % 2 == 0) {
            msg.sender.transfer(address(this).balance);
        }
    }
}
"""

SAFE = """
contract Counter {
    uint total;
    function add(uint value) public {
        total = total + value;
    }
}
"""

UNPARSABLE = "}}} %%% {{{"


@pytest.fixture
def corpus():
    return [("reentrant", REENTRANT), ("timestamp", TIMESTAMP),
            ("reentrant-copy", REENTRANT), ("safe", SAFE),
            ("broken", UNPARSABLE)]


@pytest.fixture(scope="module")
def study_corpora():
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 6, "ethereum.stackexchange": 10})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=6)
    return qa_corpus, sanctuary.contracts


class TestRequestAdapters:
    def test_pairs_strings_and_requests(self):
        request = as_request(("a", SAFE), 0)
        assert (request.contract_id, request.source) == ("a", SAFE)
        assert as_request(SAFE, 7).contract_id == 7
        assert as_request(request, 3) is request

    def test_dataset_objects(self, study_corpora):
        qa_corpus, contracts = study_corpora
        request = as_request(contracts[0], 0)
        assert request.contract_id == contracts[0].address
        assert request.source == contracts[0].source
        snippets = SnippetCollector().collect(qa_corpus).snippets
        request = as_request(snippets[0], 0)
        assert request.contract_id == snippets[0].snippet_id
        assert request.source == snippets[0].text

    def test_validation_candidates_keep_query_ids(self):
        from repro.pipeline.validation import ValidationCandidate

        candidate = ValidationCandidate(
            address="0xa", source=SAFE, snippet_id="s1",
            query_ids=("reentrancy-call-before-write",))
        request = as_request(candidate, 0)
        assert request.options["snippet_id"] == "s1"
        assert request.options["query_ids"] == ("reentrancy-call-before-write",)

    def test_unadaptable_item_is_a_type_error(self):
        with pytest.raises(TypeError, match="cannot adapt"):
            as_request(object(), 0)

    def test_requests_are_picklable(self):
        request = AnalysisRequest("a", SAFE, {"query_ids": ("x",)})
        assert pickle.loads(pickle.dumps(request)) == request


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"ccd", "ccc", "validate", "temporal", "correlation"} <= set(REGISTRY.ids())

    def test_decorator_registers_custom_analyzer(self):
        registry = AnalyzerRegistry()

        @register_analyzer("loc", registry=registry)
        class LineCount(Analyzer):
            title = "line count"

            def analyze(self, session, state, request):
                return request.source.count("\n") + 1

        assert "loc" in registry
        assert registry.get("loc").analyzer_id == "loc"
        with AnalysisSession(registry=registry) as session:
            results = session.run([("a", "x\ny")], analyses=["loc"])
        assert results[0].payload == 2

    def test_duplicate_id_is_rejected(self):
        registry = AnalyzerRegistry()

        @register_analyzer("dup", registry=registry)
        class First(Analyzer):
            pass

        with pytest.raises(ValueError, match="already registered"):
            @register_analyzer("dup", registry=registry)
            class Second(Analyzer):
                pass

    def test_unknown_id_names_the_known_ones(self):
        with pytest.raises(KeyError, match="registered"):
            REGISTRY.get("nope")

    def test_non_analyzer_class_is_rejected(self):
        registry = AnalyzerRegistry()
        with pytest.raises(TypeError):
            registry.register("bad")(object)


class TestEnvelope:
    def test_canonicalize_strips_timings_and_orders_keys(self):
        result = CccResult(elapsed_seconds=1.23, graph_nodes=7)
        canonical = canonicalize(result)
        assert "elapsed_seconds" not in canonical
        assert canonical["graph_nodes"] == 7
        assert canonicalize({"b": 1, "a": frozenset({"y", "x"})}) == \
            {"a": ["x", "y"], "b": 1}

    def test_envelope_as_dict_is_deterministic(self, corpus):
        with AnalysisSession() as session:
            first = [r.as_dict() for r in session.run(corpus, analyses=["ccc"])]
        with AnalysisSession() as session:
            second = [r.as_dict() for r in session.run(corpus, analyses=["ccc"])]
        assert first == second

    def test_ok_reflects_payload(self, corpus):
        with AnalysisSession() as session:
            results = session.run(corpus, analyses=["ccd"])
        by_id = {r.contract_id: r for r in results}
        assert by_id["broken"].ok is False
        assert by_id["reentrant"].ok is True


class TestSessionRuns:
    def test_ccd_ccc_over_one_corpus(self, corpus):
        with AnalysisSession() as session:
            results = session.run(corpus, analyses=["ccd", "ccc"])
        assert [r.analyzer for r in results] == ["ccd"] * 5 + ["ccc"] * 5
        by_key = {(r.analyzer, r.contract_id): r for r in results}
        # the two copies of the reentrant contract are mutual clones
        matches = by_key[("ccd", "reentrant")].payload
        assert "reentrant-copy" in [m.document_id for m in matches]
        assert by_key[("ccd", "safe")].payload == []
        assert by_key[("ccd", "broken")].payload is None
        # ccc payloads are the legacy AnalysisResult objects
        assert by_key[("ccc", "reentrant")].payload.findings
        assert by_key[("ccc", "broken")].payload.parse_error is not None

    def test_each_unique_source_parsed_exactly_once(self, corpus):
        with AnalysisSession() as session:
            session.run(corpus, analyses=["ccd", "ccc"])
            stats = session.stats
            # 4 unique sources (one duplicated, one unparsable): ccd
            # fingerprints and ccc graphs share one parse per source
            assert stats.parse_calls == 4
            assert stats.parse_calls == stats.misses
        # run_iter over the same session stays fully cached
        with AnalysisSession() as session:
            session.run(corpus, analyses=["ccd"])
            list(session.run_iter(corpus, analyses=["ccc"]))
            assert session.stats.parse_calls == session.stats.misses == 4

    def test_run_iter_is_a_lazy_stream(self, corpus):
        with AnalysisSession() as session:
            stream = session.run_iter(corpus, analyses=["ccc"])
            assert isinstance(stream, types.GeneratorType)
            first = next(stream)
            assert first.analyzer == "ccc"
            assert first.contract_id == "reentrant"
            stream.close()

    def test_unknown_analysis_fails_before_any_work(self, corpus):
        with AnalysisSession() as session:
            with pytest.raises(KeyError, match="unknown analyzer"):
                session.run_iter(corpus, analyses=["nope"])

    def test_per_request_query_ids_restrict_ccc(self):
        request = AnalysisRequest(
            "r", REENTRANT, {"query_ids": ("time-manipulation-timestamp",)})
        with AnalysisSession() as session:
            restricted = session.run([request], analyses=["ccc"])[0].payload
            full = session.run([("r", REENTRANT)], analyses=["ccc"])[0].payload
        assert not restricted.findings
        assert full.findings

    def test_disk_cache_dir_builds_a_disk_store(self, tmp_path, corpus):
        config = SessionConfig(cache_dir=str(tmp_path / "cache"))
        with AnalysisSession(config) as session:
            assert isinstance(session.store, DiskArtifactStore)
            session.run(corpus, analyses=["ccc"])
        with AnalysisSession(config) as session:
            session.run(corpus, analyses=["ccc"])
            # warm rerun: everything hydrates from the disk tier
            assert session.stats.parse_calls == 0

    def test_adopted_store_and_executor_are_not_closed(self, corpus):
        from repro.core.executor import Executor

        executor = Executor.create("thread", max_workers=2)
        with AnalysisSession(executor=executor) as session:
            session.run(corpus, analyses=["ccc"])
        # the session did not own the executor, so it still works
        assert executor.map(len, ["ab"]) == [2]
        executor.close()


class TestBatchStreamingParity:
    """The headline acceptance criterion of the API redesign."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_iter_matches_run_byte_identically(self, backend, corpus):
        config = SessionConfig(backend=backend, max_workers=2, chunk_size=2)
        with AnalysisSession(config) as session:
            batch = [r.as_dict() for r in session.run(corpus, analyses=["ccd", "ccc"])]
        with AnalysisSession(config) as session:
            stream = [r.as_dict()
                      for r in session.run_iter(corpus, analyses=["ccd", "ccc"])]
        assert pickle.dumps(stream) == pickle.dumps(batch)

    def test_all_backends_agree_with_serial(self, corpus):
        outputs = {}
        for backend in BACKENDS:
            config = SessionConfig(backend=backend, max_workers=2, chunk_size=2)
            with AnalysisSession(config) as session:
                outputs[backend] = [
                    r.as_dict() for r in session.run(corpus, analyses=["ccd", "ccc"])]
        assert outputs["thread"] == outputs["serial"]
        assert outputs["process"] == outputs["serial"]


class TestCorpusScopeAnalyzers:
    def test_temporal_and_correlation_envelopes(self, study_corpora):
        qa_corpus, contracts = study_corpora
        with AnalysisSession() as session:
            snippets = SnippetCollector(store=session.store).collect(qa_corpus).snippets
            options = {"temporal": {"contracts": contracts},
                       "correlation": {"contracts": contracts}}
            temporal, correlation = session.run(
                snippets, analyses=["temporal", "correlation"], options=options)
        assert temporal.contract_id is None
        assert isinstance(temporal.payload, TemporalCategories)
        assert temporal.payload.all_snippets
        assert correlation.contract_id is None
        assert [row.category for row in correlation.payload] == \
            ["All Snippets", "Disseminator", "Source"]

    def test_temporal_without_contracts_is_a_clear_error(self, study_corpora):
        qa_corpus, _ = study_corpora
        snippets = SnippetCollector().collect(qa_corpus).snippets
        with AnalysisSession() as session:
            with pytest.raises(ValueError, match="contracts"):
                session.run(snippets, analyses=["temporal"])

    def test_empty_snippet_corpus_yields_empty_categories(self, study_corpora):
        """A study whose collection stage finds nothing must not crash."""
        _, contracts = study_corpora
        with AnalysisSession() as session:
            options = {"temporal": {"contracts": contracts},
                       "correlation": {"contracts": contracts}}
            temporal, correlation = session.run(
                [], analyses=["temporal", "correlation"], options=options)
        assert temporal.payload.all_snippets == {}
        assert [row.sample_size for row in correlation.payload] == [0, 0, 0]

    def test_validate_analyzer_standalone(self):
        from repro.pipeline.validation import ValidationCandidate

        candidates = [ValidationCandidate(
            address="0xa", source=REENTRANT, snippet_id="s1",
            query_ids=("reentrancy-call-before-write",))]
        with AnalysisSession() as session:
            outcome = session.run(candidates, analyses=["validate"])[0].payload
        assert outcome.address == "0xa"
        assert outcome.vulnerable
        assert outcome.confirmed_queries == ("reentrancy-call-before-write",)
