"""Tests for the asyncio gateway front end (``repro.service.gateway``).

The acceptance bar of the subsystem:

* the asyncio front end serves the full ``/v1/*`` protocol
  **byte-identically** to the threaded server — response bodies, error
  messages, and the chunked NDJSON stream framing,
* overload degrades by **shedding** (429/503 + ``Retry-After``), never
  by hanging a request,
* per-tenant quotas isolate tenants: one tenant over budget cannot
  starve another,
* the priority lanes in the :class:`JobStore` serve interactive first,
  FIFO within a lane, with an aging credit so batch never starves,
* concurrent identical submissions **coalesce** onto one underlying
  execution, each caller streaming byte-identical envelopes.
"""

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request
from urllib.parse import urlsplit

import pytest

from repro.api import canonical_json
from repro.service import (
    AnalysisService,
    ClusterCoordinator,
    CoordinatorConfig,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.gateway import (
    GatewayConfig,
    TenantQuota,
    coalesce_key,
    load_tenant_quotas,
)
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline.collection import SnippetCollector


@pytest.fixture(scope="module")
def corpora():
    """One small deterministic corpus pair shared by the gateway tests."""
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for snippet in SnippetCollector().collect(qa_corpus).snippets]
    return contracts, snippets


def make_config(tmp_path, name="svc", **overrides):
    defaults = dict(data_dir=str(tmp_path / name), port=0, backend="serial",
                    frontend="asyncio")
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    with AnalysisService(make_config(tmp_path)) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def http_exchange(url, method, path, body=None, headers=None):
    """One raw request; returns ``(status, headers_dict, body_bytes)``."""
    parts = urlsplit(url)
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=30)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def raw_exchange(url, request_bytes, timeout=30.0):
    """Send raw bytes, read to EOF; returns ``(head_bytes, body_bytes)``."""
    parts = urlsplit(url)
    with socket.create_connection(
            (parts.hostname, parts.port), timeout=timeout) as sock:
        sock.sendall(request_bytes)
        blob = b""
        while True:
            data = sock.recv(65536)
            if not data:
                break
            blob += data
    head, _, body = blob.partition(b"\r\n\r\n")
    return head, body


# ---------------------------------------------------------------------------
# priority lanes in the job store
# ---------------------------------------------------------------------------

class TestPriorityLanes:
    def test_interactive_lane_claims_first(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            batch = store.submit([("a", "x")], ["ccd"])
            urgent = store.submit([("b", "y")], ["ccd"], priority="interactive")
            assert store.claim_next().job_id == urgent.job_id
            assert store.claim_next().job_id == batch.job_id

    def test_fifo_within_each_lane(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            interactive = [store.submit([("a", "x")], ["ccd"],
                                        priority="interactive").job_id
                           for _ in range(3)]
            batch = [store.submit([("a", "x")], ["ccd"]).job_id
                     for _ in range(3)]
            claimed = [store.claim_next().job_id for _ in range(6)]
            assert [j for j in claimed if j in interactive] == interactive
            assert [j for j in claimed if j in batch] == batch

    def test_all_batch_queue_is_strict_fifo(self, tmp_path):
        # jobs submitted without a priority behave like the pre-lane store
        with JobStore(tmp_path / "jobs.sqlite") as store:
            ids = [store.submit([("a", "x")], ["ccd"]).job_id
                   for _ in range(5)]
            assert [store.claim_next().job_id for _ in range(5)] == ids

    def test_aging_credit_prevents_batch_starvation(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite", batch_aging=2) as store:
            batch = store.submit([("a", "x")], ["ccd"]).job_id
            for _ in range(4):
                store.submit([("b", "y")], ["ccd"], priority="interactive")
            # claims: interactive, interactive, then the aged batch job
            lanes = [store.claim_next().priority for _ in range(3)]
            assert lanes == ["interactive", "interactive", "batch"]
            assert store.get(batch).state == "running"

    def test_no_starvation_under_steady_interactive_stream(self, tmp_path):
        # property: while interactive jobs keep arriving, a waiting batch
        # job is passed over by at most batch_aging consecutive claims
        import random

        rng = random.Random(42)
        aging = 3
        with JobStore(tmp_path / "jobs.sqlite", batch_aging=aging) as store:
            store.submit([("seed", "x")], ["ccd"], priority="interactive")
            batch_waits = {}
            claim_log = []
            for step in range(60):
                if rng.random() < 0.7:
                    store.submit([("i", "x")], ["ccd"], priority="interactive")
                if rng.random() < 0.25:
                    job = store.submit([("b", "y")], ["ccd"])
                    batch_waits[job.job_id] = 0
                claimed = store.claim_next()
                if claimed is None:
                    continue
                claim_log.append(claimed.priority)
                if claimed.priority == "batch":
                    batch_waits.pop(claimed.job_id, None)
                else:
                    for job_id in batch_waits:
                        batch_waits[job_id] += 1
            # no batch job still waiting was passed over beyond its credit
            assert all(waited <= aging for waited in batch_waits.values())
            # and batch jobs actually ran during the interactive stream
            assert "batch" in claim_log

    def test_interactive_streak_resets_after_batch_claim(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite", batch_aging=1) as store:
            for _ in range(2):
                store.submit([("b", "y")], ["ccd"])
            for _ in range(4):
                store.submit([("i", "x")], ["ccd"], priority="interactive")
            lanes = [store.claim_next().priority for _ in range(6)]
            # with aging=1 the lanes alternate while both are populated
            assert lanes == ["interactive", "batch", "interactive", "batch",
                             "interactive", "interactive"]

    def test_invalid_priority_rejected(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            with pytest.raises(ValueError, match="priority"):
                store.submit([("a", "x")], ["ccd"], priority="urgent")
        with pytest.raises(ValueError, match="batch_aging"):
            JobStore(tmp_path / "other.sqlite", batch_aging=0)

    def test_states_bulk_lookup(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            first = store.submit([("a", "x")], ["ccd"]).job_id
            second = store.submit([("b", "y")], ["ccd"]).job_id
            store.claim_next()
            assert store.states([first, second, 999]) == {
                first: "running", second: "queued"}
            assert store.states([]) == {}


# ---------------------------------------------------------------------------
# schema migration: pre-priority databases
# ---------------------------------------------------------------------------

class TestPrePriorityMigration:
    #: the jobs schema as PR 7 wrote it — fanout, but no priority/tenant
    PRE_PRIORITY_SCHEMA = """
        CREATE TABLE jobs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            state TEXT NOT NULL DEFAULT 'queued',
            analyses TEXT NOT NULL, corpus TEXT NOT NULL,
            options TEXT NOT NULL DEFAULT '{}', error TEXT,
            submitted REAL NOT NULL, started REAL, finished REAL,
            fanout TEXT);
        CREATE INDEX jobs_by_state ON jobs (state, id);
        CREATE TABLE job_results (
            job_id INTEGER NOT NULL, seq INTEGER NOT NULL,
            envelope TEXT NOT NULL, PRIMARY KEY (job_id, seq));
    """

    def make_pre_priority_db(self, path):
        import sqlite3

        connection = sqlite3.connect(str(path))
        connection.executescript(self.PRE_PRIORITY_SCHEMA)
        connection.execute(
            "INSERT INTO jobs (state, analyses, corpus, options, submitted) "
            "VALUES ('queued', '[\"ccd\"]', '[[\"q\", \"x = 1\"]]', '{}', 1.0)")
        connection.execute(
            "INSERT INTO jobs (state, analyses, corpus, options, submitted, "
            "started, fanout) VALUES ('running', '[\"ccd\"]', "
            "'[[\"r\", \"y = 2\"]]', '{}', 2.0, 2.5, "
            "'{\"shards\": {\"shard-0\": 3}, \"degraded\": []}')")
        connection.commit()
        connection.close()

    def test_pre_priority_database_opens_and_defaults_to_batch(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        self.make_pre_priority_db(path)
        with JobStore(path) as store:
            old = store.get(1)
            assert old.state == "queued"
            assert old.priority == "batch" and old.tenant is None
            assert old.as_dict()["priority"] == "batch"
            assert "tenant" not in old.as_dict()
            # new submissions coexist with migrated rows, lanes work
            new = store.submit([("n", "z")], ["ccd"], priority="interactive",
                               tenant="team-a")
            assert store.claim_next().job_id == new.job_id
            assert store.get(new.job_id).tenant == "team-a"

    def test_recover_still_clears_fanout_after_migration(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        self.make_pre_priority_db(path)
        with JobStore(path) as store:
            assert store.get(2).fanout == {"shards": {"shard-0": 3},
                                           "degraded": []}
            assert store.recover() == 1
            recovered = store.get(2)
            assert recovered.state == "queued"
            assert recovered.fanout is None
            assert recovered.priority == "batch"

    def test_migrated_rows_keep_their_fifo_position(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        self.make_pre_priority_db(path)
        with JobStore(path) as store:
            store.recover()
            later = store.submit([("n", "z")], ["ccd"])
            claimed = [store.claim_next().job_id for _ in range(3)]
            assert claimed == [1, 2, later.job_id]


# ---------------------------------------------------------------------------
# pagination and filtering (server-side)
# ---------------------------------------------------------------------------

class TestJobsPagination:
    def test_limit_offset_and_total(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            ids = [store.submit([("a", "x")], ["ccd"]).job_id
                   for _ in range(7)]
            page = store.list_jobs(limit=3)
            assert [job.job_id for job in page] == ids[::-1][:3]
            page = store.list_jobs(limit=3, offset=5)
            assert [job.job_id for job in page] == ids[::-1][5:7]
            assert store.count_jobs() == 7

    def test_tenant_and_state_filters(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            mine = store.submit([("a", "x")], ["ccd"], tenant="team-a")
            store.submit([("b", "y")], ["ccd"], tenant="team-b")
            store.submit([("c", "z")], ["ccd"])
            assert [job.job_id for job in store.list_jobs(tenant="team-a")] \
                == [mine.job_id]
            assert store.count_jobs(tenant="team-b") == 1
            store.claim_next()  # FIFO: claims team-a's job
            assert store.count_jobs(state="running", tenant="team-a") == 1
            assert store.count_jobs(state="queued", tenant="team-a") == 0
            assert store.count_jobs(state="queued") == 2

    def test_http_paging_envelope(self, service, client):
        for index in range(5):
            client.submit([(f"s{index}", f"x = {index}")], analyses=["ccd"],
                          tenant="team-a" if index % 2 else None)
        page = client.jobs_page(limit=2, offset=1)
        assert page["limit"] == 2 and page["offset"] == 1
        assert page["total"] == 5 and len(page["jobs"]) == 2
        assert [job["id"] for job in page["jobs"]] == [4, 3]
        filtered = client.jobs_page(tenant="team-a")
        assert filtered["total"] == 2
        assert all(job["tenant"] == "team-a" for job in filtered["jobs"])

    def test_http_paging_validation(self, service):
        status, _, body = http_exchange(service.url, "GET", "/v1/jobs?limit=x")
        assert status == 400
        assert json.loads(body)["error"] == "'limit' must be an integer"
        status, _, body = http_exchange(service.url, "GET",
                                        "/v1/jobs?state=nope")
        assert status == 400
        assert json.loads(body)["error"] == \
            "'state' must be one of queued|running|done|failed|cancelled"


# ---------------------------------------------------------------------------
# byte parity with the threaded front end
# ---------------------------------------------------------------------------

class TestGatewayParity:
    #: requests whose response bodies must be byte-identical across
    #: front ends regardless of daemon state
    ERROR_MATRIX = [
        ("POST", "/v1/jobs", b"not json"),
        ("POST", "/v1/jobs", b"[1, 2]"),
        ("POST", "/v1/jobs", b'{"sources": [], "analyses": ["ccd"]}'),
        ("POST", "/v1/jobs",
         b'{"sources": [["a", "x"]], "analyses": ["nope"]}'),
        ("POST", "/v1/jobs",
         b'{"sources": [["a", "x"]], "analyses": ["ccd"], '
         b'"priority": "urgent"}'),
        ("GET", "/v1/nope", None),
        ("POST", "/v1/nope", b"{}"),
        ("GET", "/v1/jobs/not-a-number", None),
        ("GET", "/v1/jobs/999", None),
        ("GET", "/v1/jobs?limit=x", None),
        ("GET", "/v1/jobs?state=nope", None),
    ]

    @pytest.fixture
    def frontends(self, tmp_path):
        threaded = AnalysisService(
            make_config(tmp_path, "threaded", frontend="threaded"))
        asyncio_svc = AnalysisService(make_config(tmp_path, "asyncio"))
        with threaded, asyncio_svc:
            yield threaded, asyncio_svc

    def test_error_bodies_byte_identical(self, frontends):
        threaded, asyncio_svc = frontends
        for method, path, body in self.ERROR_MATRIX:
            expected = http_exchange(threaded.url, method, path, body)
            actual = http_exchange(asyncio_svc.url, method, path, body)
            assert actual[0] == expected[0], (method, path)
            assert actual[2] == expected[2], (method, path)

    def test_submission_and_results_byte_identical(self, frontends, corpora):
        contracts, snippets = corpora
        sample = snippets[:4]
        bodies = {}
        for service in frontends:
            client = ServiceClient(service.url)
            client.ingest(contracts)
            job = client.submit(sample, analyses=["ccd", "ccc"])
            finished = client.wait(job["id"])
            bodies[service.config.frontend] = [
                canonical_json(envelope) for envelope in finished["results"]]
        assert bodies["threaded"] == bodies["asyncio"]
        assert len(bodies["asyncio"]) == 2 * len(sample)

    def test_stream_bytes_identical_including_chunk_framing(
            self, frontends, corpora):
        _, snippets = corpora
        raw = {}
        for service in frontends:
            client = ServiceClient(service.url)
            job = client.submit(snippets[:3], analyses=["ccd"])
            client.wait(job["id"])
            request = (f"GET /v1/jobs/{job['id']}/stream HTTP/1.1\r\n"
                       f"Host: x\r\nConnection: close\r\n\r\n").encode("ascii")
            head, body = raw_exchange(service.url, request)
            assert b"200" in head.split(b"\r\n")[0]
            assert b"Transfer-Encoding: chunked" in head
            raw[service.config.frontend] = body
        # the full chunked payload — framing included — is identical
        assert raw["threaded"] == raw["asyncio"]
        assert raw["asyncio"].endswith(b"0\r\n\r\n")

    def test_gateway_streams_jobs_before_they_finish(self, service, client,
                                                     corpora):
        _, snippets = corpora
        job = client.submit(snippets[:4], analyses=["ccd"])
        streamed = list(client.stream(job["id"]))  # no wait: follows the job
        assert len(streamed) == 4
        assert client.job(job["id"])["job"]["state"] == "done"

    def test_keepalive_reuses_one_connection(self, service, client):
        client.healthz()
        client.corpus()
        client.jobs()
        stats = client.stats()
        gateway = stats["gateway"]
        assert gateway["frontend"] == "asyncio"
        assert gateway["requests"] >= 4
        assert gateway["connections_opened"] == 1

    def test_http10_request_is_answered_and_closed(self, service):
        request = b"GET /v1/healthz HTTP/1.0\r\nHost: x\r\n\r\n"
        head, body = raw_exchange(service.url, request)
        assert b"200" in head.split(b"\r\n")[0]
        assert json.loads(body)["status"] == "ok"

    def test_malformed_request_line_is_400(self, service):
        head, body = raw_exchange(service.url, b"NONSENSE\r\n\r\n")
        assert b"400" in head.split(b"\r\n")[0]

    def test_unsupported_method_is_501(self, service):
        status, _, body = http_exchange(service.url, "DELETE", "/v1/jobs")
        assert status == 501
        assert "unsupported method" in json.loads(body)["error"]


# ---------------------------------------------------------------------------
# admission control: backpressure, quotas, isolation
# ---------------------------------------------------------------------------

def submit_raw(url, sources, analyses=("ccd",), tenant=None, priority=None,
               timeout=15.0):
    """One POST /v1/jobs via urllib; raises HTTPError with headers intact."""
    body = {"sources": [list(pair) for pair in sources],
            "analyses": list(analyses)}
    if priority is not None:
        body["priority"] = priority
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Repro-Tenant"] = tenant
    request = urllib.request.Request(
        url + "/v1/jobs", method="POST",
        data=json.dumps(body).encode("utf-8"), headers=headers)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


class TestAdmissionControl:
    def test_full_queue_sheds_503_with_retry_after_never_hangs(self, tmp_path):
        config = make_config(tmp_path, max_pending_jobs=3)
        with AnalysisService(config) as service:
            # freeze the scheduler so submissions pile up deterministically
            with service._work_lock.write():
                responses = []
                error = None
                for index in range(8):
                    try:
                        responses.append(submit_raw(
                            service.url, [(f"s{index}", f"x = {index}")]))
                    except urllib.error.HTTPError as exc:
                        error = exc
                        break
                assert error is not None, "queue bound never enforced"
                assert error.code == 503
                assert int(error.headers["Retry-After"]) >= 1
                payload = json.loads(error.read())
                assert "job queue full" in payload["error"]
                # shedding, not hanging: the daemon still answers reads
                status, _, _ = http_exchange(service.url, "GET", "/v1/healthz")
                assert status == 200
            stats = ServiceClient(service.url).stats()
            assert stats["gateway"]["shed"]["queue_full"] >= 1

    def test_rate_limited_tenant_gets_429_others_unaffected(self, tmp_path):
        quotas = {"limited": {"rate": 0.5, "burst": 2}}
        config = make_config(tmp_path, tenant_quotas=quotas)
        with AnalysisService(config) as service:
            for index in range(2):  # the burst budget
                submit_raw(service.url, [(f"a{index}", f"x = {index}")],
                           tenant="limited")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                submit_raw(service.url, [("a2", "x = 2")], tenant="limited")
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            assert "limited" in json.loads(excinfo.value.read())["error"]
            # tenant isolation: an unlimited tenant submits right through
            accepted = submit_raw(service.url, [("b0", "y = 0")],
                                  tenant="other")
            assert accepted["job"]["state"] == "queued"
            stats = ServiceClient(service.url).stats()
            assert stats["gateway"]["shed"]["rate_limited"] == 1

    def test_inflight_quota_enforced_and_released(self, tmp_path):
        quotas = {"capped": {"max_inflight": 1}}
        config = make_config(tmp_path, tenant_quotas=quotas)
        with AnalysisService(config) as service:
            client = ServiceClient(service.url)
            with service._work_lock.write():
                first = submit_raw(service.url, [("a", "x = 1")],
                                   tenant="capped")
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    submit_raw(service.url, [("b", "y = 2")], tenant="capped")
                assert excinfo.value.code == 429
                assert "in flight" in json.loads(excinfo.value.read())["error"]
                # another tenant's budget is its own
                submit_raw(service.url, [("c", "z = 3")], tenant="free")
            client.wait(first["job"]["id"])
            # the finished job no longer counts against the quota
            again = submit_raw(service.url, [("d", "w = 4")], tenant="capped")
            assert again["job"]["state"] == "queued"

    def test_default_quota_applies_to_unlabelled_requests(self, tmp_path):
        quotas = {"default": {"rate": 0.5, "burst": 1}}
        config = make_config(tmp_path, tenant_quotas=quotas)
        with AnalysisService(config) as service:
            submit_raw(service.url, [("a", "x = 1")])  # no tenant header
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                submit_raw(service.url, [("b", "y = 2")])
            assert excinfo.value.code == 429

    def test_connection_cap_sheds_immediately(self, tmp_path):
        config = make_config(tmp_path, max_connections=1)
        with AnalysisService(config) as service:
            parts = urlsplit(service.url)
            with socket.create_connection(
                    (parts.hostname, parts.port), timeout=10) as first:
                first.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                assert b"200" in first.recv(65536)  # connection 1 is live
                # connection 2 is shed before sending a single byte
                with socket.create_connection(
                        (parts.hostname, parts.port), timeout=10) as second:
                    blob = b""
                    while True:
                        data = second.recv(65536)
                        if not data:
                            break
                        blob += data
                    assert b"503" in blob.split(b"\r\n")[0]
                    assert b"Retry-After" in blob
                    assert b"too many open connections" in blob

    def test_tenant_quota_file_round_trip(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({
            "default": {"rate": 50, "burst": 100},
            "team-a": {"rate": 5, "max_inflight": 2}}), encoding="utf-8")
        quotas = load_tenant_quotas(path)
        assert quotas["team-a"] == TenantQuota(rate=5, burst=None,
                                               max_inflight=2)
        assert quotas["default"].burst == 100

    def test_tenant_quota_file_validation(self, tmp_path):
        bad = tmp_path / "quotas.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_tenant_quotas(bad)
        with pytest.raises(ValueError, match="unknown quota keys"):
            load_tenant_quotas({"t": {"rate": 1, "ceiling": 2}})
        with pytest.raises(ValueError, match="positive number"):
            load_tenant_quotas({"t": {"rate": -1}})
        with pytest.raises(ValueError, match="must be a table"):
            load_tenant_quotas({"t": 5})

    def test_toml_quota_file_parses_on_modern_python(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "quotas.toml"
        path.write_text('[team-a]\nrate = 5\nmax_inflight = 2\n',
                        encoding="utf-8")
        quotas = load_tenant_quotas(path)
        assert quotas["team-a"].max_inflight == 2


# ---------------------------------------------------------------------------
# request coalescing
# ---------------------------------------------------------------------------

class TestCoalescing:
    def test_key_ignores_tenant_but_not_content(self):
        base = {"sources": [["a", "x"]], "analyses": ["ccd"]}
        assert coalesce_key(dict(base)) == coalesce_key(dict(base))
        assert coalesce_key(base) != coalesce_key(
            {**base, "sources": [["a", "y"]]})
        assert coalesce_key(base) != coalesce_key(
            {**base, "priority": "interactive"})
        # an explicit batch priority equals the implicit default
        assert coalesce_key(base) == coalesce_key({**base, "priority": "batch"})

    def test_concurrent_identical_submissions_share_one_job(
            self, tmp_path, corpora):
        _, snippets = corpora
        sample = snippets[:3]
        with AnalysisService(make_config(tmp_path)) as service:
            with service._work_lock.write():  # hold the job in `running`
                results = []
                threads = [
                    threading.Thread(target=lambda i=i: results.append(
                        submit_raw(service.url, sample, tenant=f"t{i % 2}")))
                    for i in range(6)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert len(results) == 6
            job_ids = {entry["job"]["id"] for entry in results}
            assert len(job_ids) == 1  # one underlying execution
            coalesced = [entry for entry in results if entry.get("coalesced")]
            assert len(coalesced) == 5
            client = ServiceClient(service.url)
            job_id = job_ids.pop()
            client.wait(job_id)
            # every attached caller streams the byte-identical envelopes
            streams = [list(ServiceClient(service.url).stream(job_id, raw=True))
                       for _ in range(3)]
            assert streams[0] == streams[1] == streams[2]
            assert len(streams[0]) == len(sample)
            # exactly one execution happened, and /v1/stats says so
            stats = client.stats()
            assert stats["jobs_completed"] == 1
            assert stats["gateway"]["coalesce"]["hits"] == 5
            assert stats["gateway"]["coalesce"]["misses"] == 1

    def test_identical_resubmission_after_completion_runs_again(
            self, tmp_path, corpora):
        _, snippets = corpora
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            first = submit_raw(service.url, snippets[:1])
            client.wait(first["job"]["id"])
            second = submit_raw(service.url, snippets[:1])
            assert second["job"]["id"] != first["job"]["id"]
            assert "coalesced" not in second

    def test_coalescing_can_be_disabled(self, tmp_path, corpora):
        _, snippets = corpora
        with AnalysisService(make_config(tmp_path, coalesce=False)) as service:
            with service._work_lock.write():
                first = submit_raw(service.url, snippets[:1])
                second = submit_raw(service.url, snippets[:1])
            assert first["job"]["id"] != second["job"]["id"]
            stats = ServiceClient(service.url).stats()
            assert stats["gateway"]["coalesce"]["enabled"] is False
            assert stats["gateway"]["coalesce"]["hits"] == 0


# ---------------------------------------------------------------------------
# the gateway fronting a cluster coordinator
# ---------------------------------------------------------------------------

class TestCoordinatorGateway:
    @pytest.fixture
    def cluster(self, tmp_path):
        workers = []
        coordinator = None
        try:
            for index in range(2):
                worker = AnalysisService(make_config(
                    tmp_path, f"worker-{index}", frontend="threaded"))
                worker.start()
                workers.append(worker)
            coordinator = ClusterCoordinator(CoordinatorConfig(
                data_dir=str(tmp_path / "coordinator"), port=0,
                workers=tuple(worker.url for worker in workers),
                connect_timeout=5.0, shard_timeout=60.0,
                frontend="asyncio"))
            coordinator.start()
            yield coordinator, workers
        finally:
            if coordinator is not None:
                coordinator.stop()
            for worker in workers:
                worker.stop()

    def test_cluster_routes_served_and_results_merge(self, cluster, corpora):
        contracts, snippets = corpora
        coordinator, workers = cluster
        client = ServiceClient(coordinator.url, connect_timeout=5.0)
        routed = client.ingest(contracts)
        assert sum(routed["routed"].values()) == routed["ingested"]
        status = client.cluster()
        assert len(status["workers"]) == 2 and status["status"] == "ok"
        job = client.submit(snippets[:3], analyses=["ccd"],
                            priority="interactive", tenant="team-a")
        assert job["priority"] == "interactive"
        finished = client.wait(job["id"])
        assert len(finished["results"]) == 3
        assert finished["job"]["fanout"]["shards"]
        # the lane and tenant travel with the fanned-out sub-jobs
        for worker in workers:
            for sub in worker.jobstore.list_jobs():
                assert sub.priority == "interactive"
                assert sub.tenant == "team-a"

    def test_stream_endpoint_absent_on_coordinator(self, cluster):
        coordinator, _ = cluster
        status, _, body = http_exchange(coordinator.url, "GET",
                                        "/v1/jobs/1/stream")
        assert status == 404
        assert "no such endpoint" in json.loads(body)["error"]

    def test_coordinator_coalesces_identical_submissions(self, cluster,
                                                         corpora):
        _, snippets = corpora
        coordinator, _ = cluster
        with coordinator._work_lock.write():
            results = []
            threads = [
                threading.Thread(target=lambda: results.append(
                    submit_raw(coordinator.url, snippets[:2])))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len({entry["job"]["id"] for entry in results}) == 1
        assert sum(1 for entry in results if entry.get("coalesced")) == 3
        client = ServiceClient(coordinator.url, connect_timeout=5.0)
        finished = client.wait(results[0]["job"]["id"])
        assert len(finished["results"]) == 2


# ---------------------------------------------------------------------------
# client keep-alive semantics (satellite regression tests)
# ---------------------------------------------------------------------------

class TestClientKeepAlive:
    def test_pooled_connection_is_reused_across_requests(self, service):
        client = ServiceClient(service.url)
        client.healthz()
        first = client._local.connection
        client.corpus()
        assert client._local.connection is first
        assert first.sock is not None  # still open, still pooled

    def test_stale_get_is_retried_once_on_fresh_connection(self, service):
        client = ServiceClient(service.url)
        client.healthz()  # pool a live connection
        stale = client._local.connection
        original_request = stale.request
        calls = {"n": 0}

        def flaky_request(*args, **kwargs):
            calls["n"] += 1
            raise http.client.RemoteDisconnected("server dropped keep-alive")

        stale.request = flaky_request
        # the retry builds a brand-new connection, untouched by the patch
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert calls["n"] == 1
        assert client._local.connection is not stale

    def test_stale_post_is_not_retried(self, service):
        client = ServiceClient(service.url)
        client.healthz()
        stale = client._local.connection

        def flaky_request(*args, **kwargs):
            raise http.client.RemoteDisconnected("server dropped keep-alive")

        stale.request = flaky_request
        # a POST may already have executed server-side: never resent.
        # RemoteDisconnected is in the OSError family, so it propagates
        # as-is (callers already catch OSError for transport failures).
        with pytest.raises(http.client.RemoteDisconnected):
            client.submit([("a", "x = 1")], analyses=["ccd"])
        # but the client recovers on the next (fresh-connection) request
        assert client.healthz()["status"] == "ok"

    def test_fresh_connection_failure_is_not_retried(self, tmp_path):
        # a request failing on a NEVER-used connection propagates at once
        with AnalysisService(make_config(tmp_path, "short")) as service:
            url = service.url
        client = ServiceClient(url)  # daemon already stopped
        with pytest.raises((urllib.error.URLError, OSError)):
            client.healthz()

    def test_http_errors_are_never_retried(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.job(12345)
        assert excinfo.value.status == 404
        before = client.stats()["gateway"]["requests"]
        with pytest.raises(ServiceError):
            client.job(12345)
        after = client.stats()["gateway"]["requests"]
        assert after - before == 2  # the 404 and the stats read — no retry
