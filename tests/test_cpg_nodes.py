"""Tests for CPG node classes and their label hierarchy."""

from repro.cpg import nodes as cpg


class TestLabels:
    def test_constructor_has_function_label(self):
        node = cpg.ConstructorDeclaration(name="C")
        assert node.has_label("ConstructorDeclaration")
        assert node.has_label("FunctionDeclaration")
        assert node.has_label("Declaration")

    def test_param_is_variable_declaration(self):
        node = cpg.ParamVariableDeclaration(name="amount")
        assert node.has_label("ParamVariableDeclaration")
        assert node.has_label("VariableDeclaration")

    def test_member_expression_is_reference(self):
        node = cpg.MemberExpression(member="sender", code="msg.sender")
        assert node.has_label("DeclaredReferenceExpression")
        assert node.has_label("Expression")

    def test_rollback_is_statement(self):
        node = cpg.Rollback(code="revert()")
        assert node.has_label("Rollback") and node.has_label("Statement")

    def test_most_specific_label_first(self):
        node = cpg.ConstructorDeclaration(name="C")
        assert node.labels[0] == "ConstructorDeclaration"

    def test_field_not_labelled_as_variable(self):
        node = cpg.FieldDeclaration(name="owner")
        assert not node.has_label("VariableDeclaration")


class TestProperties:
    def test_unique_ids(self):
        first, second = cpg.Literal(value=1), cpg.Literal(value=2)
        assert first.id != second.id

    def test_local_name_strips_qualification(self):
        node = cpg.CallExpression(name="SafeMath.add")
        assert node.local_name == "add"

    def test_local_name_empty_when_unnamed(self):
        assert cpg.CallExpression(name="").local_name == ""

    def test_function_is_default(self):
        assert cpg.FunctionDeclaration(name="", kind="fallback").is_default_function
        assert cpg.FunctionDeclaration(name="").is_default_function
        assert not cpg.FunctionDeclaration(name="withdraw").is_default_function

    def test_function_is_internal(self):
        assert cpg.FunctionDeclaration(name="f", visibility="internal").is_internal
        assert not cpg.FunctionDeclaration(name="f", visibility="public").is_internal

    def test_repr_contains_code(self):
        node = cpg.CallExpression(name="transfer", code="msg.sender.transfer(1)")
        assert "transfer" in repr(node)

    def test_is_reverting_builtin(self):
        assert cpg.is_reverting_builtin("require")
        assert cpg.is_reverting_builtin("assert")
        assert not cpg.is_reverting_builtin("transfer")
