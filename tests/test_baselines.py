"""Tests for the simplified baseline tools."""

import pytest

from repro.baselines import ExactHashCloneBaseline, SmartCheckBaseline, SmartEmbedBaseline
from repro.ccc.dasp import DaspCategory


class TestSmartCheckBaseline:
    baseline = SmartCheckBaseline()

    def test_unchecked_send_detected(self):
        findings = self.baseline.analyze("contract C { function f(address a) public {\n  a.send(1 ether);\n} }")
        assert any(f.category is DaspCategory.UNCHECKED_LOW_LEVEL_CALLS for f in findings)

    def test_checked_send_not_detected(self):
        findings = self.baseline.analyze(
            "contract C { function f(address a) public {\n  require(a.send(1 ether));\n} }")
        assert not any(f.category is DaspCategory.UNCHECKED_LOW_LEVEL_CALLS for f in findings)

    def test_tx_origin_detected(self):
        assert DaspCategory.ACCESS_CONTROL in self.baseline.categories(
            "contract C { function f() public { require(tx.origin == owner); } }")

    def test_timestamp_detected(self):
        assert DaspCategory.TIME_MANIPULATION in self.baseline.categories(
            "contract C { function f() public { if (block.timestamp > deadline) { pay(); } } }")

    def test_reentrancy_not_covered(self, reentrancy_snippet):
        assert DaspCategory.REENTRANCY not in self.baseline.categories(reentrancy_snippet)

    def test_empty_source(self):
        assert self.baseline.analyze("") == []

    def test_finding_has_line_number(self):
        findings = self.baseline.analyze("contract C {\n function f(address a) public {\n  a.send(1);\n }\n}")
        assert findings and findings[0].line == 3

    def test_narrower_coverage_than_ccc(self):
        assert len(self.baseline.SUPPORTED_CATEGORIES) < len(list(DaspCategory))


class TestSmartEmbedBaseline:
    def test_requires_complete_contracts(self):
        baseline = SmartEmbedBaseline()
        assert baseline.add_document("snippet", "function f() { x = 1; }") is False
        assert baseline.add_document("full", "contract C { function f() public { x = 1; } }") is True

    def test_identical_contracts_score_one(self):
        baseline = SmartEmbedBaseline()
        source = "contract C { uint x; function f(uint a) public { x = a + 1; } }"
        baseline.add_document("a", source)
        baseline.add_document("b", source)
        assert baseline.similarity("a", "b") == pytest.approx(1.0)

    def test_different_contracts_score_below_threshold(self):
        baseline = SmartEmbedBaseline()
        baseline.add_document("a", "contract A { function f(uint x) public { total += x; } uint total; }")
        baseline.add_document("b", """
contract B {
    mapping(address => uint) balances;
    address owner;
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.transfer(amount);
        balances[msg.sender] -= amount;
    }
    function deposit() public payable { balances[msg.sender] += msg.value; }
}
""")
        assert baseline.similarity("a", "b") < 0.9

    def test_find_clones_respects_threshold(self):
        baseline = SmartEmbedBaseline(similarity_threshold=0.9)
        source = "contract C { uint x; function f(uint a) public { x = a + 1; } }"
        baseline.add_document("a", source)
        baseline.add_document("b", source)
        baseline.add_document("c", "contract D { function g() public payable { owner.transfer(msg.value); } address owner; }")
        matches = baseline.find_clones("a")
        assert {match.document_id for match in matches} == {"b"}

    def test_pairwise_symmetric_results(self):
        baseline = SmartEmbedBaseline(similarity_threshold=0.8)
        source = "contract C { uint x; function f(uint a) public { x = a + 1; } }"
        baseline.add_corpus([("a", source), ("b", source)])
        pairwise = baseline.pairwise_clones()
        assert {m.document_id for m in pairwise["a"]} == {"b"}
        assert {m.document_id for m in pairwise["b"]} == {"a"}

    def test_cosine_of_empty_embedding_is_zero(self):
        from collections import Counter
        assert SmartEmbedBaseline.cosine(Counter(), Counter({"x": 1})) == 0.0


class TestExactHashBaseline:
    def test_type2_clone_found(self):
        baseline = ExactHashCloneBaseline()
        baseline.add_document("original", "contract C { function pay(address to, uint amount) public { to.transfer(amount); } }")
        clones = baseline.find_clones("function send(address dst, uint wad) { dst.transfer(wad); }")
        assert clones == ["original"]

    def test_type3_clone_missed(self):
        baseline = ExactHashCloneBaseline()
        baseline.add_document("original", "contract C { function pay(address to, uint amount) public { to.transfer(amount); } }")
        clones = baseline.find_clones(
            "function send(address dst, uint wad) { emit Paid(dst); dst.transfer(wad); }")
        assert clones == []

    def test_unparsable_rejected(self):
        baseline = ExactHashCloneBaseline()
        assert baseline.add_document("bad", "not solidity in the least") is False

    def test_corpus_count(self):
        baseline = ExactHashCloneBaseline()
        added = baseline.add_corpus([
            ("a", "contract A { function f() public { x = 1; } }"),
            ("b", "contract B { function g() public { y = 2; } }"),
        ])
        assert added == 2 and len(baseline) == 2
