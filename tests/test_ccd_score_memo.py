"""Tests for the bit-parallel distance kernel and the corpus-global score memo.

Two properties carry the ``myers`` backend:

* **kernel parity** — :func:`myers_edit_distance` and
  :func:`myers_bounded_edit_distance` return values byte-identical to the
  reference DP / banded implementations on every input, including
  unicode alphabets and strings past 64 characters (the multi-word
  big-int path), and

* **memo lifecycle** — :class:`ScoreMemoTable` persists scores through
  its SQLite tier (a reopened table is warm: a repeated workload
  re-scores zero pairs) and drops every row of a sub-fingerprint whose
  last carrying document is retired.
"""

import pickle
import random

import pytest

from repro.ccd.detector import CloneDetector
from repro.ccd.index_io import load_index, save_index
from repro.ccd.score_memo import (
    SCORE_MEMO_FORMAT_VERSION,
    SCORE_MEMO_NAME,
    ScoreMemoTable,
    memo_key,
)
from repro.ccd.similarity import (
    bounded_edit_distance,
    edit_distance,
    myers_bounded_edit_distance,
    myers_edit_distance,
    myers_word_count,
)

ALPHABETS = ("ab", "abcdef", "ABCDEFGHIJabcdefghij0123+/", "αβγ汉字ß€✓")


def dp_distance(first, second):
    """Textbook full-matrix Levenshtein: the independent oracle."""
    previous = list(range(len(second) + 1))
    for row, char_first in enumerate(first, start=1):
        current = [row]
        for column, char_second in enumerate(second, start=1):
            current.append(min(current[-1] + 1, previous[column] + 1,
                               previous[column - 1] + (char_first != char_second)))
        previous = current
    return previous[-1]


# ---------------------------------------------------------------------------
# kernel parity
# ---------------------------------------------------------------------------

class TestKernelParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_parity_against_dp_oracle(self, seed):
        rng = random.Random(seed)
        for _ in range(150):
            alphabet = rng.choice(ALPHABETS)
            first = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 45)))
            second = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 45)))
            expected = dp_distance(first, second)
            assert edit_distance(first, second) == expected
            assert myers_edit_distance(first, second) == expected
            for limit in (0, 1, 2, 5, 12, 100):
                want = expected if expected <= limit else None
                assert bounded_edit_distance(first, second, limit) == want, \
                    (first, second, limit)
                assert myers_bounded_edit_distance(first, second, limit) == want, \
                    (first, second, limit)

    @pytest.mark.parametrize("seed", range(3))
    def test_parity_past_64_characters(self, seed):
        # bitvectors wider than one machine word: Python big ints carry
        # the pattern dimension across word boundaries transparently
        rng = random.Random(500 + seed)
        for _ in range(30):
            alphabet = rng.choice(ALPHABETS)
            first = "".join(rng.choice(alphabet) for _ in range(rng.randint(60, 200)))
            edited = list(first)
            for _ in range(rng.randint(0, 12)):
                position = rng.randrange(len(edited))
                if rng.random() < 0.5:
                    edited[position] = rng.choice(alphabet)
                else:
                    del edited[position]
            second = "".join(edited)
            expected = dp_distance(first, second)
            assert myers_edit_distance(first, second) == expected
            for limit in (3, 10, 25):
                want = expected if expected <= limit else None
                assert myers_bounded_edit_distance(first, second, limit) == want

    def test_word_count(self):
        assert myers_word_count("a" * 64, "abc") == 3
        assert myers_word_count("a" * 65, "abc") == 6
        assert myers_word_count("abc", "a" * 130) == 9
        assert myers_word_count("", "") == 0  # the kernel never runs on empties
        assert myers_word_count("abcd", "") == 1  # floor: one text step


class TestBoundedEdgeRegressions:
    """Pinned edges of the bounded kernels (empty strings, limit 0)."""

    @pytest.mark.parametrize("bounded",
                             (bounded_edit_distance, myers_bounded_edit_distance))
    def test_empty_string_edges(self, bounded):
        assert bounded("", "", 0) == 0
        assert bounded("", "abc", 3) == 3
        assert bounded("abc", "", 3) == 3
        # d >= |len difference|: a limit below it must bail, not scan
        assert bounded("", "abc", 2) is None
        assert bounded("abc", "", 2) is None

    @pytest.mark.parametrize("bounded",
                             (bounded_edit_distance, myers_bounded_edit_distance))
    def test_limit_zero_edges(self, bounded):
        assert bounded("a", "a", 0) == 0
        assert bounded("same", "same", 0) == 0
        assert bounded("a", "b", 0) is None
        assert bounded("", "a", 0) is None

    @pytest.mark.parametrize("bounded",
                             (bounded_edit_distance, myers_bounded_edit_distance))
    def test_exact_at_the_limit(self, bounded):
        assert bounded("a", "b", 1) == 1
        assert bounded("ab", "ba", 1) is None  # distance 2
        assert bounded("ab", "ba", 2) == 2
        long = "x" * 100
        assert bounded(long, long + "y" * 5, 4) is None
        assert bounded(long, long + "y" * 5, 5) == 5


# ---------------------------------------------------------------------------
# the memo table
# ---------------------------------------------------------------------------

class TestScoreMemoTable:
    def test_memo_key_is_canonically_ordered(self):
        assert memo_key("b", "a") == ("a", "b") == memo_key("a", "b")
        assert memo_key("x", "x") == ("x", "x")

    def test_first_write_is_final(self):
        memo = ScoreMemoTable()
        key = memo_key("AAA", "BBB")
        memo[key] = 75.0
        memo[key] = 10.0  # scores are pure: a second write is ignored
        assert memo.get(key) == 75.0
        assert len(memo) == 1
        assert key in memo
        assert memo.stats.stores == 1

    def test_stats_track_hits_and_misses(self):
        memo = ScoreMemoTable()
        key = memo_key("AAA", "BBB")
        assert memo.get(key) is None
        memo[key] = 50.0
        assert memo.get(key) == 50.0
        assert memo.stats.hits == 1
        assert memo.stats.misses == 1
        assert memo.stats.hit_rate == 0.5
        data = memo.as_dict()
        assert data["entries"] == 1
        assert data["persistent"] is False

    def test_cutoff_bounds_tighten_and_upgrade(self):
        # negative entries are proven upper bounds (-U: score < U); they
        # only tighten, and an exact score replaces them for good
        memo = ScoreMemoTable()
        key = memo_key("AAA", "BBB")
        memo[key] = -80.0
        assert memo.get(key) == -80.0
        memo[key] = -90.0   # looser bound: ignored
        assert memo.get(key) == -80.0
        memo[key] = -40.0   # tighter bound: replaces
        assert memo.get(key) == -40.0
        memo[key] = 33.0    # exact score: upgrades and is final
        memo[key] = -10.0
        assert memo.get(key) == 33.0

    def test_repr_mentions_tier(self, tmp_path):
        assert "memory" in repr(ScoreMemoTable())
        assert "disk" in repr(ScoreMemoTable(tmp_path / SCORE_MEMO_NAME))


class TestDiskTier:
    def test_write_through_and_warm_reopen(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        memo = ScoreMemoTable(path)
        memo[memo_key("AAA", "BBB")] = 75.0
        memo[memo_key("AAA", "CCC")] = 25.0
        assert memo.disk_rows() == 2
        memo.close()

        warm = ScoreMemoTable(path)
        assert warm.stats.warm_loaded == 2
        assert warm.get(memo_key("BBB", "AAA")) == 75.0
        assert warm.get(memo_key("CCC", "AAA")) == 25.0
        assert warm.stats.stores == 0  # nothing recomputed, nothing rewritten
        warm.close()

    def test_persist_to_dumps_an_in_memory_table(self, tmp_path):
        memo = ScoreMemoTable()
        memo[memo_key("AAA", "BBB")] = 60.0
        path = tmp_path / SCORE_MEMO_NAME
        assert memo.persist_to(path) == 1
        assert memo.persistent
        assert memo.disk_rows() == 1
        # attached: later scores write through
        memo[memo_key("AAA", "DDD")] = 40.0
        assert memo.disk_rows() == 2
        # re-persisting to the live tier is a no-op
        assert memo.persist_to(path) == 0
        memo.close()

    def test_corrupt_tier_degrades_to_cold(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        path.write_bytes(b"this is not a sqlite database at all......")
        memo = ScoreMemoTable(path)
        assert memo.stats.warm_loaded == 0
        memo[memo_key("AAA", "BBB")] = 30.0
        assert memo.disk_rows() == 1
        assert (tmp_path / (SCORE_MEMO_NAME + ".corrupt")).exists()
        memo.close()

    def test_format_version_mismatch_discards_rows(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        memo = ScoreMemoTable(path)
        memo[memo_key("AAA", "BBB")] = 30.0
        connection = memo._connection
        connection.execute("REPLACE INTO meta (key, value) "
                           "VALUES ('format_version', ?)",
                           (str(SCORE_MEMO_FORMAT_VERSION + 1),))
        memo.close()
        reopened = ScoreMemoTable(path)
        assert reopened.stats.warm_loaded == 0
        assert reopened.disk_rows() == 0
        reopened.close()

    def test_pickle_round_trip_keeps_scores_and_tier(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        memo = ScoreMemoTable(path)
        memo[memo_key("AAA", "BBB")] = 75.0
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.get(memo_key("AAA", "BBB")) == 75.0
        assert clone.persistent
        clone[memo_key("AAA", "CCC")] = 10.0
        assert clone.disk_rows() == 2
        clone.close()
        memo.close()


class TestInvalidation:
    def test_releasing_last_reference_drops_rows_in_both_tiers(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        memo = ScoreMemoTable(path)
        memo.register(["AAA", "BBB"])
        memo[memo_key("query", "AAA")] = 80.0
        memo[memo_key("query", "BBB")] = 70.0
        memo.release(["AAA"])
        assert memo.get(memo_key("query", "AAA")) is None
        assert memo.get(memo_key("query", "BBB")) == 70.0
        assert memo.stats.invalidated == 1
        assert memo.disk_rows() == 1
        memo.close()

    def test_shared_subs_survive_until_the_last_release(self):
        memo = ScoreMemoTable()
        memo.register(["AAA"])  # doc 1
        memo.register(["AAA"])  # doc 2 carries the same sub
        memo[memo_key("query", "AAA")] = 90.0
        memo.release(["AAA"])   # doc 2 retired: still one live carrier
        assert memo.get(memo_key("query", "AAA")) == 90.0
        memo.release(["AAA"])   # last carrier gone
        assert memo.get(memo_key("query", "AAA")) is None

    def test_empty_subs_and_unknown_subs_are_ignored(self):
        memo = ScoreMemoTable()
        memo.register(["", "AAA"])
        memo.release(["", "AAA", "never-registered"])
        assert len(memo) == 0

    def test_reingesting_same_document_keeps_scores(self):
        # replacement registers before releasing: subs shared between the
        # old and new fingerprint never transit through refcount zero
        detector = CloneDetector(similarity_threshold=0.5)
        source = "contract A { function f(uint x) { msg.sender.transfer(x); } }"
        detector.add_corpus([("a", source)])
        detector.find_clones("function h(uint y) { msg.sender.transfer(y); }")
        entries = len(detector.score_memo)
        assert entries > 0
        detector.add_corpus([("a", source)])  # identical re-ingest
        assert len(detector.score_memo) == entries
        assert detector.score_memo.stats.invalidated == 0

    def test_detector_retirement_invalidates(self):
        detector = CloneDetector(similarity_threshold=0.5)
        detector.add_corpus([
            ("a", "contract A { function f(uint x) { msg.sender.transfer(x); } }"),
            ("b", "contract B { mapping(address => uint) m; "
                  "function g(address t) { m[t] += 1; } }"),
        ])
        detector.find_clones("function h(uint y) { msg.sender.transfer(y); }")
        assert len(detector.score_memo) > 0
        detector.remove_fingerprint("a")
        detector.remove_fingerprint("b")
        assert len(detector.score_memo) == 0


# ---------------------------------------------------------------------------
# warm index round trip (save -> load -> zero re-scored pairs)
# ---------------------------------------------------------------------------

class TestWarmIndexRoundTrip:
    def test_reloaded_index_rescores_zero_pairs(self, tmp_path):
        detector = CloneDetector(similarity_threshold=0.5)
        detector.add_corpus([
            ("wallet", "contract W { function w(uint a) "
                       "{ msg.sender.transfer(a); } }"),
            ("guarded", "contract G { address o; function w(uint a) "
                        "{ require(msg.sender == o); msg.sender.transfer(a); } }"),
            ("token", "contract T { mapping(address => uint) b; "
                      "function mint(address t, uint v) public { b[t] += v; } }"),
        ])
        queries = [
            ("q1", "function send(uint v) { msg.sender.transfer(v); }"),
            ("q2", "function mint2(address t, uint v) public { b[t] += v; }"),
        ]
        baseline = detector.find_clones_many(queries)
        assert detector.match_stats.pairs_scored > 0
        save_index(detector, tmp_path / "index", shards=2)
        assert (tmp_path / "index" / SCORE_MEMO_NAME).exists()

        reloaded = load_index(tmp_path / "index")
        assert reloaded.score_memo.persistent
        assert reloaded.score_memo.stats.warm_loaded == len(detector.score_memo)
        assert reloaded.find_clones_many(queries) == baseline
        # every verified pair was answered by the warm corpus-global memo
        assert reloaded.match_stats.pairs_scored == 0
        assert reloaded.score_memo.stats.hits > 0
        assert reloaded.score_memo.stats.stores == 0


# ---------------------------------------------------------------------------
# invalidation under concurrent ingest (retired-sub store guard)
# ---------------------------------------------------------------------------

class TestConcurrentIngestInvalidation:
    """A dropped memo row must never be resurrected by an in-flight store.

    The race: a worker thread computes a score for sub ``S`` while an
    ingest thread retires the last document carrying ``S``.  If the
    worker's late ``memo[key] = score`` lands after the invalidation, the
    row would outlive its carrier — a leak in memory and (worse) a stale
    row written through to the SQLite tier.  The table refuses stores
    touching retired subs until a re-ingest registers them again.
    """

    def test_late_store_after_retirement_is_refused(self):
        memo = ScoreMemoTable()
        memo.register(["AAA"])
        memo.release(["AAA"])  # last carrier gone; sub now retired
        memo[memo_key("query", "AAA")] = 80.0  # the late, in-flight store
        assert memo.get(memo_key("query", "AAA")) is None
        assert len(memo) == 0
        assert memo.stats.blocked_stores == 1

    def test_never_registered_subs_are_not_blocked(self):
        # plain query-vs-query scoring (no corpus carrier) must still memoize
        memo = ScoreMemoTable()
        memo[memo_key("q1", "q2")] = 50.0
        assert memo.get(memo_key("q1", "q2")) == 50.0
        assert memo.stats.blocked_stores == 0

    def test_reingest_lifts_the_refusal(self):
        memo = ScoreMemoTable()
        memo.register(["AAA"])
        memo.release(["AAA"])
        memo.register(["AAA"])  # the document came back
        memo[memo_key("query", "AAA")] = 80.0
        assert memo.get(memo_key("query", "AAA")) == 80.0
        memo.release(["AAA"])
        assert memo.get(memo_key("query", "AAA")) is None

    def test_disk_tier_never_resurrects_a_dropped_row(self, tmp_path):
        path = tmp_path / SCORE_MEMO_NAME
        memo = ScoreMemoTable(path)
        memo.register(["AAA"])
        memo[memo_key("query", "AAA")] = 80.0
        memo.release(["AAA"])
        assert memo.disk_rows() == 0
        memo[memo_key("query", "AAA")] = 80.0  # late store post-drop
        assert memo.disk_rows() == 0
        memo.close()
        reopened = ScoreMemoTable(path)
        assert len(reopened) == 0  # a warm reopen sees no zombie rows
        reopened.close()

    def test_guard_survives_pickle_round_trip(self):
        memo = ScoreMemoTable()
        memo.register(["AAA"])
        memo.release(["AAA"])
        clone = pickle.loads(pickle.dumps(memo))
        clone[memo_key("query", "AAA")] = 80.0
        assert clone.get(memo_key("query", "AAA")) is None
        assert clone.stats.blocked_stores == 1

    def test_concurrent_ingest_churn_cannot_resurrect_rows(self, tmp_path):
        """Threaded stress: stores race register/release churn.

        Invariant at every quiescent point: a sub whose refcount is zero
        has no rows in either tier, regardless of how stores interleaved
        with the churn.
        """
        import threading

        memo = ScoreMemoTable(tmp_path / SCORE_MEMO_NAME)
        subs = [f"SUB-{index:02d}" for index in range(8)]
        rounds = 60
        start = threading.Barrier(3)

        def churner():
            start.wait()
            for round_index in range(rounds):
                for sub in subs:
                    memo.register([sub])
                for sub in subs:
                    memo.release([sub])

        def storer(tag):
            start.wait()
            for round_index in range(rounds):
                for index, sub in enumerate(subs):
                    memo[memo_key(f"q{tag}-{round_index}", sub)] = float(index)

        threads = [threading.Thread(target=churner),
                   threading.Thread(target=storer, args=(1,)),
                   threading.Thread(target=storer, args=(2,))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # churn ended with every sub released: nothing may survive
        assert len(memo) == 0
        assert memo.disk_rows() == 0
        memo.close()
