"""Incremental diff-aware analysis: O(change) re-analysis, end to end.

The acceptance bars of the incremental subsystem:

* **parity** — a fingerprint assembled from cached function digests is
  byte-identical to the whole-source fingerprint of the same bytes, and
  a daemon fed a unified diff serves envelopes byte-identical to one
  fed the full edited corpus;
* **O(change)** — editing one of many functions re-parses exactly one
  function (asserted via the artifact-store counters), and re-ingesting
  unchanged bytes performs zero parses, zero index writes, and zero
  score-memo invalidations;
* **only the change** — the ``changed_only`` analyzer option returns
  only findings/matches the edit touched.
"""

from contextlib import contextmanager

import pytest

from repro.api import AnalysisSession, SessionConfig, canonical_json
from repro.ccd.detector import CloneDetector
from repro.core.artifacts import ArtifactStore, content_key
from repro.datasets.mutations import CloneMutator
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.service import (
    AnalysisService,
    ClusterCoordinator,
    CoordinatorConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.delta import (
    DeltaError,
    SourceJournal,
    apply_unified_diff,
    make_unified_diff,
    resolve_ingest_documents,
)
from repro.solidity.splitter import split_source

VULN = """pragma solidity ^0.4.24;
contract Wallet {
    mapping(address => uint) balances;
    function deposit() public payable {
        balances[msg.sender] += msg.value;
    }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

#: the one-function edit: only ``deposit`` changes
VULN_EDITED = VULN.replace("balances[msg.sender] += msg.value;",
                           "balances[msg.sender] += msg.value + 1;")


# ---------------------------------------------------------------------------
# the delta wire layer
# ---------------------------------------------------------------------------

class TestUnifiedDiff:
    def test_round_trip_is_byte_exact(self):
        diff = make_unified_diff(VULN, VULN_EDITED)
        assert apply_unified_diff(VULN, diff) == VULN_EDITED

    @pytest.mark.parametrize("base,new", [
        ("a\nb\nc\n", "a\nB\nc\n"),
        ("a\nb\nc", "a\nb\nc\nd"),          # no trailing newline, both sides
        ("a\n", "a"),                        # newline removed at EOF
        ("", "x\ny\n"),                      # creation from empty
        ("x\ny\n", ""),                      # truncation to empty
        ("same\n", "same\n"),                # no-op edit
    ])
    def test_newline_edge_cases(self, base, new):
        if base == new:
            with pytest.raises(DeltaError):
                apply_unified_diff(base, make_unified_diff(base, new))
            return
        assert apply_unified_diff(base, make_unified_diff(base, new)) == new

    def test_stale_base_raises(self):
        diff = make_unified_diff(VULN, VULN_EDITED)
        with pytest.raises(DeltaError):
            apply_unified_diff(VULN_EDITED, diff)  # wrong base bytes

    def test_malformed_diff_raises(self):
        with pytest.raises(DeltaError):
            apply_unified_diff(VULN, "not a diff at all")


class TestResolveIngestDocuments:
    def resolve(self, documents, retained=None):
        retained = retained or {}
        return resolve_ingest_documents(documents, retained.get)

    def test_plain_pairs_pass_through(self):
        assert self.resolve([["a", VULN]]) == [("a", VULN)]

    def test_guarded_source_with_matching_base(self):
        resolved = self.resolve(
            [{"id": "a", "source": VULN_EDITED,
              "base_version": content_key(VULN)}],
            retained={"a": VULN})
        assert resolved == [("a", VULN_EDITED)]

    def test_guarded_source_with_stale_base_raises(self):
        with pytest.raises(DeltaError):
            self.resolve(
                [{"id": "a", "source": VULN_EDITED,
                  "base_version": content_key(VULN)}],
                retained={"a": VULN_EDITED})  # daemon moved on

    def test_diff_resolves_against_retained_source(self):
        resolved = self.resolve(
            [{"id": "a", "diff": make_unified_diff(VULN, VULN_EDITED)}],
            retained={"a": VULN})
        assert resolved == [("a", VULN_EDITED)]

    def test_diff_for_unknown_id_raises(self):
        with pytest.raises(DeltaError):
            self.resolve([{"id": "ghost",
                           "diff": make_unified_diff(VULN, VULN_EDITED)}])

    def test_source_and_diff_together_raise(self):
        with pytest.raises(DeltaError):
            self.resolve([{"id": "a", "source": VULN_EDITED,
                           "diff": make_unified_diff(VULN, VULN_EDITED)}],
                         retained={"a": VULN})


class TestSourceJournal:
    def test_record_get_forget_persist(self, tmp_path):
        path = tmp_path / "sources.sqlite"
        with SourceJournal(path) as journal:
            journal.record("a", VULN, content_key(VULN))
            journal.record(("tuple", 7), VULN_EDITED, content_key(VULN_EDITED))
            assert journal.get("a") == VULN
            assert journal.get(("tuple", 7)) == VULN_EDITED
            assert journal.count() == 2
        with SourceJournal(path) as journal:  # survives reopen
            assert journal.get("a") == VULN
            journal.forget("a")
            assert journal.get("a") is None
            assert journal.count() == 1


# ---------------------------------------------------------------------------
# the function-digest tier
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mutated_pairs():
    """``(base, edited)`` contract pairs: clone-type mutations over a corpus."""
    qa = generate_qa_corpus(seed=5)
    sanctuary = generate_sanctuary(qa, seed=7, independent_contracts=10)
    mutator = CloneMutator(seed=23)
    pairs = []
    for index, contract in enumerate(sanctuary.contracts[:12]):
        clone_type = (index % 3) + 1
        pairs.append((contract.source,
                      mutator.mutate(contract.source, clone_type)))
    return pairs


class TestDeltaFingerprintParity:
    def test_delta_assembly_is_byte_identical(self, mutated_pairs):
        """The hard bar: delta-assembled == whole-source, byte for byte."""
        for base, edited in mutated_pairs:
            warm = ArtifactStore()
            warm.get(base).fingerprint          # seed the function digests
            via_delta = warm.get(edited).fingerprint
            cold = ArtifactStore()
            whole = cold.get(edited).fingerprint
            assert via_delta.text == whole.text
            assert via_delta.contracts == whole.contracts

    def test_never_a_wrong_fallback(self, mutated_pairs):
        for base, edited in mutated_pairs:
            warm = ArtifactStore()
            warm.get(base).fingerprint
            warm.get(edited).fingerprint
            assert warm.stats.delta_fallbacks == 0

    def test_one_function_edit_parses_one_function(self):
        """Edit 1 of >= 50 functions: exactly one standalone re-parse."""
        functions = [
            f"    function f{i}(uint v) public returns (uint) "
            f"{{ return v + {i}; }}\n"
            for i in range(60)]
        base = "contract Big {\n" + "".join(functions) + "}\n"
        edited = base.replace("return v + 7;", "return v + 700;")
        assert len(list(split_source(base).spans)) >= 50
        store = ArtifactStore()
        store.get(base).fingerprint
        parses_before = store.stats.function_parses
        whole_parses_before = store.stats.parse_calls
        fingerprint = store.get(edited).fingerprint
        assert store.stats.delta_assemblies == 1
        assert store.stats.function_parses - parses_before == 1
        assert store.stats.parse_calls == whole_parses_before  # no whole parse
        assert fingerprint.text == ArtifactStore().get(edited).fingerprint.text


# ---------------------------------------------------------------------------
# the changed_only analyzer option
# ---------------------------------------------------------------------------

class TestChangedOnly:
    def run_ccc(self, source, changed_only=None):
        options = {"ccc": {"changed_only": changed_only}} if changed_only else {}
        with AnalysisSession(SessionConfig(backend="serial")) as session:
            return session.run([("w", source)], analyses=["ccc"],
                               options=options)

    def test_identical_base_filters_everything(self):
        [envelope] = self.run_ccc(VULN, changed_only={"w": VULN})
        assert envelope.payload.findings == []

    def test_one_function_edit_keeps_only_its_findings(self):
        [unfiltered] = self.run_ccc(VULN_EDITED)
        [filtered] = self.run_ccc(VULN_EDITED, changed_only={"w": VULN})
        assert filtered.payload.findings  # the edited deposit() still flags
        assert len(filtered.payload.findings) < len(
            unfiltered.payload.findings)
        # deposit() spans lines 4-6; withdraw's findings are filtered out
        assert all(4 <= finding.line <= 6
                   for finding in filtered.payload.findings)

    def test_ccd_changed_only_drops_unchanged_matches(self):
        corpus = [("w", VULN), ("v", VULN)]
        options = {"ccd": {"changed_only": {"w": VULN}}}
        with AnalysisSession(SessionConfig(backend="serial")) as session:
            results = session.run(corpus, analyses=["ccd"], options=options)
        by_id = {envelope.contract_id: envelope.payload
                 for envelope in results}
        assert by_id["w"] == []      # base identical: nothing changed
        assert by_id["v"]            # no base given: full matches


# ---------------------------------------------------------------------------
# the service delta path
# ---------------------------------------------------------------------------

def make_config(tmp_path, name="svc"):
    return ServiceConfig(data_dir=str(tmp_path / name), port=0,
                         backend="serial")


@pytest.fixture(scope="module")
def small_corpus():
    qa = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 3, "ethereum.stackexchange": 6})
    sanctuary = generate_sanctuary(qa, seed=11, independent_contracts=4)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    contracts.append(("wallet", VULN))
    return contracts


def probe_envelopes(client):
    job = client.submit([["probe", VULN_EDITED]], analyses=["ccd", "ccc"])
    finished = client.wait(job["id"], timeout=120.0)
    return [canonical_json(envelope) for envelope in finished["results"]]


class TestServiceDeltaIngest:
    def test_noop_reingest_is_free(self, tmp_path, small_corpus):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            client.ingest(small_corpus)
            parses = service.session.stats.parse_calls
            invalidated = service.detector.score_memo.stats.invalidated
            summary = client.ingest(small_corpus)  # identical bytes
            assert summary["unchanged"] == len(small_corpus)
            assert summary["ingested"] == 0
            assert summary["shards_rewritten"] == 0  # touched no file
            assert service.session.stats.parse_calls == parses
            assert service.detector.score_memo.stats.invalidated == invalidated

    def test_diff_ingest_serves_identical_envelopes(self, tmp_path,
                                                    small_corpus):
        edited_corpus = [(doc_id, VULN_EDITED if doc_id == "wallet" else src)
                         for doc_id, src in small_corpus]
        with AnalysisService(make_config(tmp_path, "delta")) as service:
            client = ServiceClient(service.url)
            client.ingest(small_corpus)
            summary = client.ingest_delta(
                "wallet", diff=make_unified_diff(VULN, VULN_EDITED),
                base_version=content_key(VULN))
            assert summary["ingested"] == 1
            via_delta = probe_envelopes(client)
            stats = client.stats()
        with AnalysisService(make_config(tmp_path, "full")) as service:
            client = ServiceClient(service.url)
            client.ingest(edited_corpus)
            via_full = probe_envelopes(client)
        assert via_delta == via_full  # byte-identical canonical envelopes
        incremental = stats["incremental"]
        assert incremental["delta_fallbacks"] == 0
        assert incremental["functions_reused"] >= 1
        assert incremental["sources_retained"] == len(small_corpus)

    def test_stale_base_version_is_rejected(self, tmp_path, small_corpus):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            client.ingest(small_corpus)
            with pytest.raises(ServiceError, match="base_version"):
                client.ingest_delta(
                    "wallet", source=VULN_EDITED,
                    base_version=content_key("something else entirely"))
            # ... and the index is untouched by the rejected delta
            assert client.stats()["index"]["documents"] == len(small_corpus)

    def test_guarded_replacement_round_trip(self, tmp_path, small_corpus):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            client.ingest(small_corpus)
            summary = client.ingest_delta(
                "wallet", source=VULN_EDITED, base_version=content_key(VULN))
            assert summary["ingested"] == 1
            # the journal now retains the edited bytes: a diff against the
            # *new* version applies cleanly
            back = client.ingest_delta(
                "wallet", diff=make_unified_diff(VULN_EDITED, VULN),
                base_version=content_key(VULN_EDITED))
            assert back["ingested"] == 1


# ---------------------------------------------------------------------------
# the coordinator delta path (sharded)
# ---------------------------------------------------------------------------

@contextmanager
def in_process_cluster(tmp_path, shard_count):
    workers = []
    coordinator = None
    try:
        for index in range(shard_count):
            service = AnalysisService(make_config(tmp_path, f"worker-{index}"))
            service.start()
            workers.append(service)
        coordinator = ClusterCoordinator(CoordinatorConfig(
            data_dir=str(tmp_path / "coordinator"), port=0,
            workers=tuple(worker.url for worker in workers),
            connect_timeout=5.0, shard_timeout=60.0))
        coordinator.start()
        yield coordinator
    finally:
        if coordinator is not None:
            coordinator.stop()
        for worker in workers:
            worker.stop()


class TestCoordinatorDeltaIngest:
    def test_delta_through_coordinator_matches_single_node(self, tmp_path,
                                                           small_corpus):
        edited_corpus = [(doc_id, VULN_EDITED if doc_id == "wallet" else src)
                         for doc_id, src in small_corpus]
        with in_process_cluster(tmp_path, 2) as coordinator:
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            client.ingest(small_corpus)
            # the coordinator resolves the diff against its own journal
            # before routing the resolved source to the owning shard
            summary = client.ingest_delta(
                "wallet", diff=make_unified_diff(VULN, VULN_EDITED),
                base_version=content_key(VULN))
            assert summary["ingested"] == 1
            via_cluster = probe_envelopes(client)
        with AnalysisService(make_config(tmp_path, "single")) as service:
            client = ServiceClient(service.url)
            client.ingest(edited_corpus)
            via_single = probe_envelopes(client)
        assert via_cluster == via_single  # byte parity across the topology

    def test_unchanged_counts_aggregate_across_shards(self, tmp_path,
                                                      small_corpus):
        with in_process_cluster(tmp_path, 2) as coordinator:
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            client.ingest(small_corpus)
            summary = client.ingest(small_corpus)  # identical bytes
            assert summary["unchanged"] == len(small_corpus)
            assert summary["ingested"] == 0


# ---------------------------------------------------------------------------
# repro watch
# ---------------------------------------------------------------------------

class TestWatchSession:
    def test_watch_reports_only_changed_findings(self, tmp_path):
        from repro.cli import _WatchSession

        watched = tmp_path / "watched"
        watched.mkdir()
        (watched / "wallet.sol").write_text(VULN, encoding="utf-8")
        lines: list = []
        with AnalysisService(make_config(tmp_path)) as service:
            session = _WatchSession(
                ServiceClient(service.url), watched, ["ccd", "ccc"],
                out=lines.append)
            assert session.start() == 1
            assert session.poll() == 0          # nothing edited yet
            (watched / "wallet.sol").write_text(VULN_EDITED, encoding="utf-8")
            assert session.poll() == 1
            report = "\n".join(lines)
            # only the edited deposit()'s findings are printed; withdraw's
            # reentrancy finding exists but did not change
            assert "arithmetic-overflow" in report
            assert "reentrancy" not in report
            (watched / "wallet.sol").unlink()   # deletion retires the doc
            assert session.poll() == 0
            assert ServiceClient(service.url).stats()["index"]["documents"] == 0
        assert any("removed from index" in line for line in lines)
