"""Tests for classification metrics and the Spearman correlation."""

import math

import pytest

from repro.metrics import ConfusionCounts, f1_score, precision, recall, spearman_rho


class TestPrecisionRecall:
    def test_precision_basic(self):
        assert precision(8, 2) == 0.8

    def test_precision_nothing_reported(self):
        assert precision(0, 0) == 0.0

    def test_recall_basic(self):
        assert recall(6, 2) == 0.75

    def test_recall_nothing_relevant(self):
        assert recall(0, 0) == 0.0

    def test_f1_harmonic_mean(self):
        assert f1_score(0.5, 0.5) == pytest.approx(0.5)
        assert f1_score(1.0, 0.0) == 0.0

    def test_f1_known_value(self):
        assert f1_score(0.9666, 0.2563) == pytest.approx(0.4052, abs=1e-3)


class TestConfusionCounts:
    def test_add_all_quadrants(self):
        counts = ConfusionCounts()
        counts.add(True, True)
        counts.add(True, False)
        counts.add(False, True)
        counts.add(False, False)
        assert (counts.true_positives, counts.false_positives,
                counts.false_negatives, counts.true_negatives) == (1, 1, 1, 1)

    def test_derived_metrics(self):
        counts = ConfusionCounts(true_positives=8, false_positives=2, false_negatives=2)
        assert counts.precision == 0.8
        assert counts.recall == 0.8
        assert counts.f1 == pytest.approx(0.8)

    def test_merge(self):
        merged = ConfusionCounts(true_positives=1).merge(ConfusionCounts(true_positives=2, false_positives=1))
        assert merged.true_positives == 3 and merged.false_positives == 1

    def test_as_dict_keys(self):
        assert set(ConfusionCounts().as_dict()) == {"tp", "fp", "fn", "tn", "precision", "recall", "f1"}


class TestSpearman:
    def test_perfect_monotonic_correlation(self):
        rho, p_value = spearman_rho([1, 2, 3, 4, 5], [10, 20, 30, 40, 50])
        assert rho == pytest.approx(1.0)
        assert p_value < 0.05

    def test_perfect_inverse_correlation(self):
        rho, _ = spearman_rho([1, 2, 3, 4, 5], [50, 40, 30, 20, 10])
        assert rho == pytest.approx(-1.0)

    def test_monotonic_but_nonlinear_is_still_one(self):
        first = [1, 2, 3, 4, 5, 6]
        second = [math.exp(x) for x in first]
        rho, _ = spearman_rho(first, second)
        assert rho == pytest.approx(1.0)

    def test_no_correlation_near_zero(self):
        first = list(range(40))
        second = [(x * 17) % 7 for x in range(40)]
        rho, _ = spearman_rho(first, second)
        assert abs(rho) < 0.35

    def test_ties_handled(self):
        rho, _ = spearman_rho([1, 1, 2, 2, 3, 3], [1, 1, 2, 2, 3, 3])
        assert rho == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            spearman_rho([1, 2, 3], [1, 2])

    def test_tiny_samples_return_neutral(self):
        assert spearman_rho([1, 2], [2, 1]) == (0.0, 1.0)

    def test_p_value_decreases_with_sample_size(self):
        small = spearman_rho([1, 2, 3, 4, 5], [1, 3, 2, 5, 4])[1]
        big_first = list(range(100))
        big_second = [x + (1 if x % 7 == 0 else 0) for x in big_first]
        big = spearman_rho(big_first, big_second)[1]
        assert big < small

    def test_rho_bounded(self):
        rho, p_value = spearman_rho([3, 1, 4, 1, 5, 9, 2, 6], [2, 7, 1, 8, 2, 8, 1, 8])
        assert -1.0 <= rho <= 1.0 and 0.0 <= p_value <= 1.0
