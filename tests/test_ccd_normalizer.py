"""Tests for CCD normalization and tokenization (Sections 5.1-5.3)."""

import pytest

from repro.ccd.normalizer import Normalizer
from repro.solidity.errors import SolidityParseError

normalizer = Normalizer()


class TestPaperExample:
    PAPER_INPUT = """
contract Test {
    function test(uint amount) {
        msg.sender.transfer(amount);
    }
}
"""

    def test_normalization_matches_paper_section_5_2(self):
        text = normalizer.normalize_text(self.PAPER_INPUT)
        assert text == "contract c function f ( uint ) { msg . sender . transfer ( uint ) ; }"

    def test_tokens_preserve_relevant_context(self):
        unit = normalizer.normalize(self.PAPER_INPUT)
        tokens = unit.all_tokens()
        for expected in ("msg", ".", "sender", "transfer", "uint"):
            assert expected in tokens


class TestRenaming:
    def test_contract_renamed_to_c(self):
        unit = normalizer.normalize("contract MyToken { function f() public {} }")
        assert unit.contracts[0].name == "c"
        assert "contract" in unit.contracts[0].functions[0].tokens

    def test_library_renamed_to_l(self):
        unit = normalizer.normalize("library SafeMath { function add(uint a, uint b) internal {} }")
        assert unit.contracts[0].name == "l"

    def test_function_name_renamed_to_f(self):
        tokens = normalizer.normalize("function withdrawEverything() public {}").all_tokens()
        assert "f" in tokens and "withdrawEverything" not in tokens

    def test_modifier_renamed_to_m(self):
        unit = normalizer.normalize(
            "contract C { modifier onlyOwner() { _; } }")
        all_tokens = unit.all_tokens()
        assert "m" in all_tokens and "onlyOwner" not in all_tokens

    def test_parameters_renamed_to_type(self):
        tokens = normalizer.normalize(
            "function f(address recipient, uint amount) { recipient.transfer(amount); }").all_tokens()
        assert "recipient" not in tokens and "amount" not in tokens
        assert "address" in tokens and "uint" in tokens

    def test_locals_renamed_to_type(self):
        tokens = normalizer.normalize("function f() { uint fee = 100; total += fee; }").all_tokens()
        assert "fee" not in tokens

    def test_unknown_identifiers_keep_their_name(self):
        tokens = normalizer.normalize("function f() { owner = msg.sender; }").all_tokens()
        assert "owner" in tokens

    def test_missing_type_defaults_to_uint(self):
        tokens = normalizer.normalize("function f(amount) { x = amount; }").all_tokens()
        assert "uint" in tokens
        assert "amount" not in tokens

    def test_sized_integers_canonicalised(self):
        first = normalizer.normalize_text("function f(uint256 a) { x = a; }")
        second = normalizer.normalize_text("function f(uint8 b) { x = b; }")
        assert first == second

    def test_string_literals_replaced(self):
        tokens = normalizer.normalize('function f() { require(true, "error message"); }').all_tokens()
        assert "stringLiteral" in tokens and "error message" not in " ".join(tokens)

    def test_numeric_constants_untouched(self):
        tokens = normalizer.normalize("function f() { x = 12345; }").all_tokens()
        assert "12345" in tokens

    def test_visibility_removed(self):
        text = normalizer.normalize_text("function f() public view returns (uint) { return 1; }")
        assert "public" not in text and "view" not in text


class TestTypeIInsensitivity:
    def test_whitespace_and_comments_irrelevant(self):
        compact = "function f(uint a){a=a+1;}"
        verbose = """
// this is a comment
function f( uint a )
{
    /* update */ a = a + 1 ;
}
"""
        assert normalizer.normalize_text(compact) == normalizer.normalize_text(verbose)

    def test_type_ii_clone_identical_after_normalization(self):
        original = "function pay(address to, uint amount) { to.transfer(amount); }"
        renamed = "function sendMoney(address dest, uint wad) { dest.transfer(wad); }"
        assert normalizer.normalize_text(original) == normalizer.normalize_text(renamed)


class TestStructure:
    def test_state_variables_ignored(self):
        unit = normalizer.normalize("contract C { uint public total; function f() public {} }")
        assert "total" not in unit.all_tokens()

    def test_event_declarations_ignored(self):
        unit = normalizer.normalize(
            "contract C { event Paid(address who); function f() public {} }")
        assert "Paid" not in unit.all_tokens()

    def test_one_entry_per_function_plus_header(self):
        unit = normalizer.normalize(
            "contract C { function a() public {} function b() public {} function c() public {} }")
        # one segment for the contract header and one per function
        assert len(unit.contracts[0].functions) == 4
        assert unit.contracts[0].functions[0].name == "header"

    def test_two_contracts_two_entries(self):
        unit = normalizer.normalize("contract A { function f() public {} } contract B { function g() public {} }")
        assert len(unit.contracts) == 2

    def test_statement_snippet_wrapped_as_function(self):
        unit = normalizer.normalize("balances[msg.sender] += msg.value;")
        assert len(unit.contracts) == 1 and len(unit.contracts[0].functions) == 1

    def test_unparsable_raises(self):
        with pytest.raises(SolidityParseError):
            normalizer.normalize("just some plain english, nothing else going on here")

    def test_constructor_tokenized(self):
        tokens = normalizer.normalize("contract C { constructor() public { owner = msg.sender; } }").all_tokens()
        assert "constructor" in tokens
