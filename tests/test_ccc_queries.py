"""Per-query tests: each of the 17 queries on positive and negative examples."""

import pytest

from repro.ccc import ContractChecker, DaspCategory

checker = ContractChecker(timeout=30.0)


def categories_of(source, **kwargs):
    return {finding.category for finding in checker.analyze(source, **kwargs).findings}


def query_ids_of(source, **kwargs):
    return {finding.query_id for finding in checker.analyze(source, **kwargs).findings}


class TestAccessControl:
    def test_unprotected_owner_write(self):
        source = """
contract C {
    address owner;
    constructor() public { owner = msg.sender; }
    function init(address newOwner) public { owner = newOwner; }
    function sweep() public { require(msg.sender == owner); msg.sender.transfer(address(this).balance); }
}
"""
        assert "access-control-state-write" in query_ids_of(source)

    def test_protected_owner_write_is_clean(self):
        source = """
contract C {
    address owner;
    constructor() public { owner = msg.sender; }
    function setOwner(address newOwner) public {
        require(msg.sender == owner);
        owner = newOwner;
    }
    function sweep() public { require(msg.sender == owner); msg.sender.transfer(address(this).balance); }
}
"""
        assert "access-control-state-write" not in query_ids_of(source)

    def test_unprotected_selfdestruct(self):
        assert "access-control-selfdestruct" in query_ids_of(
            "contract C { function close() public { selfdestruct(msg.sender); } }")

    def test_selfdestruct_behind_owner_check_is_clean(self):
        source = """
contract C {
    address owner;
    constructor() public { owner = msg.sender; }
    function close() public { require(msg.sender == owner); selfdestruct(msg.sender); }
}
"""
        assert "access-control-selfdestruct" not in query_ids_of(source)

    def test_selfdestruct_behind_modifier_is_clean(self):
        source = """
contract C {
    address owner;
    constructor() public { owner = msg.sender; }
    modifier onlyOwner() { require(msg.sender == owner); _; }
    function close() public onlyOwner { selfdestruct(msg.sender); }
}
"""
        assert "access-control-selfdestruct" not in query_ids_of(source)

    def test_default_function_delegatecall(self):
        source = "contract P { address lib; function () payable { lib.delegatecall(msg.data); } }"
        assert "access-control-default-delegatecall" in query_ids_of(source)

    def test_named_function_delegatecall_not_reported_by_proxy_query(self):
        source = "contract P { address lib; function f(bytes data) public { lib.delegatecall(data); } }"
        assert "access-control-default-delegatecall" not in query_ids_of(source)

    def test_delegatecall_with_msg_data_guard_is_clean(self):
        source = """
contract P {
    address lib;
    function () payable {
        require(msg.data.length == 0);
        lib.delegatecall(msg.data);
    }
}
"""
        assert "access-control-default-delegatecall" not in query_ids_of(source)

    def test_tx_origin_authentication(self):
        source = """
contract C {
    address owner;
    function pay(address to) public {
        if (tx.origin == owner) { to.transfer(1 ether); }
    }
}
"""
        assert "access-control-tx-origin" in query_ids_of(source)

    def test_msg_sender_authentication_not_flagged_as_tx_origin(self):
        source = """
contract C {
    address owner;
    function pay(address to) public {
        if (msg.sender == owner) { to.transfer(1 ether); }
    }
}
"""
        assert "access-control-tx-origin" not in query_ids_of(source)


class TestReentrancy:
    def test_call_value_before_state_update(self, reentrancy_snippet):
        assert DaspCategory.REENTRANCY in categories_of(reentrancy_snippet)

    def test_state_update_before_transfer_is_clean(self):
        source = """
contract C {
    mapping(address => uint) balances;
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        balances[msg.sender] -= amount;
        msg.sender.transfer(amount);
    }
}
"""
        assert DaspCategory.REENTRANCY not in categories_of(source)

    def test_mutex_guard_suppresses_finding(self):
        source = """
contract C {
    mapping(address => uint) balances;
    bool locked;
    function withdraw(uint amount) public {
        require(!locked);
        locked = true;
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
        locked = false;
    }
}
"""
        assert DaspCategory.REENTRANCY not in categories_of(source)

    def test_call_on_fixed_address_constant_not_reported(self):
        source = """
contract C {
    uint counter;
    function poke() public {
        counter += 1;
    }
}
"""
        assert DaspCategory.REENTRANCY not in categories_of(source)

    def test_new_style_call_specifier(self):
        source = """
contract C {
    mapping(address => uint) shares;
    function claim() public {
        (bool ok, ) = msg.sender.call{value: shares[msg.sender]}("");
        require(ok);
        shares[msg.sender] = 0;
    }
}
"""
        assert DaspCategory.REENTRANCY in categories_of(source)


class TestArithmetic:
    VULNERABLE = """
pragma solidity ^0.4.24;
contract T {
    mapping(address => uint) balances;
    function transfer(address to, uint value) public {
        balances[msg.sender] -= value;
        balances[to] += value;
    }
}
"""

    def test_unchecked_token_math(self):
        assert DaspCategory.ARITHMETIC in categories_of(self.VULNERABLE)

    def test_pragma_08_suppresses(self):
        assert DaspCategory.ARITHMETIC not in categories_of(
            self.VULNERABLE.replace("^0.4.24", "^0.8.0"))

    def test_require_guard_suppresses(self):
        guarded = self.VULNERABLE.replace(
            "balances[msg.sender] -= value;",
            "require(balances[msg.sender] >= value);\n        balances[msg.sender] -= value;")
        assert DaspCategory.ARITHMETIC not in categories_of(guarded)

    def test_constant_only_arithmetic_not_reported(self):
        source = """
pragma solidity ^0.4.24;
contract C { uint total; function f() public { total = 2 + 3; } }
"""
        assert DaspCategory.ARITHMETIC not in categories_of(source)

    def test_safemath_suppresses(self):
        source = """
pragma solidity ^0.4.24;
contract C {
    mapping(address => uint) balances;
    function transfer(address to, uint value) public {
        balances[msg.sender] = balances[msg.sender].sub(value);
        balances[to] = balances[to].add(value);
    }
}
"""
        assert DaspCategory.ARITHMETIC not in categories_of(source)


class TestBadRandomness:
    def test_lottery_with_block_number(self):
        source = """
contract L {
    function play() public payable {
        uint random = uint(keccak256(block.number)) % 100;
        if (random > 50) { msg.sender.transfer(msg.value * 2); }
    }
}
"""
        assert DaspCategory.BAD_RANDOMNESS in categories_of(source)

    def test_blockhash_randomness(self):
        source = """
contract L {
    address[] players;
    function draw() public {
        uint winner = uint(blockhash(block.number - 1)) % players.length;
        players[winner].transfer(address(this).balance);
    }
}
"""
        assert DaspCategory.BAD_RANDOMNESS in categories_of(source)

    def test_block_number_for_bookkeeping_not_reported(self):
        source = """
contract C {
    mapping(address => uint) lastAction;
    function act() public {
        require(block.number > lastAction[msg.sender] + 10);
        lastAction[msg.sender] = block.number;
        counter += 1;
    }
    uint counter;
}
"""
        assert DaspCategory.BAD_RANDOMNESS not in categories_of(source)


class TestDenialOfService:
    def test_unbounded_payout_loop(self):
        source = """
contract C {
    address[] investors;
    mapping(address => uint) payouts;
    function join() public payable { investors.push(msg.sender); payouts[msg.sender] += msg.value; }
    function distribute() public {
        for (uint i = 0; i < investors.length; i++) {
            investors[i].transfer(payouts[investors[i]]);
        }
    }
}
"""
        assert DaspCategory.DENIAL_OF_SERVICE in categories_of(source)

    def test_king_of_the_hill_transfer(self):
        source = """
contract C {
    address king;
    uint highestBid;
    function bid() public payable {
        require(msg.value > highestBid);
        king.transfer(highestBid);
        king = msg.sender;
        highestBid = msg.value;
    }
}
"""
        assert DaspCategory.DENIAL_OF_SERVICE in categories_of(source)

    def test_fixed_small_loop_not_reported(self):
        source = """
contract C {
    uint total;
    function sum() public {
        for (uint i = 0; i < 10; i++) { total += i; }
    }
}
"""
        assert DaspCategory.DENIAL_OF_SERVICE not in categories_of(source)


class TestFrontRunning:
    def test_puzzle_reward(self):
        source = """
contract P {
    bytes32 target;
    address winner;
    uint reward;
    function solve(bytes32 solution) public {
        if (keccak256(solution) == target) {
            winner = msg.sender;
            msg.sender.transfer(reward);
        }
    }
}
"""
        assert DaspCategory.FRONT_RUNNING in categories_of(source)

    def test_owner_restricted_payout_not_reported(self):
        source = """
contract P {
    address owner;
    constructor() public { owner = msg.sender; }
    function claim() public {
        require(msg.sender == owner);
        msg.sender.transfer(address(this).balance);
    }
}
"""
        assert DaspCategory.FRONT_RUNNING not in categories_of(source)


class TestShortAddresses:
    def test_erc20_transfer_signature(self):
        source = """
pragma solidity ^0.4.24;
contract T {
    mapping(address => uint) balances;
    function transfer(address to, uint value) public returns (bool) {
        require(balances[msg.sender] >= value);
        balances[msg.sender] -= value;
        balances[to] += value;
        return true;
    }
}
"""
        assert DaspCategory.SHORT_ADDRESSES in categories_of(source)

    def test_payload_size_check_suppresses(self):
        source = """
pragma solidity ^0.4.24;
contract T {
    mapping(address => uint) balances;
    modifier onlyPayloadSize(uint size) { require(msg.data.length >= size + 4); _; }
    function transfer(address to, uint value) public onlyPayloadSize(64) returns (bool) {
        require(balances[msg.sender] >= value);
        balances[msg.sender] -= value;
        balances[to] += value;
        return true;
    }
}
"""
        assert DaspCategory.SHORT_ADDRESSES not in categories_of(source)

    def test_no_address_parameter_not_reported(self):
        source = """
contract T {
    mapping(address => uint) balances;
    function burn(uint value) public {
        balances[msg.sender] -= value;
    }
}
"""
        assert DaspCategory.SHORT_ADDRESSES not in categories_of(source)


class TestTimeManipulation:
    def test_timestamp_decides_payout(self):
        source = """
contract C {
    function finalize() public {
        if (block.timestamp % 15 == 0) { msg.sender.transfer(address(this).balance); }
    }
}
"""
        assert DaspCategory.TIME_MANIPULATION in categories_of(source)

    def test_now_stored_in_state(self):
        source = "contract C { uint start; function init() public { start = now; } }"
        assert DaspCategory.TIME_MANIPULATION in categories_of(source)

    def test_no_timestamp_use_not_reported(self):
        source = "contract C { uint x; function f() public { x += 1; } }"
        assert DaspCategory.TIME_MANIPULATION not in categories_of(source)


class TestUncheckedCalls:
    def test_ignored_send(self):
        assert "unchecked-low-level-call" in query_ids_of(
            "contract C { function pay(address to) public { to.send(1 ether); } }")

    def test_ignored_call_value(self):
        assert "unchecked-low-level-call" in query_ids_of(
            "contract C { function pay(address to, uint v) public { to.call.value(v)(); } }")

    def test_send_inside_require_is_clean(self):
        assert "unchecked-low-level-call" not in query_ids_of(
            "contract C { function pay(address to) public { require(to.send(1 ether)); } }")

    def test_send_result_in_if_is_clean(self):
        assert "unchecked-low-level-call" not in query_ids_of(
            "contract C { function pay(address to) public { if (!to.send(1 ether)) { revert(); } } }")

    def test_transfer_is_not_reported(self):
        assert "unchecked-low-level-call" not in query_ids_of(
            "contract C { function pay(address to) public { to.transfer(1 ether); } }")

    def test_checked_bool_assignment_is_clean(self):
        assert "unchecked-low-level-call" not in query_ids_of(
            'contract C { function pay(address to) public { (bool ok, ) = to.call{value: 1 ether}(""); require(ok); } }')


class TestUnknownUnknowns:
    def test_uninitialized_storage_struct(self):
        source = """
pragma solidity ^0.4.24;
contract C {
    address owner;
    struct Record { string name; address account; }
    function register(string name) public {
        Record record;
        record.name = name;
        record.account = msg.sender;
    }
}
"""
        assert "uninitialized-storage-pointer" in query_ids_of(source)

    def test_memory_struct_is_clean(self):
        source = """
pragma solidity ^0.4.24;
contract C {
    struct Record { string name; address account; }
    function register(string name) public {
        Record memory record;
        record.name = name;
    }
}
"""
        assert "uninitialized-storage-pointer" not in query_ids_of(source)

    def test_recent_compiler_suppresses(self):
        source = """
pragma solidity ^0.8.0;
contract C {
    struct Record { string name; }
    function register(string memory name) public {
        Record storage record;
        record.name = name;
    }
}
"""
        assert "uninitialized-storage-pointer" not in query_ids_of(source)


class TestQueryRestriction:
    def test_restrict_to_category(self, vulnerable_wallet_source):
        result = checker.analyze(vulnerable_wallet_source,
                                 categories=[DaspCategory.REENTRANCY])
        assert result.findings
        assert all(f.category is DaspCategory.REENTRANCY for f in result.findings)

    def test_restrict_to_query_id(self, vulnerable_wallet_source):
        result = checker.analyze(vulnerable_wallet_source,
                                 query_ids=["access-control-selfdestruct"])
        assert {f.query_id for f in result.findings} == {"access-control-selfdestruct"}
