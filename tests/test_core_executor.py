"""Tests for the serial/thread/process execution backends (repro.core.executor)."""

from __future__ import annotations

import os

import pytest

from repro.ccc.checker import ContractChecker
from repro.ccd.detector import CloneDetector
from repro.core.artifacts import ArtifactStore
from repro.core.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

REENTRANT = """
contract Bank {
    mapping(address => uint) balances;
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

SAFE = """
contract Safe {
    uint value;
    function set(uint v) public { value = v; }
}
"""

CORPUS = [
    ("reentrant", REENTRANT),
    ("safe", SAFE),
    ("reentrant-copy", REENTRANT),
    ("garbage", "not solidity at all ==="),
    ("suicidal", "contract Kill { function die() public { selfdestruct(msg.sender); } }"),
]


def _square(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return value * value


class TestFactory:
    def test_create_each_backend(self):
        assert isinstance(Executor.create("serial"), SerialExecutor)
        assert isinstance(Executor.create("thread"), ThreadExecutor)
        assert isinstance(Executor.create("process"), ProcessExecutor)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            Executor.create("gpu")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Executor.create("serial", chunk_size=0)
        with pytest.raises(ValueError):
            Executor.create("thread", max_workers=0)

    def test_shared_state_flags(self):
        assert SerialExecutor().supports_shared_state
        assert ThreadExecutor().supports_shared_state
        assert not ProcessExecutor().supports_shared_state


class TestMapping:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_preserves_order(self, backend):
        with Executor.create(backend, max_workers=2) as executor:
            assert executor.map(_square, range(17)) == [n * n for n in range(17)]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_map_batches_matches_map(self, backend, chunk_size):
        with Executor.create(backend, max_workers=2) as executor:
            expected = [n * n for n in range(11)]
            assert executor.map_batches(_square, range(11), chunk_size=chunk_size) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_input(self, backend):
        with Executor.create(backend) as executor:
            assert executor.map(_square, []) == []
            assert executor.map_batches(_square, []) == []

    def test_close_is_idempotent_and_terminal(self):
        executor = ThreadExecutor(max_workers=1)
        assert executor.map(_square, [2]) == [4]
        executor.close()
        executor.close()
        # close is terminal: no silent pool resurrection after teardown
        # (long-lived daemons must not leak workers past shutdown)
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [3])


class TestStreaming:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_imap_batches_matches_map(self, backend, chunk_size):
        with Executor.create(backend, max_workers=2) as executor:
            expected = [n * n for n in range(11)]
            assert list(executor.imap_batches(
                _square, range(11), chunk_size=chunk_size)) == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_imap_batches_empty_input(self, backend):
        with Executor.create(backend) as executor:
            assert list(executor.imap_batches(_square, [])) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_imap_batches_is_lazy(self, backend):
        """The stream can be abandoned after the first item."""
        with Executor.create(backend, max_workers=2, chunk_size=2) as executor:
            stream = executor.imap_batches(_square, range(100), window=2)
            assert next(stream) == 0
            assert next(stream) == 1
            stream.close()

    def test_serial_imap_never_runs_ahead(self):
        """The serial backend computes each item only when it is consumed."""
        computed = []

        def track(value):
            computed.append(value)
            return value

        stream = SerialExecutor().imap_batches(track, range(5))
        assert next(stream) == 0
        assert next(stream) == 1
        assert computed == [0, 1]

    def test_window_bounds_in_flight_chunks(self):
        """At most window chunks of results are materialized ahead."""
        with ThreadExecutor(max_workers=1) as executor:
            stream = executor.imap_batches(_square, range(20), chunk_size=2, window=3)
            assert next(stream) == 0
            # pool has at most window=3 chunks submitted; draining works
            assert list(stream) == [n * n for n in range(1, 20)]


class TestAnalysisParity:
    """Serial, thread, and process backends must produce identical results."""

    def _sources(self):
        return [source for _, source in CORPUS]

    def test_checker_analyze_many_parity(self):
        store = ArtifactStore()
        checker = ContractChecker(store=store)
        baseline = checker.analyze_many(self._sources())
        for backend in ("thread", "process"):
            with Executor.create(backend, max_workers=2, chunk_size=2) as executor:
                results = checker.analyze_many(self._sources(), executor=executor)
            assert [r.parse_error for r in results] == [r.parse_error for r in baseline]
            assert [sorted(r.query_ids()) for r in results] == \
                   [sorted(r.query_ids()) for r in baseline]
            assert [r.findings for r in results] == [r.findings for r in baseline]

    def test_detector_add_corpus_parity(self):
        baseline = CloneDetector()
        baseline.add_corpus(CORPUS)
        for backend in BACKENDS:
            detector = CloneDetector(store=ArtifactStore())
            with Executor.create(backend, max_workers=2, chunk_size=2) as executor:
                added = detector.add_corpus(CORPUS, executor=executor)
            assert added == len(baseline)
            assert set(detector.fingerprints) == set(baseline.fingerprints)
            assert {doc: fp.text for doc, fp in detector.fingerprints.items()} == \
                   {doc: fp.text for doc, fp in baseline.fingerprints.items()}
            assert detector.parse_failures == baseline.parse_failures

    def test_detector_find_clones_many_parity(self):
        queries = [("q-reentrant", REENTRANT), ("q-garbage", "prose, not code ===")]
        baseline = CloneDetector(similarity_threshold=0.8)
        baseline.add_corpus(CORPUS)
        expected = baseline.find_clones_many(queries)
        assert expected[0][1], "reentrant query should match the indexed corpus"
        assert expected[1][1] is None
        for backend in BACKENDS:
            detector = CloneDetector(similarity_threshold=0.8, store=ArtifactStore())
            detector.add_corpus(CORPUS)
            with Executor.create(backend, max_workers=2, chunk_size=1) as executor:
                results = detector.find_clones_many(queries, executor=executor)
            assert results == expected


@pytest.mark.skipif(os.name != "posix", reason="process backend exercised on POSIX only")
def test_process_pool_is_lazy():
    executor = ProcessExecutor(max_workers=1)
    assert executor._pool is None
    executor.close()
    assert executor._pool is None


class TestLifecycle:
    """close() is idempotent, terminal, and safe as a context manager."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_is_idempotent(self, backend):
        executor = Executor.create(backend, max_workers=1)
        assert not executor.closed
        executor.map(_square, [1, 2])
        executor.close()
        assert executor.closed
        executor.close()  # second close must be a no-op, not an error
        assert executor.closed

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mapping_after_close_raises(self, backend):
        executor = Executor.create(backend, max_workers=1)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [1])
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_batches(_square, [1])
        with pytest.raises(RuntimeError, match="closed"):
            list(executor.imap_batches(_square, [1]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_context_manager_closes(self, backend):
        with Executor.create(backend, max_workers=1) as executor:
            assert executor.map(_square, [3]) == [9]
        assert executor.closed

    def test_close_never_started_pool(self):
        executor = ThreadExecutor(max_workers=1)
        executor.close()  # pool was never created; still clean
        assert executor.closed and executor._pool is None
