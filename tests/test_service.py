"""Tests for the analysis service daemon (``repro.service``).

The acceptance bar of the subsystem:

* results fetched over HTTP are **byte-identical** (canonical envelopes)
  to the same requests run through ``AnalysisSession.run``,
* the daemon survives kill-and-restart with queued jobs — no lost jobs,
  no duplicated results,
* ``POST /v1/corpus`` makes new sources matchable immediately, without a
  restart or a full re-index.
"""

import threading
import urllib.error
import urllib.request

import pytest

from repro.api import AnalysisSession, SessionConfig, canonical_json
from repro.ccd.detector import CloneDetector
from repro.service import (
    AnalysisService,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.jobstore import JOBS_DATABASE_NAME
from repro.service.server import INDEX_DIRECTORY_NAME
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline.collection import SnippetCollector


@pytest.fixture(scope="module")
def corpora():
    """One small deterministic corpus pair shared by the service tests."""
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for snippet in SnippetCollector().collect(qa_corpus).snippets]
    return contracts, snippets


def make_config(tmp_path, **overrides):
    defaults = dict(data_dir=str(tmp_path / "svc"), port=0, backend="serial")
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    with AnalysisService(make_config(tmp_path)) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


def local_reference_envelopes(service_data_dir, sources, analyses):
    """The same job run through a plain ``AnalysisSession.run`` locally.

    The detector is reloaded from the daemon's own persisted index, so
    both sides match against the identical corpus.
    """
    with AnalysisSession(SessionConfig(backend="serial")) as session:
        detector = CloneDetector.load(
            service_data_dir / INDEX_DIRECTORY_NAME, store=session.store)
        options = {"ccd": {"detector": detector}} if "ccd" in analyses else {}
        return [canonical_json(envelope) for envelope in
                session.run(sources, analyses=analyses, options=options)]


# ---------------------------------------------------------------------------
# the job store
# ---------------------------------------------------------------------------

class TestJobStore:
    def test_submit_claim_finish_lifecycle(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            job = store.submit([("a", "contract A {}")], ["ccd"], {"x": 1})
            assert job.state == "queued" and job.options == {"x": 1}
            claimed = store.claim_next()
            assert claimed.job_id == job.job_id and claimed.state == "running"
            assert store.claim_next() is None  # nothing else queued
            store.append_result(job.job_id, 0, '{"k":"v"}')
            store.finish(job.job_id, "done")
            final = store.get(job.job_id)
            assert final.state == "done" and final.elapsed_seconds is not None
            assert store.results(job.job_id) == [(0, '{"k":"v"}')]

    def test_fifo_claim_order(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            ids = [store.submit([("a", "x")], ["ccd"]).job_id for _ in range(5)]
            claimed = [store.claim_next().job_id for _ in range(5)]
            assert claimed == ids

    def test_finish_requires_terminal_state(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            job = store.submit([("a", "x")], ["ccd"])
            with pytest.raises(ValueError):
                store.finish(job.job_id, "queued")

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with JobStore(path) as store:
            job = store.submit([("a", "contract A {}")], ["ccd", "ccc"])
        with JobStore(path) as store:
            reloaded = store.get(job.job_id)
            assert reloaded.state == "queued"
            assert reloaded.analyses == ("ccd", "ccc")
            assert reloaded.corpus == [["a", "contract A {}"]]

    def test_recover_requeues_running_and_drops_partials(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with JobStore(path) as store:
            done = store.submit([("a", "x")], ["ccd"])
            interrupted = store.submit([("b", "y")], ["ccd"])
            store.claim_next()
            store.append_result(done.job_id, 0, '{"a":1}')
            store.finish(done.job_id, "done")
            store.claim_next()  # the job a killed daemon would leave running
            store.append_result(interrupted.job_id, 0, '{"partial":1}')
        with JobStore(path) as store:
            assert store.recover() == 1
            requeued = store.get(interrupted.job_id)
            assert requeued.state == "queued" and requeued.started is None
            assert store.results(interrupted.job_id) == []
            # the completed job is untouched
            assert store.get(done.job_id).state == "done"
            assert store.results(done.job_id) == [(0, '{"a":1}')]

    def test_concurrent_claims_never_hand_out_a_job_twice(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            for _ in range(20):
                store.submit([("a", "x")], ["ccd"])
            claimed: list = []

            def worker():
                while True:
                    job = store.claim_next()
                    if job is None:
                        return
                    claimed.append(job.job_id)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(claimed) == list(range(1, 21))
            assert len(set(claimed)) == 20

    def test_counts_and_queue_depth(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            store.submit([("a", "x")], ["ccd"])
            store.submit([("b", "y")], ["ccd"])
            store.claim_next()
            counts = store.counts()
            assert counts == {"queued": 1, "running": 1, "done": 0,
                              "failed": 0, "cancelled": 0}
            assert store.queue_depth() == 2

    def test_closed_store_raises(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        store.close()
        store.close()  # idempotent
        with pytest.raises(RuntimeError):
            store.submit([("a", "x")], ["ccd"])


# ---------------------------------------------------------------------------
# HTTP API basics
# ---------------------------------------------------------------------------

class TestHttpApi:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0

    def test_stats_counters(self, client, corpora):
        contracts, _ = corpora
        client.ingest(contracts[:3])
        stats = client.stats()
        assert stats["index"]["documents"] == 3
        assert stats["jobs"] == {"queued": 0, "running": 0, "done": 0,
                                 "failed": 0, "cancelled": 0}
        assert "hits" in stats["store"] and "hit_rate" in stats["store"]
        assert stats["config"]["backend"] == "serial"

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job(999)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/jobs/not-a-number")
        assert excinfo.value.status == 404

    def test_submit_validation_errors_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit([("a", "contract A {}")], analyses=["nope"])
        assert excinfo.value.status == 400
        assert "unknown analyzer" in excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            client.submit([("a", "contract A {}")], analyses=["temporal"])
        assert excinfo.value.status == 400
        assert "corpus-scope" in excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            client.submit([], analyses=["ccd"])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit([("a",)], analyses=["ccd"])
        assert excinfo.value.status == 400

    def test_malformed_body_is_400(self, client):
        request = urllib.request.Request(
            client.base_url + "/v1/jobs", method="POST", data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_jobs_listing_filters_by_state(self, client, corpora):
        _, snippets = corpora
        job = client.submit(snippets[:2], analyses=["ccd"])
        client.wait(job["id"])
        assert [j["id"] for j in client.jobs(state="done")] == [job["id"]]
        assert client.jobs(state="failed") == []

    def test_failed_job_reports_error(self, service, client, monkeypatch):
        # an analyzer blowing up must fail the job, not kill the worker
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(service.session, "run_iter", boom)
        job = client.submit([("a", "contract A {}")], analyses=["ccd"])
        from repro.service import JobFailedError

        with pytest.raises(JobFailedError) as excinfo:
            client.wait(job["id"])
        assert "kaboom" in excinfo.value.job["error"]
        # and the next job still runs
        monkeypatch.undo()
        job = client.submit([("a", "contract A {}")], analyses=["ccd"])
        assert client.wait(job["id"])["job"]["state"] == "done"


# ---------------------------------------------------------------------------
# end-to-end parity with AnalysisSession.run
# ---------------------------------------------------------------------------

class TestServiceParity:
    def test_http_results_byte_identical_to_session_run(
            self, service, client, corpora, tmp_path):
        contracts, snippets = corpora
        client.ingest(contracts)
        job = client.submit(snippets, analyses=["ccd", "ccc"])
        finished = client.wait(job["id"])
        served = [canonical_json(envelope) for envelope in finished["results"]]
        expected = local_reference_envelopes(
            tmp_path / "svc", snippets, ["ccd", "ccc"])
        assert len(served) == 2 * len(snippets)
        assert served == expected

    def test_streamed_bytes_are_the_canonical_envelopes(
            self, service, client, corpora, tmp_path):
        contracts, snippets = corpora
        client.ingest(contracts)
        job = client.submit(snippets[:6], analyses=["ccd"])
        client.wait(job["id"])
        raw_lines = list(client.stream(job["id"], raw=True))
        expected = local_reference_envelopes(
            tmp_path / "svc", snippets[:6], ["ccd"])
        assert [line.decode("utf-8") for line in raw_lines] == expected

    def test_streaming_a_job_before_it_finishes(self, service, client, corpora):
        _, snippets = corpora
        job = client.submit(snippets[:4], analyses=["ccd"])
        # no wait: the stream must follow the job to completion
        streamed = list(client.stream(job["id"]))
        assert len(streamed) == 4
        assert client.job(job["id"])["job"]["state"] == "done"

    def test_resident_opt_out_self_indexes(self, service, client, corpora):
        contracts, _ = corpora
        client.ingest(contracts)
        pair = contracts[0]
        resident = client.wait(client.submit(
            [pair], analyses=["ccd"])["id"])["results"][0]
        self_indexed = client.wait(client.submit(
            [pair], analyses=["ccd"],
            options={"ccd": {"resident": False}})["id"])["results"][0]
        # against the resident index the contract matches itself (100.0);
        # self-indexed, its own id is excluded and nothing else is indexed
        assert any(match["document_id"] == pair[0]
                   for match in resident["payload"])
        assert self_indexed["payload"] == []


# ---------------------------------------------------------------------------
# durability: kill-and-restart
# ---------------------------------------------------------------------------

class TestRestartDurability:
    def test_queued_jobs_survive_restart_no_loss_no_dupes(
            self, tmp_path, corpora):
        contracts, snippets = corpora
        config = make_config(tmp_path)
        # daemon 1: ingest the corpus, accept jobs, die before running any
        # (the scheduler is never started: submissions stay queued)
        first = AnalysisService(config)
        first.ingest(contracts)
        submitted = [first.submit(snippets[:5], ["ccd", "ccc"]).job_id
                     for _ in range(3)]
        assert first.jobstore.counts()["queued"] == 3
        first.stop()
        # daemon 2 over the same data dir drains the backlog
        with AnalysisService(config) as second:
            assert second.scheduler.drain(timeout=120.0)
            client = ServiceClient(second.url)
            expected = local_reference_envelopes(
                tmp_path / "svc", snippets[:5], ["ccd", "ccc"])
            for job_id in submitted:
                status = client.job(job_id)
                assert status["job"]["state"] == "done"
                served = [canonical_json(envelope)
                          for envelope in status["results"]]
                assert served == expected  # exactly once, byte-identical

    def test_job_killed_mid_run_is_requeued_and_rerun_identically(
            self, tmp_path, corpora):
        contracts, snippets = corpora
        config = make_config(tmp_path)
        first = AnalysisService(config)
        first.ingest(contracts)
        job = first.submit(snippets[:4], ["ccd"])
        # simulate the crash: the job was claimed and half-persisted when
        # the daemon died
        claimed = first.jobstore.claim_next()
        assert claimed.job_id == job.job_id
        first.jobstore.append_result(job.job_id, 0, '{"torn": true}')
        first.stop()
        with AnalysisService(config) as second:
            assert second.recovered_jobs == 1
            assert second.scheduler.drain(timeout=120.0)
            status = ServiceClient(second.url).job(job.job_id)
            assert status["job"]["state"] == "done"
            served = [canonical_json(envelope) for envelope in status["results"]]
            assert served == local_reference_envelopes(
                tmp_path / "svc", snippets[:4], ["ccd"])
            assert '{"torn": true}' not in served  # partials were dropped

    def test_index_reloads_with_zero_parses(self, tmp_path, corpora):
        contracts, _ = corpora
        config = make_config(tmp_path)
        first = AnalysisService(config)
        first.ingest(contracts)
        documents = len(first.detector)
        first.stop()
        second = AnalysisService(config)
        try:
            assert len(second.detector) == documents
            assert second.session.stats.parse_calls == 0
        finally:
            second.stop()

    def test_restart_keeps_score_memo_warm_zero_rescoring(
            self, tmp_path, corpora):
        contracts, _ = corpora
        config = make_config(tmp_path)
        # the job queries the corpus with its own contracts: every source
        # hits the index with genuine near-clones, so the verifier scores
        # a meaningful number of sub-fingerprint pairs
        with AnalysisService(config) as first:
            first.ingest(contracts)
            client = ServiceClient(first.url)
            job = client.submit(contracts[:6], analyses=["ccd"])
            baseline = [canonical_json(envelope)
                        for envelope in client.wait(job["id"])["results"]]
            assert first.detector.match_stats.pairs_scored > 0
            warm_rows = first.detector.score_memo.disk_rows()
            assert warm_rows > 0  # scores were written through as computed
        # daemon 2 over the same data dir: the score memo is warm, so
        # the identical job is served without re-scoring a single pair
        with AnalysisService(config) as second:
            memo = second.detector.score_memo
            assert memo.stats.warm_loaded == warm_rows
            client = ServiceClient(second.url)
            job = client.submit(contracts[:6], analyses=["ccd"])
            served = [canonical_json(envelope)
                      for envelope in client.wait(job["id"])["results"]]
            assert served == baseline
            assert second.detector.match_stats.pairs_scored == 0
            assert memo.stats.stores == 0
            assert memo.stats.hit_rate > 0.9
            assert client.stats()["score_memo"]["hits"] > 0


# ---------------------------------------------------------------------------
# live corpus ingest
# ---------------------------------------------------------------------------

class TestLiveIngest:
    def test_ingest_makes_new_sources_matchable_without_restart(
            self, service, client, corpora):
        contracts, _ = corpora
        query_id, query_source = contracts[0]
        client.ingest(contracts[1:3])  # warm index without the queried one
        before = client.wait(client.submit(
            [(query_id, query_source)], analyses=["ccd"])["id"])["results"][0]
        assert not any(match["document_id"] == query_id
                       for match in before["payload"] or [])
        summary = client.ingest([(query_id, query_source)])
        assert summary["ingested"] == 1
        assert summary["shards_rewritten"] >= 1
        after = client.wait(client.submit(
            [(query_id, query_source)], analyses=["ccd"])["id"])["results"][0]
        assert any(match["document_id"] == query_id
                   and match["similarity"] == 100.0
                   for match in after["payload"])

    def test_ingest_reports_unparsable_documents(self, client):
        summary = client.ingest([
            ("good", "contract C { function f() public {} }"),
            ("bad", "]]]] not solidity [[[["),
        ])
        assert summary["ingested"] == 1
        assert summary["rejected"] == ["bad"]
        assert summary["parse_failures"] == 1

    def test_ingest_persists_incrementally(self, tmp_path, corpora):
        contracts, _ = corpora
        config = make_config(tmp_path)
        first = AnalysisService(config)
        first.ingest(contracts[:4])
        first.ingest(contracts[4:8])  # second batch appends, not re-saves
        total = len(first.detector)
        first.stop()
        second = AnalysisService(config)
        try:
            assert len(second.detector) == total == 8
        finally:
            second.stop()

    def test_ingest_validation_error_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.ingest([])
        assert excinfo.value.status == 400


# ---------------------------------------------------------------------------
# scheduler behavior
# ---------------------------------------------------------------------------

class TestScheduler:
    def test_jobs_run_fifo(self, service, client, corpora):
        _, snippets = corpora
        ids = [client.submit(snippets[:1], analyses=["ccd"])["id"]
               for _ in range(4)]
        for job_id in ids:
            client.wait(job_id)
        finished = [client.job(job_id)["job"]["finished"] for job_id in ids]
        assert finished == sorted(finished)

    def test_close_is_idempotent_and_graceful(self, tmp_path):
        service = AnalysisService(make_config(tmp_path))
        service.start()
        service.stop()
        service.stop()  # idempotent
        # a stopped daemon has released its executor
        assert service.session.executor.closed

    def test_multi_worker_pool_completes_everything(self, tmp_path, corpora):
        _, snippets = corpora
        config = make_config(tmp_path, workers=3)
        with AnalysisService(config) as service:
            client = ServiceClient(service.url)
            ids = [client.submit(snippets[:2], analyses=["ccd"])["id"]
                   for _ in range(6)]
            assert service.scheduler.drain(timeout=120.0)
            for job_id in ids:
                assert client.job(job_id)["job"]["state"] == "done"
            assert service.scheduler.jobs_completed == 6

    def test_job_corpus_echo_query_param(self, service, client, corpora):
        _, snippets = corpora
        job = client.submit(snippets[:1], analyses=["ccd"])
        client.wait(job["id"])
        with_corpus = client._request("GET", f"/v1/jobs/{job['id']}?corpus")
        assert with_corpus["job"]["corpus"] == [list(snippets[0])]
        without = client.job(job["id"])
        assert "corpus" not in without["job"]


class TestReviewRegressions:
    """Regression tests for the review findings on the first cut."""

    def test_empty_index_ccd_job_returns_zero_matches(self, client, corpora):
        # the resident index is authoritative even when empty: no silent
        # fallback to self-indexing the submitted sources
        _, snippets = corpora
        duplicated = [("s1", snippets[0][1]), ("s2", snippets[0][1])]
        finished = client.wait(client.submit(
            duplicated, analyses=["ccd"])["id"])
        assert [envelope["payload"] for envelope in finished["results"]] \
            == [[], []]

    def test_non_string_analysis_id_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit([("a", "contract A {}")], analyses=[["ccd"]])
        assert excinfo.value.status == 400
        assert "analyzer id strings" in excinfo.value.message

    def test_unparsable_reingest_retires_stale_fingerprint(
            self, tmp_path, corpora):
        contracts, _ = corpora
        document_id, source = contracts[0]
        config = make_config(tmp_path)
        first = AnalysisService(config)
        client = None
        try:
            first.ingest([(document_id, source)])
            assert document_id in first.detector.fingerprints
            summary = first.ingest([(document_id, "((( no longer solidity )))")])
            assert summary["rejected"] == [document_id]
            # retired live: the stale fingerprint no longer matches
            assert document_id not in first.detector.fingerprints
            assert summary["documents"] == 0
        finally:
            first.stop()
        # and retired on disk: a restarted daemon agrees
        second = AnalysisService(config)
        try:
            assert document_id not in second.detector.fingerprints
            assert second.detector.parse_failures == [document_id]
        finally:
            second.stop()

    def test_repeated_bad_ingest_records_one_failure(self, service, client):
        for _ in range(3):
            client.ingest([("bad", "]]] not solidity [[[")])
        assert client.stats()["index"]["parse_failures"] == 1

    def test_fixed_reingest_clears_failure_record(self, service, client):
        client.ingest([("doc", "]]] broken [[[")])
        assert client.stats()["index"]["parse_failures"] == 1
        summary = client.ingest(
            [("doc", "contract Fixed { function f() public {} }")])
        assert summary["ingested"] == 1
        assert client.stats()["index"]["parse_failures"] == 0

    def test_worker_survives_a_jobstore_hiccup(self, service, client, corpora,
                                               monkeypatch):
        _, snippets = corpora
        import sqlite3 as sqlite3_module

        real_claim = service.jobstore.claim_next
        calls = {"n": 0}

        def flaky_claim():
            calls["n"] += 1
            if calls["n"] == 1:
                raise sqlite3_module.OperationalError("database is locked")
            return real_claim()

        monkeypatch.setattr(service.jobstore, "claim_next", flaky_claim)
        job = client.submit(snippets[:1], analyses=["ccd"])
        assert client.wait(job["id"])["job"]["state"] == "done"

    def test_reloaded_index_follows_configured_thresholds(
            self, tmp_path, corpora):
        contracts, _ = corpora
        first = AnalysisService(make_config(tmp_path))
        first.ingest(contracts[:3])
        assert first.detector.similarity_threshold == 0.7
        first.stop()
        # restart with different query-time thresholds: the reloaded
        # detector (and /v1/stats) must follow the new configuration
        second = AnalysisService(make_config(
            tmp_path, similarity_threshold=0.9, ngram_threshold=0.6))
        try:
            assert len(second.detector) == 3
            assert second.detector.similarity_threshold == 0.9
            assert second.detector.ngram_threshold == 0.6
        finally:
            second.stop()

    def test_duplicate_ids_in_one_ingest_batch_collapse(
            self, tmp_path, corpora):
        contracts, _ = corpora
        (_, source_a), (_, source_b) = contracts[0], contracts[1]
        config = make_config(tmp_path)
        first = AnalysisService(config)
        summary = first.ingest([("dup", source_a), ("dup", source_b)])
        assert summary["ingested"] == 1 and summary["documents"] == 1
        first.stop()
        second = AnalysisService(config)  # no duplicate shard rows persisted
        try:
            assert len(second.detector) == 1
            # last occurrence won
            assert second.detector.fingerprints["dup"].text == \
                first.detector.fingerprints["dup"].text
        finally:
            second.stop()

    def test_results_0_query_param_omits_envelopes(self, client, corpora):
        _, snippets = corpora
        job = client.submit(snippets[:1], analyses=["ccd"])
        finished = client.wait(job["id"])
        assert len(finished["results"]) == 1
        cheap = client.job(job["id"], results=False)
        assert "results" not in cheap
        assert cheap["job"]["state"] == "done"

    def test_readwrite_lock_readers_share_writers_exclude(self):
        from repro.service.scheduler import ReadWriteLock
        import time as time_module

        lock = ReadWriteLock()
        order = []

        def reader(tag):
            with lock.read():
                order.append(("r-in", tag))
                time_module.sleep(0.05)
                order.append(("r-out", tag))

        readers = [threading.Thread(target=reader, args=(i,)) for i in (1, 2)]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        entries = [tag for kind, tag in order if kind == "r-in"]
        first_exit = next(i for i, (kind, _) in enumerate(order) if kind == "r-out")
        assert len(entries) == 2
        assert first_exit >= 2  # both readers entered before the first exit
        # and the write side is exclusive against a held read lock
        acquired = []

        def writer():
            with lock.write():
                acquired.append("w")

        with lock.read():
            thread = threading.Thread(target=writer)
            thread.start()
            time_module.sleep(0.05)
            assert acquired == []  # writer blocked while the read is held
        thread.join(timeout=5)
        assert acquired == ["w"]


# ---------------------------------------------------------------------------
# client connect retries (late-binding daemons) and corpus introspection
# ---------------------------------------------------------------------------
class TestClientConnectRetry:
    def test_retries_refused_connections_until_the_socket_binds(self, tmp_path):
        """A client with a connect budget rides out a daemon that binds late."""
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # reserved, now free: refused until the daemon binds

        def bind_late():
            service = AnalysisService(make_config(tmp_path, port=port))
            service.start()
            return service

        result = {}

        def late_starter():
            import time
            time.sleep(0.6)
            result["service"] = bind_late()

        thread = threading.Thread(target=late_starter)
        thread.start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}",
                                   connect_timeout=15.0)
            assert client.healthz()["status"] == "ok"  # retried past refusals
        finally:
            thread.join()
            result["service"].stop()

    def test_fails_fast_with_zero_connect_budget(self):
        import socket
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(f"http://127.0.0.1:{port}")  # default budget 0
        started = time.monotonic()
        with pytest.raises(urllib.error.URLError):
            client.healthz()
        assert time.monotonic() - started < 2.0

    def test_http_errors_are_never_retried(self, service):
        import time

        client = ServiceClient(service.url, connect_timeout=10.0)
        started = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.job(999999)
        assert excinfo.value.status == 404
        assert time.monotonic() - started < 2.0  # no backoff on a live 404


class TestCorpusIntrospectionAndRemoval:
    def test_corpus_endpoint_lists_resident_ids(self, client, corpora):
        contracts, _snippets = corpora
        client.ingest(contracts[:5])
        listing = client.corpus()
        assert listing["count"] == 5
        assert listing["documents"] == sorted(
            (document_id for document_id, _source in contracts[:5]), key=str)

    def test_remove_retires_documents_from_matching(self, client, corpora):
        contracts, _snippets = corpora
        (kept_id, kept_source), (gone_id, gone_source) = contracts[:2]
        client.ingest(contracts[:2])
        summary = client.ingest(remove=[gone_id])
        assert summary["removed"] == [gone_id]
        assert summary["documents"] == 1
        assert client.corpus()["documents"] == [kept_id]
        job = client.submit([["probe", gone_source]], analyses=["ccd"])
        finished = client.wait(job["id"], timeout=60)
        matched = {match["document_id"]
                   for envelope in finished["results"]
                   if envelope["payload"]
                   for match in envelope["payload"]}
        assert gone_id not in matched

    def test_remove_unknown_id_is_a_noop(self, client, corpora):
        contracts, _snippets = corpora
        client.ingest(contracts[:1])
        summary = client.ingest(remove=["0xdoes-not-exist"])
        assert summary["removed"] == []
        assert summary["documents"] == 1

    def test_remove_then_reingest_in_one_call(self, client, corpora):
        contracts, _snippets = corpora
        document_id, source = contracts[0]
        client.ingest(contracts[:1])
        summary = client.ingest(documents=[(document_id, source)],
                                remove=[document_id])
        assert summary["documents"] == 1
        assert client.corpus()["documents"] == [document_id]
