"""Tests for the EOG, DFG, and resolution passes (Section 4.2.3)."""

import pytest

from repro.cpg import build_cpg
from repro.cpg.graph import EdgeLabel


def node_with_code(graph, code, label=None):
    matches = graph.find(label=label, code=code)
    assert matches, f"no node with code {code!r}"
    return matches[0]


class TestEvaluationOrder:
    def test_function_is_eog_entry(self):
        graph = build_cpg("function f(uint a) { a = a + 1; }")
        function = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "f")
        assert graph.out_edges(function, EdgeLabel.EOG)

    def test_operands_evaluated_before_operator(self):
        graph = build_cpg("function f() { if (msg.sender == owner) { } }")
        comparison = next(op for op in graph.nodes_by_label("BinaryOperator")
                          if op.operator_code == "==")
        sender = node_with_code(graph, "msg.sender", "MemberExpression")
        assert graph.is_reachable(sender, comparison, EdgeLabel.EOG)

    def test_condition_before_if_statement(self):
        graph = build_cpg("function f() { if (msg.sender == owner) { } }")
        if_statement = graph.nodes_by_label("IfStatement")[0]
        comparison = next(op for op in graph.nodes_by_label("BinaryOperator")
                          if op.operator_code == "==")
        assert graph.has_edge(comparison, if_statement, EdgeLabel.EOG)

    def test_statement_order_in_block(self):
        graph = build_cpg("function f() { a = 1; b = 2; }")
        first = node_with_code(graph, "a = 1")
        second = node_with_code(graph, "b = 2")
        assert graph.is_reachable(first, second, EdgeLabel.EOG)
        assert not graph.is_reachable(second, first, EdgeLabel.EOG)

    def test_return_terminates_path(self):
        graph = build_cpg("function f(uint a) returns (uint) { return a; }")
        return_statement = graph.nodes_by_label("ReturnStatement")[0]
        assert not graph.out_edges(return_statement, EdgeLabel.EOG)

    def test_rollback_terminates_path(self):
        graph = build_cpg("function f() { revert(); owner = msg.sender; }")
        rollback = graph.nodes_by_label("Rollback")[0]
        assert not graph.out_edges(rollback, EdgeLabel.EOG)

    def test_if_branches_both_reachable(self):
        graph = build_cpg("function f(uint a) { if (a > 0) { x = 1; } else { x = 2; } }")
        function = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "f")
        reached_codes = {node.code for node in graph.reachable(function, EdgeLabel.EOG)}
        assert "x = 1" in reached_codes and "x = 2" in reached_codes

    def test_loop_has_back_edge(self):
        graph = build_cpg("function f(uint n) { for (uint i = 0; i < n; i++) { total += i; } }")
        loop = graph.nodes_by_label("ForStatement")[0]
        body_write = node_with_code(graph, "total += i")
        # the body leads back to the loop header region
        assert graph.is_reachable(body_write, loop, EdgeLabel.EOG)

    def test_require_branches_to_rollback_and_continuation(self):
        graph = build_cpg("function f(uint a) { require(a > 0); a = a + 1; }")
        require_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "require")
        successors = graph.successors(require_call, EdgeLabel.EOG)
        labels = {node.labels[0] for node in successors}
        assert "Rollback" in labels
        assert len(successors) >= 2

    def test_call_arguments_before_call(self):
        graph = build_cpg("function f(uint a) { g(a + 1); }")
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "g")
        addition = next(op for op in graph.nodes_by_label("BinaryOperator") if op.operator_code == "+")
        assert graph.is_reachable(addition, call, EdgeLabel.EOG)


class TestDataFlow:
    def test_assignment_flows_rhs_to_lhs_declaration(self):
        graph = build_cpg("contract C { address owner; function f() public { owner = msg.sender; } }",
                          snippet=False)
        owner = next(f for f in graph.nodes_by_label("FieldDeclaration") if f.name == "owner")
        sender = node_with_code(graph, "msg.sender", "MemberExpression")
        assert graph.is_reachable(sender, owner, EdgeLabel.DFG)

    def test_subscript_write_reaches_field(self):
        graph = build_cpg(
            "contract C { mapping(address => uint) b; function f(uint v) public { b[msg.sender] += v; } }",
            snippet=False)
        field = next(f for f in graph.nodes_by_label("FieldDeclaration") if f.name == "b")
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "v")
        assert graph.is_reachable(param, field, EdgeLabel.DFG)

    def test_parameter_flows_into_call_argument(self):
        graph = build_cpg("function f(uint amount) { msg.sender.transfer(amount); }")
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "amount")
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "transfer")
        assert graph.is_reachable(param, call, EdgeLabel.DFG)

    def test_condition_flows_into_if(self):
        graph = build_cpg("function f(uint a) { if (a > 1) { } }")
        if_statement = graph.nodes_by_label("IfStatement")[0]
        assert graph.in_edges(if_statement, EdgeLabel.DFG)

    def test_return_receives_flow(self):
        graph = build_cpg("function f(uint a) returns (uint) { return a + 1; }")
        return_statement = graph.nodes_by_label("ReturnStatement")[0]
        assert graph.in_edges(return_statement, EdgeLabel.DFG)

    def test_initializer_flows_into_local(self):
        graph = build_cpg("function f(uint a) { uint fee = a / 100; }")
        local = next(v for v in graph.nodes_by_label("VariableDeclaration") if v.name == "fee")
        assert graph.in_edges(local, EdgeLabel.DFG)

    def test_write_edges_marked(self):
        graph = build_cpg("contract C { uint x; function f(uint a) public { x = a; } }", snippet=False)
        field = next(f for f in graph.nodes_by_label("FieldDeclaration") if f.name == "x")
        kinds = {edge.properties.get("kind") for edge in graph.in_edges(field, EdgeLabel.DFG)}
        assert "write" in kinds

    def test_compound_assignment_also_reads(self):
        graph = build_cpg("contract C { uint x; function f(uint a) public { x += a; } }", snippet=False)
        field = next(f for f in graph.nodes_by_label("FieldDeclaration") if f.name == "x")
        assert graph.out_edges(field, EdgeLabel.DFG), "compound assignment reads the old value"

    def test_value_specifier_flow(self):
        graph = build_cpg('function f(uint amount) { msg.sender.call{value: amount}(""); }')
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "amount")
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "call")
        assert graph.is_reachable(param, call, EdgeLabel.DFG)


class TestResolution:
    def test_reference_resolves_to_field(self):
        graph = build_cpg("contract C { address owner; function f() public { owner = msg.sender; } }",
                          snippet=False)
        reference = next(r for r in graph.nodes_by_label("DeclaredReferenceExpression")
                         if r.name == "owner" and not r.has_label("MemberExpression"))
        targets = graph.successors(reference, EdgeLabel.REFERS_TO)
        assert targets and targets[0].has_label("FieldDeclaration")

    def test_parameter_shadows_field(self):
        graph = build_cpg(
            "contract C { uint amount; function f(uint amount) public { x = amount; } uint x; }",
            snippet=False)
        reference = next(r for r in graph.nodes_by_label("DeclaredReferenceExpression")
                         if r.name == "amount")
        targets = graph.successors(reference, EdgeLabel.REFERS_TO)
        assert targets and targets[0].has_label("ParamVariableDeclaration")

    def test_intra_contract_call_resolved(self):
        graph = build_cpg(
            "contract C { function a() public { b(); } function b() internal { } }", snippet=False)
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "b")
        targets = graph.successors(call, EdgeLabel.INVOKES)
        assert targets and targets[0].name == "b"

    def test_returns_edge_back_to_call_site(self):
        graph = build_cpg(
            "contract C { function a() public returns (uint) { return b(); } "
            "function b() internal returns (uint) { return 1; } }", snippet=False)
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "b")
        assert graph.in_edges(call, EdgeLabel.RETURNS)

    def test_reference_carries_declaration_type(self):
        graph = build_cpg("contract C { address owner; function f() public { owner = msg.sender; } }",
                          snippet=False)
        reference = next(r for r in graph.nodes_by_label("DeclaredReferenceExpression")
                         if r.name == "owner" and not r.has_label("MemberExpression"))
        types = graph.successors(reference, EdgeLabel.TYPE)
        assert types and types[0].name == "address"

    def test_argument_flows_into_callee_parameter(self):
        graph = build_cpg(
            "contract C { function a(uint x) public { b(x); } function b(uint y) internal { } }",
            snippet=False)
        callee_param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "y")
        assert graph.in_edges(callee_param, EdgeLabel.DFG)
