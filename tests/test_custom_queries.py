"""Custom DASP-style query DSL: validation, compilation, daemon parity.

The DSL (:mod:`repro.ccc.custom`) lets users add CCC queries over the
API without code execution — a spec is pure data naming one selector
and two condition lists from a fixed vocabulary.  These tests cover the
strict validator, the compiled query's behaviour inside
:class:`ContractChecker`, the process-wide registry rules, and the
service integration: a query registered over ``POST /v1/queries``
persists across daemon restarts and changes ccc findings byte
identically to registering it locally.
"""

from __future__ import annotations

import json

import pytest

from repro.api import AnalysisSession, SessionConfig, canonical_json
from repro.ccc.custom import (
    CONDITIONS,
    SELECTORS,
    CustomQuery,
    QuerySpecError,
    compile_query,
    validate_query_spec,
)
from repro.ccc.checker import ContractChecker
from repro.ccc.registry import (
    BUILTIN_QUERY_IDS,
    all_queries,
    register_query,
    registered_queries,
    unregister_query,
)
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

#: a spec that flags every unguarded ether transfer
TRANSFER_SPEC = {
    "query_id": "custom-unguarded-transfer",
    "category": "Access Control",
    "title": "Ether transfer reachable without access control",
    "select": "ether_transfers",
    "require": [],
    "exclude": ["access_controlled"],
}

#: a contract the spec flags: a public payout with no guard
PAYOUT_SOURCE = """
contract Payout {
    function pay(address to) public { to.transfer(1 ether); }
}
"""

#: the same payout behind an owner check: the exclude condition holds
GUARDED_SOURCE = """
contract Payout {
    address owner;
    function pay(address to) public {
        require(msg.sender == owner);
        to.transfer(1 ether);
    }
}
"""


@pytest.fixture
def clean_registry():
    """Snapshot the custom-query registry and restore it afterwards."""
    before = {query.query_id for query in registered_queries()}
    yield
    for query in list(registered_queries()):
        if query.query_id not in before:
            unregister_query(query.query_id)


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------

class TestSpecValidation:
    def test_valid_spec_normalizes(self):
        spec = validate_query_spec(dict(TRANSFER_SPEC, title="  padded  "))
        assert spec["title"] == "padded"
        assert spec["require"] == [] and spec["exclude"] == \
            ["access_controlled"]

    def test_defaults_empty_condition_lists(self):
        minimal = {key: TRANSFER_SPEC[key]
                   for key in ("query_id", "category", "title", "select")}
        spec = validate_query_spec(minimal)
        assert spec["require"] == [] and spec["exclude"] == []

    @pytest.mark.parametrize("mutation, message", [
        ({"query_id": "no-prefix"}, "query_id"),
        ({"query_id": "custom-"}, "query_id"),
        ({"query_id": 7}, "query_id"),
        ({"category": "Not A Category"}, "category"),
        ({"title": "   "}, "title"),
        ({"select": "everything"}, "select"),
        ({"require": ["grep"]}, "unknown require"),
        ({"exclude": "access_controlled"}, "exclude"),
        ({"payload": "import os"}, "unknown spec key"),
    ])
    def test_rejections(self, mutation, message):
        with pytest.raises(QuerySpecError, match=message):
            validate_query_spec(dict(TRANSFER_SPEC, **mutation))

    def test_non_object_spec_is_refused(self):
        with pytest.raises(QuerySpecError, match="JSON object"):
            validate_query_spec("select * from everything")

    def test_vocabulary_is_code_free(self):
        """Every selector and condition is a fixed callable, not user code."""
        assert all(callable(selector) for selector in SELECTORS.values())
        assert all(callable(condition) for condition in CONDITIONS.values())


# ---------------------------------------------------------------------------
# compiled behaviour
# ---------------------------------------------------------------------------

class TestCompiledQuery:
    def test_flags_unguarded_transfer_only(self, clean_registry):
        register_query(compile_query(TRANSFER_SPEC))
        checker = ContractChecker()
        flagged = checker.analyze(PAYOUT_SOURCE)
        assert TRANSFER_SPEC["query_id"] in flagged.query_ids()
        guarded = checker.analyze(GUARDED_SOURCE)
        assert TRANSFER_SPEC["query_id"] not in guarded.query_ids()

    def test_compiled_query_keeps_its_spec(self):
        query = compile_query(TRANSFER_SPEC)
        assert isinstance(query, CustomQuery)
        assert query.spec == validate_query_spec(TRANSFER_SPEC)

    def test_registry_rules(self, clean_registry):
        query = compile_query(TRANSFER_SPEC)
        register_query(query)
        with pytest.raises(ValueError, match="already registered"):
            register_query(compile_query(TRANSFER_SPEC))
        register_query(compile_query(TRANSFER_SPEC), replace=True)  # reload
        builtin_id = sorted(BUILTIN_QUERY_IDS)[0]
        impostor = compile_query(dict(TRANSFER_SPEC,
                                      query_id="custom-impostor"))
        impostor.query_id = builtin_id
        with pytest.raises(ValueError, match="built-in"):
            register_query(impostor)
        assert any(entry.query_id == TRANSFER_SPEC["query_id"]
                   for entry in all_queries())


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------

def make_config(tmp_path, name="svc", **overrides) -> ServiceConfig:
    defaults = dict(data_dir=str(tmp_path / name), port=0, backend="serial")
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def local_ccc_bytes(source: str) -> list:
    with AnalysisSession(SessionConfig(backend="serial")) as session:
        return [canonical_json(envelope) for envelope in
                session.run([("payout", source)], analyses=["ccc"])]


class TestServiceIntegration:
    def test_registered_query_changes_daemon_findings_identically(
            self, tmp_path, clean_registry):
        """Local registration and API registration agree byte-for-byte."""
        baseline = local_ccc_bytes(PAYOUT_SOURCE)

        register_query(compile_query(TRANSFER_SPEC))
        local = local_ccc_bytes(PAYOUT_SOURCE)
        assert local != baseline  # the query changes the findings
        unregister_query(TRANSFER_SPEC["query_id"])

        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            response = client.register_query(TRANSFER_SPEC)
            assert response["query"]["query_id"] == TRANSFER_SPEC["query_id"]
            job = client.submit([("payout", PAYOUT_SOURCE)],
                                analyses=["ccc"])
            finished = client.wait(job["id"], timeout=120.0)
            daemon = [canonical_json(envelope)
                      for envelope in finished["results"]]
        assert daemon == local

    def test_queries_listing_marks_custom_rows(self, tmp_path,
                                               clean_registry):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            rows = client.queries()
            assert all(row["custom"] is False for row in rows)
            assert len(rows) == len(BUILTIN_QUERY_IDS)
            client.register_query(TRANSFER_SPEC)
            rows = {row["query_id"]: row for row in client.queries()}
            assert rows[TRANSFER_SPEC["query_id"]]["custom"] is True
            assert rows[TRANSFER_SPEC["query_id"]]["category"] == \
                "Access Control"

    def test_invalid_spec_is_a_400(self, tmp_path, clean_registry):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            with pytest.raises(ServiceError, match="select"):
                client.register_query(dict(TRANSFER_SPEC,
                                           select="everything"))
            with pytest.raises(ServiceError, match="query_id"):
                client.register_query(dict(TRANSFER_SPEC, query_id="bad"))

    def test_queries_persist_across_daemon_restart(self, tmp_path,
                                                   clean_registry):
        config = make_config(tmp_path)
        with AnalysisService(config) as service:
            ServiceClient(service.url).register_query(TRANSFER_SPEC)
            queries_path = service.queries_path
        assert json.loads(queries_path.read_text())[0]["query_id"] == \
            TRANSFER_SPEC["query_id"]

        # simulate a fresh process: the global registry forgets the query
        unregister_query(TRANSFER_SPEC["query_id"])

        with AnalysisService(make_config(tmp_path)) as service:
            assert service.reloaded_queries == 1
            rows = {row["query_id"]: row
                    for row in ServiceClient(service.url).queries()}
            assert rows[TRANSFER_SPEC["query_id"]]["custom"] is True

    def test_reregistering_same_id_replaces(self, tmp_path, clean_registry):
        with AnalysisService(make_config(tmp_path)) as service:
            client = ServiceClient(service.url)
            client.register_query(TRANSFER_SPEC)
            retitled = dict(TRANSFER_SPEC, title="Retitled")
            client.register_query(retitled)
            rows = {row["query_id"]: row for row in client.queries()}
            assert rows[TRANSFER_SPEC["query_id"]]["title"] == "Retitled"
            specs = json.loads(service.queries_path.read_text())
            assert len(specs) == 1 and specs[0]["title"] == "Retitled"
