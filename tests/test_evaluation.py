"""Tests for the evaluation harnesses feeding Tables 1-3, 8, 9."""

import pytest

from repro.ccc.dasp import DaspCategory
from repro.evaluation import (
    evaluate_baseline_on_corpus,
    evaluate_ccc_on_corpus,
    evaluate_ccd_on_honeypots,
    evaluate_smartembed_on_honeypots,
    simulate_manual_validation,
    sweep_ccd_parameters,
)
from repro.evaluation.parameter_sweep import best_combination


class TestSmartBugsEvaluation:
    @pytest.fixture(scope="class")
    def ccc_result(self, small_smartbugs_corpus):
        return evaluate_ccc_on_corpus(small_smartbugs_corpus, "original")

    def test_totals_consistent(self, ccc_result, small_smartbugs_corpus):
        assert ccc_result.total_labels == small_smartbugs_corpus.total_labels
        assert ccc_result.total_true_positives <= ccc_result.total_labels

    def test_reasonable_recall_and_precision(self, ccc_result):
        assert ccc_result.recall > 0.6
        assert ccc_result.precision > 0.7

    def test_covers_most_categories(self, ccc_result):
        assert ccc_result.covered_categories >= 7

    def test_functions_dataset_increases_precision(self, small_smartbugs_corpus, ccc_result):
        functions_result = evaluate_ccc_on_corpus(small_smartbugs_corpus, "functions")
        assert functions_result.precision >= ccc_result.precision
        assert functions_result.recall <= ccc_result.recall + 1e-9

    def test_statements_dataset_lowest_recall(self, small_smartbugs_corpus):
        functions_result = evaluate_ccc_on_corpus(small_smartbugs_corpus, "functions")
        statements_result = evaluate_ccc_on_corpus(small_smartbugs_corpus, "statements")
        assert statements_result.recall <= functions_result.recall

    def test_baseline_has_narrower_coverage(self, small_smartbugs_corpus, ccc_result):
        baseline = evaluate_baseline_on_corpus(small_smartbugs_corpus, "original")
        assert baseline.covered_categories < ccc_result.covered_categories
        assert baseline.total_true_positives < ccc_result.total_true_positives

    def test_rows_structure(self, ccc_result):
        rows = ccc_result.rows()
        assert len(rows) == 9
        assert all({"category", "labels", "tp", "fp"} <= set(row) for row in rows)

    def test_unknown_dataset_rejected(self, small_smartbugs_corpus):
        with pytest.raises(ValueError):
            evaluate_ccc_on_corpus(small_smartbugs_corpus, "bogus")


class TestHoneypotEvaluation:
    @pytest.fixture(scope="class")
    def ccd_result(self, small_honeypot_corpus):
        return evaluate_ccd_on_honeypots(small_honeypot_corpus)

    @pytest.fixture(scope="class")
    def smartembed_result(self, small_honeypot_corpus):
        return evaluate_smartembed_on_honeypots(small_honeypot_corpus)

    def test_ccd_precision_high(self, ccd_result):
        assert ccd_result.precision > 0.7

    def test_ccd_finds_intra_family_clones(self, ccd_result):
        assert ccd_result.total_true_positives > 0

    def test_ccd_beats_smartembed_on_false_positives(self, ccd_result, smartembed_result):
        assert ccd_result.total_false_positives <= smartembed_result.total_false_positives

    def test_ccd_precision_at_least_smartembed(self, ccd_result, smartembed_result):
        assert ccd_result.precision >= smartembed_result.precision

    def test_per_type_rows(self, ccd_result):
        rows = ccd_result.rows()
        assert len(rows) == 9
        assert all(row["possible"] >= row["tp"] for row in rows)

    def test_metrics_bounded(self, ccd_result):
        assert 0.0 <= ccd_result.precision <= 1.0
        assert 0.0 <= ccd_result.recall <= 1.0
        assert 0.0 <= ccd_result.f1 <= 1.0


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_honeypot_corpus):
        return sweep_ccd_parameters(
            small_honeypot_corpus,
            ngram_sizes=(3, 5),
            ngram_thresholds=(0.5, 0.7),
            similarity_thresholds=(0.5, 0.7, 0.9),
        )

    def test_grid_size(self, sweep):
        assert len(sweep) == 2 * 2 * 3

    def test_higher_epsilon_never_lowers_precision_much(self, sweep):
        points = {(p.ngram_size, p.ngram_threshold, p.similarity_threshold): p for p in sweep}
        low = points[(3, 0.5, 0.5)]
        high = points[(3, 0.5, 0.9)]
        assert high.precision >= low.precision - 1e-9

    def test_higher_epsilon_never_raises_recall(self, sweep):
        points = {(p.ngram_size, p.ngram_threshold, p.similarity_threshold): p for p in sweep}
        low = points[(3, 0.5, 0.5)]
        high = points[(3, 0.5, 0.9)]
        assert high.recall <= low.recall + 1e-9

    def test_best_combination_is_from_grid(self, sweep):
        best = best_combination(sweep)
        assert best in sweep

    def test_rows_serializable(self, sweep):
        row = sweep[0].as_row()
        assert {"N", "eta", "epsilon", "precision", "recall", "f1"} <= set(row)


class TestManualValidation:
    def test_simulated_review(self, small_qa_corpus, small_sanctuary):
        from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy

        study = VulnerableCodeReuseStudy(StudyConfiguration(
            validation_timeout_seconds=15, snippet_analysis_timeout_seconds=15))
        result = study.run(small_qa_corpus, small_sanctuary.contracts)
        collector_snippets = result.collection.snippets
        table = simulate_manual_validation(
            result, collector_snippets, small_sanctuary.contracts,
            small_sanctuary.ground_truth_embeddings, sample_size=50)
        counts = table.counts()
        assert sum(counts.values()) == table.sample_size
        assert table.sample_size <= 50
        if table.sample_size:
            # the majority of flagged pairings should be genuine (Table 8: 48/100)
            assert table.confirmed_pairings >= table.sample_size * 0.3


class TestExecutorBackendParity:
    """The suites are byte-identical under every executor backend.

    The workload engine runs evaluation chunks through the resident
    session's backend, so canonical_json parity between the serial
    loop and the thread/process executors is load-bearing: it is what
    makes a daemon-served report equal a fresh local run.
    """

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_ccc_suite_backend_parity(self, small_smartbugs_corpus, backend):
        from repro.api import canonical_json
        from repro.evaluation.smartbugs_eval import evaluation_report

        reference = canonical_json(evaluation_report(
            evaluate_ccc_on_corpus(small_smartbugs_corpus, "original")))
        fanned = canonical_json(evaluation_report(evaluate_ccc_on_corpus(
            small_smartbugs_corpus, "original", backend=backend,
            max_workers=2)))
        assert fanned == reference

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_baseline_suite_backend_parity(self, small_smartbugs_corpus,
                                           backend):
        from repro.api import canonical_json
        from repro.evaluation.smartbugs_eval import evaluation_report

        reference = canonical_json(evaluation_report(
            evaluate_baseline_on_corpus(small_smartbugs_corpus, "original")))
        fanned = canonical_json(evaluation_report(
            evaluate_baseline_on_corpus(
                small_smartbugs_corpus, "original", backend=backend,
                max_workers=2)))
        assert fanned == reference
