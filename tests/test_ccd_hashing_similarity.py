"""Tests for fuzzy hashing, fingerprints, similarity, and the N-gram index."""

import pytest

from repro.ccd.fingerprint import Fingerprint, FingerprintGenerator
from repro.ccd.fuzzyhash import BASE64_ALPHABET, FuzzyHasher, fuzzy_hash_tokens
from repro.ccd.ngram_index import NGramIndex, ngrams
from repro.ccd.similarity import (
    bounded_edit_distance,
    edit_distance,
    order_independent_similarity,
    sub_fingerprint_similarity,
)


class TestFuzzyHasher:
    def test_deterministic(self):
        tokens = ["msg", ".", "sender", ".", "transfer", "(", "uint", ")"]
        assert fuzzy_hash_tokens(tokens) == fuzzy_hash_tokens(tokens)

    def test_output_is_base64(self):
        digest = fuzzy_hash_tokens(["a", "b", "c", "d", "e", "f"])
        assert digest and all(char in BASE64_ALPHABET for char in digest)

    def test_empty_input_empty_digest(self):
        assert fuzzy_hash_tokens([]) == ""

    def test_different_inputs_differ(self):
        first = fuzzy_hash_tokens(["require", "(", "a", ">", "b", ")"])
        second = fuzzy_hash_tokens(["msg", ".", "sender", ".", "transfer", "(", "uint", ")"])
        assert first != second

    def test_digest_shorter_than_input(self):
        tokens = ["tok%d" % i for i in range(100)]
        assert len(fuzzy_hash_tokens(tokens)) < len(tokens)

    def test_locality_small_change_small_digest_change(self):
        base = ["function", "f", "(", "uint", ")", "{"] + ["x", "=", "x", "+", "1", ";"] * 10 + ["}"]
        modified = list(base)
        modified[10] = "y"
        first, second = fuzzy_hash_tokens(base), fuzzy_hash_tokens(modified)
        assert first != second
        assert edit_distance(first, second) <= max(3, len(first) // 3)

    def test_appending_preserves_prefix(self):
        base = ["a", "b", "c", "d"] * 6
        extended = base + ["x", "y", "z", "w"] * 3
        first, second = fuzzy_hash_tokens(base), fuzzy_hash_tokens(extended)
        assert second.startswith(first[: max(1, len(first) - 1)])

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            FuzzyHasher(block_size=0)

    def test_hash_text_convenience(self):
        hasher = FuzzyHasher()
        assert hasher.hash_text("a b c") == hasher.hash_tokens(["a", "b", "c"])


class TestFingerprint:
    generator = FingerprintGenerator()

    def test_structure_function_separator(self):
        fingerprint = self.generator.from_source(
            "contract C { function a() public { x = 1; } function b() public { y = 2; } }")
        assert "." in fingerprint.text
        # one segment per function (the common contract header is excluded)
        assert len(fingerprint.sub_fingerprints) == 2

    def test_structure_contract_separator(self):
        fingerprint = self.generator.from_source(
            "contract A { function f() public { x = 1; } } contract B { function g() public { y = 2; } }")
        assert ":" in fingerprint.text

    def test_parse_roundtrip(self):
        fingerprint = self.generator.from_source(
            "contract A { function f() public { x = 1; } } contract B { function g() public { y = 2; } }")
        parsed = Fingerprint.parse(fingerprint.text)
        assert parsed.sub_fingerprints == fingerprint.sub_fingerprints

    def test_type_two_clones_have_identical_fingerprints(self):
        first = self.generator.from_source(
            "function pay(address to, uint amount) { to.transfer(amount); }")
        second = self.generator.from_source(
            "function send(address dst, uint wad) { dst.transfer(wad); }")
        assert first.text == second.text

    def test_empty_detection(self):
        assert Fingerprint().is_empty
        assert not self.generator.from_source("function f() { x = 1; }").is_empty

    def test_len_is_text_length(self):
        fingerprint = self.generator.from_source("function f() { x = 1; }")
        assert len(fingerprint) == len(fingerprint.text)


class TestEditDistance:
    @pytest.mark.parametrize("first,second,expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "xyz", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("abc", "abd", 1),
        ("abc", "acb", 2),
    ])
    def test_known_distances(self, first, second, expected):
        assert edit_distance(first, second) == expected

    def test_symmetry(self):
        assert edit_distance("solidity", "soliloquy") == edit_distance("soliloquy", "solidity")

    def test_triangle_inequality_sample(self):
        a, b, c = "contract", "contrast", "context"
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @pytest.mark.parametrize("first,second,expected", [
        # one string is a prefix of the other: distance = length difference
        ("abc", "abcdef", 3),
        ("abcdef", "abc", 3),
        ("A", "ABCDEFGH", 7),
        # equal after stripping the common prefix and suffix
        ("prefixXsuffix", "prefixYsuffix", 1),
        ("aaaaXbbbb", "aaaaYYbbbb", 2),
        ("same", "same", 0),
        # single-character remainders after the strip
        ("h", "hello", 4),
        ("x", "hello", 5),
        ("hello", "h", 4),
        ("aXa", "aYa", 1),
        # shared-suffix-only shapes
        ("Xend", "YZend", 2),
    ])
    def test_fast_path_distances_pinned(self, first, second, expected):
        assert edit_distance(first, second) == expected


class TestBoundedEditDistance:
    @pytest.mark.parametrize("first,second", [
        ("", ""), ("abc", "abc"), ("abc", ""), ("", "xyz"),
        ("kitten", "sitting"), ("flaw", "lawn"), ("abc", "acb"),
        ("abc", "abcdef"), ("prefixXsuffix", "prefixYsuffix"),
        ("h", "hello"), ("x", "hello"),
    ])
    def test_matches_exact_distance_when_within_limit(self, first, second):
        distance = edit_distance(first, second)
        for limit in (distance, distance + 1, distance + 10):
            assert bounded_edit_distance(first, second, limit) == distance

    def test_returns_none_beyond_limit(self):
        assert bounded_edit_distance("kitten", "sitting", 2) is None
        assert bounded_edit_distance("abc", "", 2) is None
        assert bounded_edit_distance("AAAAAAAA", "BBBBBBBB", 5) is None

    def test_zero_limit(self):
        assert bounded_edit_distance("same", "same", 0) == 0
        assert bounded_edit_distance("a", "b", 0) is None

    def test_randomized_agreement_with_exact(self):
        import random

        rng = random.Random(5)
        alphabet = "abcdef"
        for _ in range(500):
            first = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
            second = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
            distance = edit_distance(first, second)
            for limit in (0, 1, 3, 8, 20):
                bounded = bounded_edit_distance(first, second, limit)
                assert bounded == (distance if distance <= limit else None)


class TestSimilarityScores:
    def test_identical_sub_fingerprints_score_100(self):
        assert sub_fingerprint_similarity("ABCDEF", "ABCDEF") == 100.0

    def test_disjoint_scores_low(self):
        assert sub_fingerprint_similarity("AAAA", "BBBB") == 0.0

    def test_empty_pair_scores_100(self):
        assert sub_fingerprint_similarity("", "") == 100.0

    def test_score_range(self):
        score = sub_fingerprint_similarity("ABCD", "ABXD")
        assert 0.0 <= score <= 100.0

    def test_order_independence(self):
        first = Fingerprint.parse("AAAA.BBBB")
        swapped = Fingerprint.parse("BBBB.AAAA")
        assert order_independent_similarity(first, swapped) == 100.0

    def test_containment_is_asymmetric(self):
        snippet = Fingerprint.parse("AAAA")
        contract = Fingerprint.parse("AAAA.ZZZZZZ.YYYYYY")
        assert order_independent_similarity(snippet, contract) == 100.0
        assert order_independent_similarity(contract, snippet) < 100.0

    def test_empty_fingerprint_scores_zero(self):
        assert order_independent_similarity(Fingerprint(), Fingerprint.parse("AAAA")) == 0.0

    def test_accepts_plain_sequences(self):
        assert order_independent_similarity(["AAAA"], ["AAAA", "BBBB"]) == 100.0


class TestNGramIndex:
    def test_ngrams_of_short_text(self):
        assert ngrams("ab", 3) == {"ab"}

    def test_ngrams_ignore_separators(self):
        assert ngrams("ab.cd", 3) == ngrams("abcd", 3)

    def test_add_and_candidates(self):
        index = NGramIndex(ngram_size=3)
        index.add("doc1", "ABCDEFGH")
        index.add("doc2", "ZZZZZZZZ")
        assert index.candidates("ABCDEFGH", 0.5) == ["doc1"]

    def test_threshold_filters_partial_overlap(self):
        index = NGramIndex(ngram_size=3)
        index.add("doc", "ABCDEFGH")
        assert "doc" in index.candidates("ABCDXYZW", 0.2)
        assert "doc" not in index.candidates("ABCDXYZW", 0.9)

    def test_overlap_fraction(self):
        index = NGramIndex(ngram_size=3)
        index.add("doc", "ABCDEF")
        assert index.overlap("ABCDEF", "doc") == 1.0
        assert index.overlap("ABCDEF", "missing") == 0.0

    def test_remove(self):
        index = NGramIndex(ngram_size=3)
        index.add("doc", "ABCDEF")
        index.remove("doc")
        assert index.candidates("ABCDEF", 0.1) == []
        assert "doc" not in index

    def test_readd_purges_stale_postings(self):
        # regression: re-adding a document with different grams used to
        # leave the old grams' postings pointing at the document, so the
        # removed n-grams still yielded it as a candidate
        index = NGramIndex(ngram_size=3)
        index.add("doc", "ABCDEF")
        index.add("doc", "UVWXYZ")
        assert index.candidates("ABCDEF", 0.1) == []
        assert index.candidates("UVWXYZ", 0.5) == ["doc"]
        assert len(index) == 1
        assert index.overlap("ABCDEF", "doc") == 0.0

    def test_readd_with_overlapping_grams(self):
        index = NGramIndex(ngram_size=3)
        index.add("doc", "ABCDEF")
        index.add("doc", "CDEFGH")  # shares CDE/DEF with the old text
        assert index.candidates("CDEFGH", 0.9) == ["doc"]
        assert "doc" not in index.candidates("ABCDEF", 0.9)

    def test_len_and_contains(self):
        index = NGramIndex(ngram_size=3)
        index.add_many([("a", "ABCDEF"), ("b", "GHIJKL")])
        assert len(index) == 2 and "a" in index

    def test_invalid_ngram_size(self):
        with pytest.raises(ValueError):
            NGramIndex(ngram_size=0)

    def test_empty_query_returns_nothing(self):
        index = NGramIndex()
        index.add("doc", "ABCDEF")
        assert index.candidates("", 0.5) == []
