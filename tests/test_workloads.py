"""Workload engine tests: durable, resumable, fan-out evaluation jobs.

The headline claims of ``repro.service.workloads``:

* a workload submitted over HTTP produces a merged report **byte
  identical** to running the same evaluation locally (``canonical_json``
  parity);
* a job interrupted mid-sweep (graceful pause or SIGKILL) resumes from
  its completed chunks — provably skipping them, asserted on unchanged
  chunk ``finished`` timestamps;
* cancellation lands at a chunk boundary and keeps partial results;
* a coordinator fans grid cells across shards and merges to the same
  bytes as a single daemon.

The tests drive the engine at three levels: the pure
``run_workload_job`` loop over a bare :class:`JobStore`, the worker
HTTP surface, and an in-process coordinator + shards cluster.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager

import pytest

from repro.api.envelope import canonical_json
from repro.service import (
    AnalysisService,
    ClusterCoordinator,
    CoordinatorConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.jobstore import JobStore
from repro.service.workloads import (
    WORKLOADS,
    Workload,
    WorkloadContext,
    WorkloadError,
    WorkloadRegistry,
    run_workload_job,
    validate_workload_request,
    workload_payload,
)

#: a parameter sweep small enough for tests: 2 N x 1 eta x 2 eps = 4 cells
SWEEP_PARAMS = {
    "honeypot": {"seed": 7, "counts": {"balance_disorder": 2,
                                       "hidden_transfer": 2}},
    "ngram_sizes": [2, 3],
    "ngram_thresholds": [0.5],
    "similarity_thresholds": [0.6, 0.8],
}


def local_workload_bytes(kind: str, params: dict) -> str:
    """The reference run: the same workload executed inline, no daemon."""
    workload = WORKLOADS.get(kind)
    normalized = workload.normalize(params)
    context = WorkloadContext()
    results = [workload.run_chunk(normalized, spec, context)
               for spec in workload.decompose(normalized)]
    return canonical_json(workload.merge(normalized, results))


def make_config(tmp_path, name="svc", **overrides) -> ServiceConfig:
    defaults = dict(data_dir=str(tmp_path / name), port=0, backend="serial")
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@contextmanager
def in_process_cluster(tmp_path, shard_count):
    workers = []
    coordinator = None
    try:
        for index in range(shard_count):
            service = AnalysisService(
                make_config(tmp_path, f"worker-{index}"))
            service.start()
            workers.append(service)
        coordinator = ClusterCoordinator(CoordinatorConfig(
            data_dir=str(tmp_path / "coordinator"), port=0,
            workers=tuple(worker.url for worker in workers),
            connect_timeout=5.0, shard_timeout=60.0))
        coordinator.start()
        yield coordinator, workers
    finally:
        if coordinator is not None:
            coordinator.stop()
        for worker in workers:
            worker.stop()


class CountingWorkload(Workload):
    """A tiny instrumented workload: each chunk records its execution."""

    kind = "test_counting"
    title = "instrumented test workload"

    def __init__(self):
        self.executed = []
        self.after_chunk = None  # optional callback(chunk_index)

    def normalize(self, params: dict) -> dict:
        return {"chunks": int(params.get("chunks", 4))}

    def decompose(self, params: dict) -> list:
        return [{"index": index} for index in range(params["chunks"])]

    def run_chunk(self, params, spec, context) -> dict:
        self.executed.append(spec["index"])
        if self.after_chunk is not None:
            self.after_chunk(spec["index"])
        return {"index": spec["index"], "square": spec["index"] ** 2}

    def merge(self, params, results) -> dict:
        return {"total": sum(result["square"] for result in results),
                "count": len(results)}


@pytest.fixture
def counting():
    registry = WorkloadRegistry()
    workload = CountingWorkload()
    registry.register(workload)
    return registry, workload


# ---------------------------------------------------------------------------
# request validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_unknown_kind_is_refused(self):
        with pytest.raises(WorkloadError, match="unknown workload kind"):
            validate_workload_request({"kind": "nope"})

    def test_unknown_parameter_is_refused(self):
        with pytest.raises(WorkloadError, match="unknown parameter_sweep"):
            validate_workload_request(
                {"kind": "parameter_sweep", "params": {"seed": 1}})

    def test_normalize_is_idempotent(self):
        workload = WORKLOADS.get("parameter_sweep")
        once = workload.normalize(SWEEP_PARAMS)
        assert workload.normalize(once) == once

    def test_chunk_restriction_bounds_checked(self):
        with pytest.raises(WorkloadError, match="chunk"):
            validate_workload_request(
                {"kind": "parameter_sweep", "params": SWEEP_PARAMS,
                 "chunks": [0, 99]})

    def test_chunk_restriction_sorted_and_deduplicated(self):
        descriptor = validate_workload_request(
            {"kind": "parameter_sweep", "params": SWEEP_PARAMS,
             "chunks": [3, 1, 1, 0]})
        assert descriptor["chunks"] == [0, 1, 3]

    def test_every_builtin_kind_decomposes_deterministically(self):
        for kind in WORKLOADS.kinds():
            workload = WORKLOADS.get(kind)
            params = workload.normalize({})
            specs = workload.decompose(params)
            assert specs, kind
            assert specs == workload.decompose(params), kind


# ---------------------------------------------------------------------------
# the chunk table and the run loop
# ---------------------------------------------------------------------------

class TestRunLoop:
    def submit(self, store, kind="test_counting", params=None, chunks=None):
        descriptor = {"kind": kind, "params": params or {"chunks": 4}}
        if chunks is not None:
            descriptor["chunks"] = chunks
        return store.submit([], [], workload=descriptor)

    def test_done_merges_in_chunk_order(self, tmp_path, counting):
        registry, workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            self.submit(store)
            job = store.claim_next()
            assert run_workload_job(job, store, registry=registry) == "done"
            assert workload.executed == [0, 1, 2, 3]
            results = store.results(job.job_id)
            assert json.loads(results[0][1]) == {"total": 14, "count": 4}
            progress = store.chunk_progress(job.job_id)
            assert (progress["done"], progress["total"]) == (4, 4)

    def test_pause_then_resume_skips_completed_chunks(self, tmp_path,
                                                      counting):
        registry, workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            self.submit(store)
            job = store.claim_next()
            calls = iter((False, False, True, True))
            outcome = run_workload_job(job, store, registry=registry,
                                       should_stop=lambda: next(calls))
            assert outcome == "paused" and workload.executed == [0, 1]
            # the job is left running so recover() requeues it on restart
            assert store.get(job.job_id).state == "running"
            first_pass = {row["chunk"]: row["finished"]
                          for row in store.chunks(job.job_id)
                          if row["state"] == "done"}
            assert sorted(first_pass) == [0, 1]

            assert store.recover() == 1
            job = store.claim_next()
            assert run_workload_job(job, store, registry=registry) == "done"
            # chunks 0 and 1 were provably skipped: same finished stamps
            rows = {row["chunk"]: row for row in store.chunks(job.job_id)}
            assert workload.executed == [0, 1, 2, 3]
            for chunk, stamp in first_pass.items():
                assert rows[chunk]["finished"] == stamp
            assert json.loads(store.results(job.job_id)[0][1]) == {
                "total": 14, "count": 4}

    def test_cancel_lands_at_chunk_boundary(self, tmp_path, counting):
        registry, workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            self.submit(store)
            job = store.claim_next()
            workload.after_chunk = (
                lambda index: store.cancel(job.job_id) if index == 1 else None)
            outcome = run_workload_job(job, store, registry=registry)
            assert outcome == "cancelled" and workload.executed == [0, 1]
            store.finish(job.job_id, "cancelled")
            states = {row["chunk"]: row["state"]
                      for row in store.chunks(job.job_id)}
            assert states == {0: "done", 1: "done",
                              2: "cancelled", 3: "cancelled"}

    def test_requeue_after_cancel_reuses_partial_results(self, tmp_path,
                                                         counting):
        registry, workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            self.submit(store)
            job = store.claim_next()
            workload.after_chunk = (
                lambda index: store.cancel(job.job_id) if index == 0 else None)
            assert run_workload_job(job, store, registry=registry) == "cancelled"
            store.finish(job.job_id, "cancelled")

            workload.after_chunk = None
            store.requeue(job.job_id)
            job = store.claim_next()
            assert run_workload_job(job, store, registry=registry) == "done"
            assert workload.executed == [0, 1, 2, 3]  # chunk 0 ran once

    def test_requeue_refuses_non_terminal_and_done_jobs(self, tmp_path,
                                                        counting):
        registry, _workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            queued = self.submit(store)
            with pytest.raises(ValueError):
                store.requeue(queued.job_id)
            job = store.claim_next()
            run_workload_job(job, store, registry=registry)
            store.finish(job.job_id, "done")
            with pytest.raises(ValueError):
                store.requeue(job.job_id)

    def test_restricted_run_skips_merge(self, tmp_path, counting):
        registry, workload = counting
        with JobStore(tmp_path / "jobs.sqlite") as store:
            self.submit(store, chunks=[1, 3])
            job = store.claim_next()
            assert run_workload_job(job, store, registry=registry) == "done"
            assert workload.executed == [1, 3]
            assert store.results(job.job_id) == []
            states = {row["chunk"]: row["state"]
                      for row in store.chunks(job.job_id)}
            assert states == {0: "pending", 1: "done",
                              2: "pending", 3: "done"}

    def test_cancel_semantics_by_state(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            queued = store.submit([("a", "x")], ["ccd"])
            assert store.cancel(queued.job_id) == "cancelled"
            assert store.get(queued.job_id).state == "cancelled"

            running = store.submit([("a", "x")], ["ccd"])
            store.claim_next()
            assert store.cancel(running.job_id) == "cancelling"
            assert store.is_cancel_requested(running.job_id)
            store.finish(running.job_id, "cancelled")
            assert store.cancel(running.job_id) == "cancelled"  # terminal noop
            assert store.cancel(99999) is None


# ---------------------------------------------------------------------------
# schema migration
# ---------------------------------------------------------------------------

class TestPreMigrationDatabase:
    def test_pre_workload_database_is_migrated_in_place(self, tmp_path):
        """A database from before the workload engine opens cleanly."""
        path = tmp_path / "jobs.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript("""
            CREATE TABLE jobs (
                id        INTEGER PRIMARY KEY AUTOINCREMENT,
                state     TEXT NOT NULL DEFAULT 'queued',
                analyses  TEXT NOT NULL,
                corpus    TEXT NOT NULL,
                options   TEXT NOT NULL DEFAULT '{}',
                error     TEXT,
                submitted REAL NOT NULL,
                started   REAL,
                finished  REAL
            );
            CREATE TABLE job_results (
                job_id   INTEGER NOT NULL,
                seq      INTEGER NOT NULL,
                envelope TEXT NOT NULL,
                PRIMARY KEY (job_id, seq)
            );
        """)
        connection.execute(
            "INSERT INTO jobs (state, analyses, corpus, submitted, started, "
            "finished) VALUES ('done', '[\"ccd\"]', '[]', 1.0, 2.0, 5.5)")
        connection.commit()
        connection.close()

        with JobStore(path) as store:
            old = store.get(1)
            assert old.state == "done" and list(old.analyses) == ["ccd"]
            payload = old.as_dict()
            assert payload["created_at"] == "1970-01-01T00:00:01+00:00"
            assert payload["duration_seconds"] == 3.5
            assert "cancel_requested" not in payload  # flag never set
            # the chunk table and new columns are usable immediately
            job = store.submit([], [], workload={"kind": "test", "params": {}})
            store.add_chunks(job.job_id, ['{"i":0}', '{"i":1}'])
            assert store.chunk_progress(job.job_id)["total"] == 2
            assert store.cancel(job.job_id) == "cancelled"


# ---------------------------------------------------------------------------
# the worker HTTP surface
# ---------------------------------------------------------------------------

class TestHttpWorkloads:
    @pytest.fixture
    def service(self, tmp_path):
        with AnalysisService(make_config(tmp_path)) as svc:
            yield svc

    @pytest.fixture
    def client(self, service):
        return ServiceClient(service.url)

    def test_http_sweep_matches_local_bytes(self, client):
        submitted = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
        assert submitted["state"] == "queued" or submitted["state"] == "running"
        final = client.wait_workload(submitted["id"], timeout=120.0)
        assert final["job"]["state"] == "done"
        daemon_bytes = canonical_json(final["results"][0])
        assert daemon_bytes == local_workload_bytes("parameter_sweep",
                                                    SWEEP_PARAMS)
        status = client.workload(submitted["id"], chunks=True)
        assert status["progress"] == {"done": 4, "total": 4, "eta": None} or \
            status["progress"]["done"] == 4
        assert [row["state"] for row in status["chunks"]] == ["done"] * 4
        assert status["duration_seconds"] is not None

    def test_listing_registry_and_jobs(self, client):
        listing = client.workloads_page(state=None, limit=10, offset=0)
        assert listing["workloads"] == [] and listing["total"] == 0
        submitted = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
        client.wait_workload(submitted["id"], timeout=120.0)
        listing = client.workloads_page(state="done", limit=10, offset=0)
        assert [entry["id"] for entry in listing["workloads"]] == \
            [submitted["id"]]
        entry = listing["workloads"][0]
        assert entry["workload"]["kind"] == "parameter_sweep"
        assert entry["progress"]["total"] == 4

    def test_submit_validation_errors_are_400(self, client):
        with pytest.raises(ServiceError, match="unknown workload kind"):
            client.submit_workload("nope")
        with pytest.raises(ServiceError, match="unknown parameter_sweep"):
            client.submit_workload("parameter_sweep", params={"bogus": 1})

    def test_workload_routes_404_for_plain_jobs(self, client, service):
        job = service.jobstore.submit([("a", "contract A {}")], [])
        with pytest.raises(ServiceError, match="not a workload"):
            client.workload(job.job_id)
        with pytest.raises(ServiceError, match="not a workload"):
            client.resume_workload(job.job_id)

    def test_cancel_queued_job_over_http(self, service):
        # scheduler is busy elsewhere: stop it claiming by flooding first
        client = ServiceClient(service.url)
        submitted = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
        outcome = client.cancel(submitted["id"])
        assert outcome["state"] in ("cancelled", "cancelling", "done")
        final = client.wait_workload(submitted["id"], timeout=120.0)
        assert final["job"]["state"] in ("cancelled", "done")

    def test_resume_failed_workload_over_http(self, tmp_path):
        """Chunks completed before a crash survive an HTTP resume."""
        config = make_config(tmp_path)
        with AnalysisService(config) as service:
            client = ServiceClient(service.url)
            submitted = client.submit_workload("parameter_sweep",
                                               params=SWEEP_PARAMS)
            final = client.wait_workload(submitted["id"], timeout=120.0)
            assert final["job"]["state"] == "done"
            reference = canonical_json(final["results"][0])

            # forge the crash: mark the job failed, wipe two chunks and
            # the merged result, as if the daemon died mid-sweep
            store = service.jobstore
            store._connection.execute(
                "UPDATE jobs SET state='failed', error='simulated crash', "
                "finished=NULL WHERE id=?", (submitted["id"],))
            store._connection.execute(
                "UPDATE job_chunks SET state='pending', result=NULL, "
                "finished=NULL WHERE job_id=? AND chunk IN (2, 3)",
                (submitted["id"],))
            store._connection.execute(
                "DELETE FROM job_results WHERE job_id=?", (submitted["id"],))
            kept = {row["chunk"]: row["finished"]
                    for row in store.chunks(submitted["id"])
                    if row["state"] == "done"}
            assert sorted(kept) == [0, 1]

            resumed = client.resume_workload(submitted["id"])
            assert resumed["progress"]["done"] == 2
            final = client.wait_workload(submitted["id"], timeout=120.0)
            assert final["job"]["state"] == "done"
            # byte parity with the uninterrupted run, chunks 0-1 skipped
            assert canonical_json(final["results"][0]) == reference
            rows = {row["chunk"]: row
                    for row in store.chunks(submitted["id"])}
            for chunk, stamp in kept.items():
                assert rows[chunk]["finished"] == stamp

    def test_jobs_endpoint_reports_timestamps_and_duration(self, client):
        submitted = client.submit_workload("parameter_sweep",
                                           params=SWEEP_PARAMS)
        final = client.wait_workload(submitted["id"], timeout=120.0)
        job = final["job"]
        assert job["created_at"] and job["started_at"] and job["finished_at"]
        assert job["duration_seconds"] >= 0.0
        assert job["created_at"] <= job["started_at"] <= job["finished_at"]


# ---------------------------------------------------------------------------
# coordinator fan-out
# ---------------------------------------------------------------------------

class TestCoordinatorWorkloads:
    def test_fanout_merges_to_single_node_bytes(self, tmp_path):
        with in_process_cluster(tmp_path, 2) as (coordinator, workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            submitted = client.submit_workload("parameter_sweep",
                                               params=SWEEP_PARAMS)
            final = client.wait_workload(submitted["id"], timeout=180.0)
            assert final["job"]["state"] == "done"
            assert canonical_json(final["results"][0]) == \
                local_workload_bytes("parameter_sweep", SWEEP_PARAMS)
            fanout = final["job"]["fanout"]
            assert sorted(fanout["shards"]) == ["shard-0", "shard-1"]
            assert fanout["degraded"] == []
            status = client.workload(submitted["id"], chunks=True)
            assert [row["state"] for row in status["chunks"]] == ["done"] * 4

    def test_shard_sub_jobs_are_restricted_and_unmerged(self, tmp_path):
        with in_process_cluster(tmp_path, 2) as (coordinator, workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            submitted = client.submit_workload("parameter_sweep",
                                               params=SWEEP_PARAMS)
            client.wait_workload(submitted["id"], timeout=180.0)
            shard_chunks = []
            for worker in workers:
                for entry in ServiceClient(worker.url).workloads():
                    descriptor = entry["workload"]
                    assert descriptor["chunks"], \
                        "shard sub-jobs must be chunk-restricted"
                    shard_chunks.extend(descriptor["chunks"])
            assert sorted(shard_chunks) == [0, 1, 2, 3]

    def test_validation_fails_fast_on_the_coordinator(self, tmp_path):
        with in_process_cluster(tmp_path, 2) as (coordinator, workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            with pytest.raises(ServiceError, match="unknown workload kind"):
                client.submit_workload("nope")
            for worker in workers:
                assert ServiceClient(worker.url).workloads() == []

    def test_cancel_fans_to_shards(self, tmp_path):
        with in_process_cluster(tmp_path, 2) as (coordinator, _workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            submitted = client.submit_workload("parameter_sweep",
                                               params=SWEEP_PARAMS)
            outcome = client.cancel(submitted["id"])
            assert outcome["state"] in ("cancelled", "cancelling", "done")
            final = client.wait_workload(submitted["id"], timeout=180.0)
            assert final["job"]["state"] in ("cancelled", "done")


# ---------------------------------------------------------------------------
# payload shape
# ---------------------------------------------------------------------------

class TestWorkloadPayload:
    def test_progress_and_eta(self, tmp_path):
        with JobStore(tmp_path / "jobs.sqlite") as store:
            job = store.submit([], [], workload={"kind": "test_counting",
                                                 "params": {"chunks": 4}})
            store.claim_next()
            store.add_chunks(job.job_id, ['{"i":0}', '{"i":1}', '{"i":2}',
                                          '{"i":3}'])
            store.start_chunk(job.job_id, 0)
            store.finish_chunk(job.job_id, 0, '{"r":0}')
            store.start_chunk(job.job_id, 1)
            store.finish_chunk(job.job_id, 1, '{"r":1}')
            payload = workload_payload(store, store.get(job.job_id),
                                       include_chunks=True)
            assert payload["progress"]["done"] == 2
            assert payload["progress"]["total"] == 4
            assert payload["progress"]["eta"] is not None
            assert payload["progress"]["eta"] >= 0.0
            assert len(payload["chunks"]) == 4
            assert payload["chunks"][0]["state"] == "done"
            assert payload["chunks"][2]["state"] == "pending"
