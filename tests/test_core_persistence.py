"""Tests for the disk-backed artifact store and the atomic file helpers."""

import pickle
import sqlite3

import pytest

from repro.core.artifacts import ArtifactStoreSpec, process_local_store
from repro.core.fileio import (
    atomic_write_bytes,
    dump_json,
    dump_pickle,
    try_load_json,
    try_load_pickle,
)
from repro.core.persistence import (
    DATABASE_NAME,
    CacheConfigurationError,
    DiskArtifactStore,
)

GOOD_SOURCE = """
contract Bank {
    mapping(address => uint) balances;
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

OTHER_SOURCE = """
contract Token {
    mapping(address => uint) balances;
    function transfer(address to, uint value) public {
        balances[msg.sender] -= value;
        balances[to] += value;
    }
}
"""

BAD_SOURCE = "this is not solidity at all {{{"


# ---------------------------------------------------------------------------
# fileio
# ---------------------------------------------------------------------------

class TestFileHelpers:
    def test_atomic_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "payload.bin"
        atomic_write_bytes(target, b"data")
        assert target.read_bytes() == b"data"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"1")
        atomic_write_bytes(tmp_path / "x.bin", b"2")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]
        assert (tmp_path / "x.bin").read_bytes() == b"2"

    def test_pickle_roundtrip(self, tmp_path):
        dump_pickle(tmp_path / "obj.pkl", {"a": frozenset({1, 2})})
        assert try_load_pickle(tmp_path / "obj.pkl") == {"a": frozenset({1, 2})}

    def test_pickle_corruption_returns_none(self, tmp_path):
        path = tmp_path / "obj.pkl"
        dump_pickle(path, [1, 2, 3])
        path.write_bytes(path.read_bytes()[:-4])  # truncate
        assert try_load_pickle(path) is None
        assert try_load_pickle(tmp_path / "missing.pkl") is None

    def test_json_roundtrip_and_corruption(self, tmp_path):
        dump_json(tmp_path / "m.json", {"x": 1})
        assert try_load_json(tmp_path / "m.json") == {"x": 1}
        (tmp_path / "m.json").write_text("{ not json")
        assert try_load_json(tmp_path / "m.json") is None


# ---------------------------------------------------------------------------
# DiskArtifactStore
# ---------------------------------------------------------------------------

class TestDiskArtifactStore:
    def test_cold_then_warm_roundtrip_zero_parses(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            artifact = store.get(GOOD_SOURCE)
            fingerprint = artifact.fingerprint
            graph_size = len(artifact.graph)
            grams = artifact.ngrams
            assert store.stats.parse_calls == 1
            assert store.stats.disk_misses == 1
            assert store.stats.disk_writes >= 1

        with DiskArtifactStore(tmp_path / "cache") as warm:
            artifact = warm.get(GOOD_SOURCE)
            assert artifact.fingerprint.text == fingerprint.text
            assert len(artifact.graph) == graph_size
            assert artifact.ngrams == grams
            assert warm.stats.parse_calls == 0
            assert warm.stats.cpg_builds == 0
            assert warm.stats.fingerprint_builds == 0
            assert warm.stats.disk_hits == 1

    def test_parse_failures_are_cached_on_disk(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            assert store.get(BAD_SOURCE).parse_ok is False
        with DiskArtifactStore(tmp_path / "cache") as warm:
            artifact = warm.get(BAD_SOURCE)
            assert artifact.parse_ok is False
            assert artifact.parse_error
            assert warm.stats.parse_calls == 0

    def test_memory_tier_in_front(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            first = store.get(GOOD_SOURCE)
            second = store.get(GOOD_SOURCE)
            assert first is second
            assert store.stats.hits == 1
            # the repeated get never consulted the disk tier again
            assert store.stats.disk_lookups == 1

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache", max_entries=1) as store:
            store.get(GOOD_SOURCE).fingerprint
            store.get(OTHER_SOURCE).fingerprint  # evicts GOOD from memory
            assert store.stats.evictions == 1
            store.get(GOOD_SOURCE).fingerprint
            assert store.stats.disk_hits == 1
            assert store.stats.parse_calls == 2  # never re-parsed

    def test_corrupt_row_is_discarded_and_recomputed(self, tmp_path):
        directory = tmp_path / "cache"
        with DiskArtifactStore(directory) as store:
            store.get(GOOD_SOURCE).fingerprint
            key = store.get(GOOD_SOURCE).key
        connection = sqlite3.connect(str(directory / DATABASE_NAME))
        connection.execute("UPDATE artifacts SET payload = ? WHERE key = ?",
                           (b"garbage bytes", key))
        connection.commit()
        connection.close()
        with DiskArtifactStore(directory) as store:
            artifact = store.get(GOOD_SOURCE)
            assert artifact.fingerprint.text  # recomputed fine
            assert store.stats.disk_corruptions == 1
            # the surviving function-digest tier rebuilt the fingerprint
            # without a single re-parse
            assert store.stats.parse_calls == 0
            assert store.stats.delta_assemblies == 1
        # the recompute healed the cache
        with DiskArtifactStore(directory) as healed:
            healed.get(GOOD_SOURCE).fingerprint
            assert healed.stats.parse_calls == 0

    def test_corrupt_database_file_is_quarantined(self, tmp_path):
        directory = tmp_path / "cache"
        with DiskArtifactStore(directory) as store:
            store.get(GOOD_SOURCE).fingerprint
        (directory / DATABASE_NAME).write_bytes(b"definitely not sqlite")
        with DiskArtifactStore(directory) as store:
            assert store.stats.disk_corruptions == 1
            artifact = store.get(GOOD_SOURCE)
            assert artifact.fingerprint.text
            assert store.stats.parse_calls == 1

    def test_configuration_mismatch_is_rejected(self, tmp_path):
        directory = tmp_path / "cache"
        DiskArtifactStore(directory, ngram_size=3).close()
        with pytest.raises(CacheConfigurationError):
            DiskArtifactStore(directory, ngram_size=5)

    def test_gc_by_entries_and_age(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            store.get(GOOD_SOURCE).fingerprint
            store.get(OTHER_SOURCE).fingerprint
            assert store.disk_entries() == 2
            assert store.gc(max_entries=1) == 1
            assert store.disk_entries() == 1
            assert store.gc(max_age_seconds=0.0) == 1
            assert store.disk_entries() == 0

    def test_clear_disk(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            store.get(GOOD_SOURCE).fingerprint
            store.clear(disk=True)
            assert len(store) == 0
            assert store.disk_entries() == 0

    def test_spec_roundtrip_shares_disk_tier(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            store.get(GOOD_SOURCE).fingerprint
            spec = store.spec
        assert spec.path == str(tmp_path / "cache")
        assert pickle.loads(pickle.dumps(spec)) == spec
        with spec.build() as rebuilt:
            assert isinstance(rebuilt, DiskArtifactStore)
            rebuilt.get(GOOD_SOURCE).fingerprint
            assert rebuilt.stats.parse_calls == 0
        # process_local_store caches per spec
        worker_store = process_local_store(spec)
        assert process_local_store(spec) is worker_store

    def test_plain_spec_builds_in_memory_store(self):
        spec = ArtifactStoreSpec()
        assert spec.path is None
        assert not isinstance(spec.build(), DiskArtifactStore)

    def test_read_usage_and_collect_garbage_classmethods(self, tmp_path):
        directory = tmp_path / "cache"
        assert DiskArtifactStore.read_usage(directory)["entries"] == 0
        with DiskArtifactStore(directory) as store:
            store.get(GOOD_SOURCE).fingerprint
            store.get(OTHER_SOURCE).fingerprint
        usage = DiskArtifactStore.read_usage(directory)
        assert usage["entries"] == 2
        assert usage["payload_bytes"] > 0
        assert usage["configuration"]["ngram_size"] == 3
        assert DiskArtifactStore.collect_garbage(directory, max_entries=0) == 2
        assert DiskArtifactStore.read_usage(directory)["entries"] == 0

    def test_stats_as_dict_includes_disk_counters(self, tmp_path):
        with DiskArtifactStore(tmp_path / "cache") as store:
            store.get(GOOD_SOURCE).fingerprint
            data = store.stats.as_dict()
        for counter in ("disk_hits", "disk_misses", "disk_writes",
                        "disk_corruptions", "disk_errors"):
            assert counter in data


# ---------------------------------------------------------------------------
# busy handling under concurrent writers
# ---------------------------------------------------------------------------

class TestBusyHandling:
    def test_retry_on_busy_retries_then_succeeds(self):
        from repro.core.persistence import retry_on_busy

        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert retry_on_busy(flaky, attempts=5, base_delay=0.0) == "ok"
        assert len(calls) == 3

    def test_retry_on_busy_gives_up_after_attempts(self):
        from repro.core.persistence import retry_on_busy

        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_on_busy(always_locked, attempts=3, base_delay=0.0)

    def test_retry_on_busy_propagates_other_errors_immediately(self):
        from repro.core.persistence import retry_on_busy

        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: artifacts")

        with pytest.raises(sqlite3.OperationalError):
            retry_on_busy(broken, attempts=5, base_delay=0.0)
        assert len(calls) == 1  # not a busy error: no retry

    def test_busy_timeout_is_configurable_and_applied(self, tmp_path):
        store = DiskArtifactStore(tmp_path / "cache", busy_timeout_seconds=1.5)
        try:
            timeout_ms = store._connection.execute(
                "PRAGMA busy_timeout").fetchone()[0]
            assert timeout_ms == 1500
        finally:
            store.close()

    def test_concurrent_writers_one_cache_path(self, tmp_path):
        """Two stores (two connections) hammering one cache concurrently.

        The regression this guards: without a busy timeout + retry, one
        writer hits SQLITE_BUSY mid-burst and its artifacts are silently
        dropped (counted as disk_errors).  With them, every write lands.
        """
        import threading

        directory = tmp_path / "cache"
        sources = [
            f"contract C{index} {{ function f() public returns (uint) "
            f"{{ return {index}; }} }}"
            for index in range(24)
        ]
        stores = [DiskArtifactStore(directory) for _ in range(2)]
        errors: list = []

        def hammer(store, chunk):
            try:
                for source in chunk:
                    store.get(source).fingerprint  # materialize -> write-through
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(stores[0], sources[:12])),
            threading.Thread(target=hammer, args=(stores[1], sources[12:])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert errors == []
            assert stores[0].stats.disk_errors == 0
            assert stores[1].stats.disk_errors == 0
            assert stores[0].disk_entries() == len(sources)
        finally:
            for store in stores:
                store.close()
