"""Tests for the property-graph container."""

import pytest

from repro.cpg.graph import CPGGraph, EdgeLabel
from repro.cpg.nodes import (
    CallExpression,
    DeclaredReferenceExpression,
    FieldDeclaration,
    FunctionDeclaration,
    Rollback,
)


@pytest.fixture
def small_graph():
    graph = CPGGraph()
    function = FunctionDeclaration(name="withdraw")
    call = CallExpression(name="transfer", code="msg.sender.transfer(amount)")
    reference = DeclaredReferenceExpression(name="amount", code="amount")
    field = FieldDeclaration(name="balances")
    rollback = Rollback(code="require(...)")
    graph.add_edge(function, call, EdgeLabel.EOG)
    graph.add_edge(call, rollback, EdgeLabel.EOG)
    graph.add_edge(reference, call, EdgeLabel.DFG)
    graph.add_edge(reference, field, EdgeLabel.DFG)
    graph.add_edge(function, call, EdgeLabel.AST)
    return graph, function, call, reference, field, rollback


class TestConstruction:
    def test_add_node_is_idempotent(self):
        graph = CPGGraph()
        node = FunctionDeclaration(name="f")
        graph.add_node(node)
        graph.add_node(node)
        assert len(graph) == 1

    def test_add_edge_adds_both_endpoints(self):
        graph = CPGGraph()
        a, b = FunctionDeclaration(name="a"), CallExpression(name="b")
        graph.add_edge(a, b, EdgeLabel.EOG)
        assert len(graph) == 2 and len(graph.edges) == 1

    def test_has_edge(self, small_graph):
        graph, function, call, *_ = small_graph
        assert graph.has_edge(function, call, EdgeLabel.EOG)
        assert not graph.has_edge(call, function, EdgeLabel.EOG)

    def test_edge_properties_stored(self):
        graph = CPGGraph()
        a, b = FunctionDeclaration(name="a"), CallExpression(name="b")
        edge = graph.add_edge(a, b, EdgeLabel.DFG, kind="write")
        assert edge.properties["kind"] == "write"

    def test_statistics(self, small_graph):
        graph, *_ = small_graph
        stats = graph.statistics()
        assert stats["nodes"] == 5
        assert stats["edges_eog"] == 2


class TestLookup:
    def test_nodes_by_label(self, small_graph):
        graph, *_ = small_graph
        assert len(graph.nodes_by_label("CallExpression")) == 1
        assert len(graph.nodes_by_label("FunctionDeclaration")) == 1

    def test_labels_include_hierarchy(self, small_graph):
        graph, *_ = small_graph
        # Rollback is a Statement
        assert graph.nodes_by_label("Statement")

    def test_find_by_code(self, small_graph):
        graph, *_, rollback = small_graph
        assert graph.find(code="require(...)") == [rollback]

    def test_find_by_name_and_label(self, small_graph):
        graph, *_ = small_graph
        assert graph.find(label="FieldDeclaration", name="balances")

    def test_find_with_predicate(self, small_graph):
        graph, *_ = small_graph
        result = graph.find(where=lambda node: node.name == "withdraw")
        assert len(result) == 1


class TestTraversal:
    def test_successors_by_label(self, small_graph):
        graph, function, call, *_ = small_graph
        assert graph.successors(function, EdgeLabel.EOG) == [call]
        assert graph.successors(function, EdgeLabel.DFG) == []

    def test_predecessors(self, small_graph):
        graph, function, call, *_ = small_graph
        assert function in graph.predecessors(call, EdgeLabel.EOG)

    def test_out_edges_without_label_filter(self, small_graph):
        graph, function, *_ = small_graph
        assert len(graph.out_edges(function)) == 2  # EOG + AST

    def test_reachable(self, small_graph):
        graph, function, call, _, _, rollback = small_graph
        reached = graph.reachable(function, EdgeLabel.EOG)
        assert call in reached and rollback in reached

    def test_reachable_include_start(self, small_graph):
        graph, function, *_ = small_graph
        assert function in graph.reachable(function, EdgeLabel.EOG, include_start=True)

    def test_reachable_max_depth(self, small_graph):
        graph, function, call, _, _, rollback = small_graph
        one_hop = graph.reachable(function, EdgeLabel.EOG, max_depth=1)
        assert call in one_hop and rollback not in one_hop

    def test_reachable_reverse(self, small_graph):
        graph, function, call, *_ = small_graph
        assert function in graph.reachable(call, EdgeLabel.EOG, reverse=True)

    def test_is_reachable(self, small_graph):
        graph, function, _, reference, field, rollback = small_graph
        assert graph.is_reachable(function, rollback, EdgeLabel.EOG)
        assert graph.is_reachable(reference, field, EdgeLabel.DFG)
        assert not graph.is_reachable(field, reference, EdgeLabel.DFG)

    def test_is_reachable_same_node(self, small_graph):
        graph, function, *_ = small_graph
        assert graph.is_reachable(function, function, EdgeLabel.EOG)

    def test_any_path_returns_path(self, small_graph):
        graph, function, call, _, _, rollback = small_graph
        path = graph.any_path(function, lambda node: node.has_label("Rollback"), EdgeLabel.EOG)
        assert path is not None and path[-1] is rollback and call in path

    def test_any_path_none_when_unreachable(self, small_graph):
        graph, _, _, reference, *_ = small_graph
        assert graph.any_path(reference, lambda node: node.has_label("Rollback"), EdgeLabel.EOG) is None

    def test_terminal_nodes(self, small_graph):
        graph, function, _, _, _, rollback = small_graph
        terminals = graph.terminal_nodes(function, EdgeLabel.EOG)
        assert terminals == [rollback]

    def test_cycle_does_not_hang(self):
        graph = CPGGraph()
        a, b = CallExpression(name="a"), CallExpression(name="b")
        graph.add_edge(a, b, EdgeLabel.EOG)
        graph.add_edge(b, a, EdgeLabel.EOG)
        assert set(graph.reachable(a, EdgeLabel.EOG)) == {b}
        assert graph.is_reachable(a, a, EdgeLabel.EOG)


class TestAstHelpers:
    def test_ast_parent_and_children(self, small_graph):
        graph, function, call, *_ = small_graph
        assert graph.ast_children(function) == [call]
        assert graph.ast_parent(call) is function

    def test_ast_descendants(self, small_graph):
        graph, function, call, *_ = small_graph
        descendants = list(graph.ast_descendants(function))
        assert function in descendants and call in descendants

    def test_enclosing(self, small_graph):
        graph, function, call, *_ = small_graph
        assert graph.enclosing(call, "FunctionDeclaration") is function
        assert graph.enclosing(call, "RecordDeclaration") is None
