"""Tests for the synthetic dataset generators."""

import random

import pytest

from repro.ccc import ContractChecker, DaspCategory
from repro.datasets import CloneMutator, HONEYPOT_TYPES, generate_honeypot_corpus
from repro.datasets.smartbugs import DEFAULT_LABEL_COUNTS, generate_smartbugs_corpus
from repro.datasets.snippets import SITE_ETHEREUM_SE, SITE_STACK_OVERFLOW, generate_qa_corpus
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.templates import (
    BENIGN_TEMPLATES,
    VULNERABLE_TEMPLATES,
    generate_benign,
    generate_vulnerable,
)
from repro.solidity.parser import parse_snippet


class TestTemplates:
    @pytest.mark.parametrize("category", list(VULNERABLE_TEMPLATES))
    def test_every_category_has_templates(self, category):
        assert VULNERABLE_TEMPLATES[category]

    @pytest.mark.parametrize("category", list(VULNERABLE_TEMPLATES))
    def test_vulnerable_instances_parse(self, category):
        rng = random.Random(1)
        instance = generate_vulnerable(rng, category)
        parse_snippet(instance.contract_source)
        parse_snippet(instance.function_snippet)
        parse_snippet(instance.statement_snippet)

    @pytest.mark.parametrize("category", [
        DaspCategory.REENTRANCY,
        DaspCategory.ACCESS_CONTROL,
        DaspCategory.ARITHMETIC,
        DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
        DaspCategory.TIME_MANIPULATION,
        DaspCategory.BAD_RANDOMNESS,
        DaspCategory.DENIAL_OF_SERVICE,
        DaspCategory.SHORT_ADDRESSES,
    ])
    def test_ccc_detects_template_category_on_contract(self, category, checker):
        rng = random.Random(5)
        instance = generate_vulnerable(rng, category)
        found = {finding.category for finding in checker.analyze(instance.contract_source).findings}
        assert category in found

    def test_benign_templates_are_clean(self, checker):
        rng = random.Random(2)
        for template in BENIGN_TEMPLATES:
            instance = template(rng, 0)
            assert not checker.analyze(instance.contract_source).findings

    def test_mitigated_reentrancy_is_clean(self, checker):
        rng = random.Random(3)
        instance = generate_vulnerable(rng, DaspCategory.REENTRANCY)
        found = {finding.category for finding in checker.analyze(instance.mitigated_source).findings}
        assert DaspCategory.REENTRANCY not in found

    def test_instances_vary_identifiers(self):
        rng = random.Random(4)
        sources = {generate_vulnerable(rng, DaspCategory.REENTRANCY).contract_source for _ in range(8)}
        assert len(sources) > 1

    def test_benign_instance_has_no_category(self):
        assert generate_benign(random.Random(0)).category is None


class TestCloneMutator:
    BASE = """
pragma solidity ^0.4.24;

contract Vault {
    mapping(address => uint) balances;

    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.transfer(amount);
        balances[msg.sender] -= amount;
    }
}
"""

    def test_type0_is_identity(self):
        assert CloneMutator(seed=1).mutate(self.BASE, 0) == self.BASE

    def test_type1_preserves_tokens(self):
        from repro.pipeline.collection import canonical_text
        mutated = CloneMutator(seed=1).type1(self.BASE)
        # only layout/comments changed: canonical text modulo comments matches
        assert canonical_text(mutated).replace(" ", "") == canonical_text(self.BASE).replace(" ", "")

    def test_type2_renames_identifiers(self):
        mutated = CloneMutator(seed=2).type2(self.BASE)
        assert mutated != self.BASE
        parse_snippet(mutated)

    def test_type3_changes_statements(self):
        mutated = CloneMutator(seed=3).type3(self.BASE)
        parse_snippet(mutated)
        assert len(mutated.splitlines()) != len(self.BASE.splitlines()) or mutated != self.BASE

    def test_mutations_are_deterministic_per_seed(self):
        assert CloneMutator(seed=7).type3(self.BASE) == CloneMutator(seed=7).type3(self.BASE)

    def test_clone_still_detected_by_ccd(self):
        from repro.ccd import CloneDetector
        detector = CloneDetector(similarity_threshold=0.7)
        detector.add_document("original", self.BASE)
        for clone_type in (1, 2, 3):
            mutated = CloneMutator(seed=clone_type).mutate(self.BASE, clone_type)
            matches = detector.find_clones(mutated)
            assert any(match.document_id == "original" for match in matches), f"type {clone_type}"


class TestSmartBugsCorpus:
    def test_label_counts_match_request(self, small_smartbugs_corpus):
        assert small_smartbugs_corpus.total_labels == 43

    def test_default_counts_match_table1(self):
        assert sum(DEFAULT_LABEL_COUNTS.values()) == 204

    def test_every_category_present(self, small_smartbugs_corpus):
        assert len(small_smartbugs_corpus.categories) == 9

    def test_entries_parse(self, small_smartbugs_corpus):
        for entry in small_smartbugs_corpus.entries:
            parse_snippet(entry.source)

    def test_derived_functions_dataset(self, small_smartbugs_corpus):
        derived = small_smartbugs_corpus.derive_functions()
        assert len(derived) == len(small_smartbugs_corpus.entries)
        assert all(snippet.strip().startswith("function") for _entry, snippet in derived)

    def test_derived_statements_dataset_has_no_function_headers(self, small_smartbugs_corpus):
        derived = small_smartbugs_corpus.derive_statements()
        assert derived
        assert all(not snippet.strip().startswith("function") for _entry, snippet in derived)

    def test_generation_is_deterministic(self):
        first = generate_smartbugs_corpus(seed=21)
        second = generate_smartbugs_corpus(seed=21)
        assert [e.source for e in first.entries] == [e.source for e in second.entries]


class TestHoneypotCorpus:
    def test_all_nine_types_generated(self, small_honeypot_corpus):
        assert {c.honeypot_type for c in small_honeypot_corpus} == set(HONEYPOT_TYPES)

    def test_counts_respected(self, small_honeypot_corpus):
        per_type = {}
        for contract in small_honeypot_corpus:
            per_type[contract.honeypot_type] = per_type.get(contract.honeypot_type, 0) + 1
        assert per_type["hidden_state_update"] == 6

    def test_contracts_parse(self, small_honeypot_corpus):
        for contract in small_honeypot_corpus:
            parse_snippet(contract.source)

    def test_intra_family_variants_differ(self, small_honeypot_corpus):
        family = [c.source for c in small_honeypot_corpus if c.honeypot_type == "hidden_state_update"]
        assert len(set(family)) > 1

    def test_unique_addresses(self, small_honeypot_corpus):
        addresses = [c.address for c in small_honeypot_corpus]
        assert len(addresses) == len(set(addresses))

    def test_default_scale(self):
        assert len(generate_honeypot_corpus(seed=7)) == sum(HONEYPOT_TYPES.values())


class TestQACorpus:
    def test_sites_and_ratio(self, small_qa_corpus):
        so = small_qa_corpus.posts_by_site(SITE_STACK_OVERFLOW)
        ese = small_qa_corpus.posts_by_site(SITE_ETHEREUM_SE)
        assert len(so) == 25 and len(ese) == 60

    def test_snippets_have_metadata(self, small_qa_corpus):
        for snippet in small_qa_corpus.snippets:
            assert snippet.views > 0
            assert snippet.created.year >= 2016

    def test_contains_mixed_languages(self, small_qa_corpus):
        languages = {snippet.ground_truth_language for snippet in small_qa_corpus.snippets}
        assert {"solidity", "javascript"} <= languages

    def test_contains_vulnerable_and_benign(self, small_qa_corpus):
        flags = {snippet.ground_truth_vulnerable for snippet in small_qa_corpus.snippets}
        assert flags == {True, False}

    def test_deterministic(self):
        first = generate_qa_corpus(seed=5, posts_per_site={"stackoverflow": 10})
        second = generate_qa_corpus(seed=5, posts_per_site={"stackoverflow": 10})
        assert [s.text for s in first.snippets] == [s.text for s in second.snippets]


class TestSanctuary:
    def test_contracts_generated(self, small_sanctuary):
        assert len(small_sanctuary) > 50

    def test_ground_truth_embeddings_reference_existing_contracts(self, small_sanctuary):
        addresses = {contract.address for contract in small_sanctuary.contracts}
        for snippet_id, embedded in small_sanctuary.ground_truth_embeddings.items():
            assert set(embedded) <= addresses

    def test_source_snippets_subset_of_embeddings(self, small_sanctuary):
        assert small_sanctuary.ground_truth_source_snippets <= set(small_sanctuary.ground_truth_embeddings)

    def test_compiler_versions_valid(self, small_sanctuary):
        versions = {contract.compiler_version for contract in small_sanctuary.contracts}
        assert versions <= {"v0.8.19", "v0.6.12", "v0.4.24", "v0.5.17", "v0.7.6"}

    def test_deployment_dates_in_range(self, small_sanctuary):
        from datetime import date
        for contract in small_sanctuary.contracts:
            assert date(2016, 1, 1) <= contract.deployed <= date(2023, 7, 14)

    def test_by_address_lookup(self, small_sanctuary):
        contract = small_sanctuary.contracts[0]
        assert small_sanctuary.by_address(contract.address) is contract
        with pytest.raises(KeyError):
            small_sanctuary.by_address("0xmissing")

    def test_most_contracts_parse(self, small_sanctuary):
        from repro.solidity.errors import SolidityParseError
        failures = 0
        for contract in small_sanctuary.contracts:
            try:
                parse_snippet(contract.source)
            except SolidityParseError:
                failures += 1
        assert failures <= len(small_sanctuary.contracts) * 0.05
