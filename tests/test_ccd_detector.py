"""Tests for the CloneDetector end-to-end behaviour (Section 5.5)."""

import pytest

from repro.ccd.detector import CloneDetector, CloneMatch

SAFE = """
contract Safe {
    address owner;
    constructor() { owner = msg.sender; }
    function safeWithdraw(uint amount) {
        require(msg.sender == owner);
        msg.sender.transfer(amount);
    }
}
"""

UNSAFE = """
contract Unsafe {
    function unsafeWithdraw(uint value) {
        msg.sender.transfer(value);
    }
    address deployer;
    constructor() { deployer = msg.sender; }
}
"""

TOKEN = """
contract Token {
    mapping(address => uint) balances;
    function mint(address to, uint value) public { balances[to] += value; }
    function burn(address from, uint value) public { balances[from] -= value; }
    function balanceOf(address account) public view returns (uint) { return balances[account]; }
}
"""

SNIPPET = """
function test(uint amount) {
    msg.sender.transfer(amount);
}
"""


@pytest.fixture
def detector():
    detector = CloneDetector(ngram_size=3, ngram_threshold=0.3, similarity_threshold=0.7)
    detector.add_corpus([("safe", SAFE), ("unsafe", UNSAFE), ("token", TOKEN)])
    return detector


class TestIndexing:
    def test_corpus_indexed(self, detector):
        assert len(detector) == 3

    def test_unparsable_document_rejected(self):
        detector = CloneDetector()
        assert detector.add_document("bad", "this is not solidity at all, sorry") is False
        assert "bad" in detector.parse_failures

    def test_duplicate_add_overwrites(self, detector):
        assert detector.add_document("safe", SAFE) is True
        assert len(detector) == 3


class TestMatching:
    def test_snippet_found_in_both_wallets(self, detector):
        matches = detector.find_clones(SNIPPET)
        matched_ids = {match.document_id for match in matches}
        assert "unsafe" in matched_ids
        assert "token" not in matched_ids

    def test_results_sorted_by_similarity(self, detector):
        matches = detector.find_clones(SNIPPET)
        scores = [match.similarity for match in matches]
        assert scores == sorted(scores, reverse=True)

    def test_unrelated_snippet_matches_nothing(self, detector):
        assert detector.find_clones("function foo(uint n) { counter = counter * n + 7; }") == []

    def test_threshold_override(self, detector):
        permissive = detector.find_clones(SNIPPET, similarity_threshold=0.3)
        strict = detector.find_clones(SNIPPET, similarity_threshold=0.99)
        assert len(permissive) >= len(strict)

    def test_type2_clone_scores_100(self, detector):
        renamed = "function doIt(uint howMuch) { msg.sender.transfer(howMuch); }"
        matches = detector.find_clones(renamed, similarity_threshold=0.95)
        assert any(match.similarity == pytest.approx(100.0) for match in matches)

    def test_type3_clone_still_found(self, detector):
        near_miss = """
function withdrawAll(uint amount) {
    lastCaller = msg.sender;
    msg.sender.transfer(amount);
}
"""
        matches = detector.find_clones(near_miss, similarity_threshold=0.5)
        assert {match.document_id for match in matches} & {"safe", "unsafe"}

    def test_requires_source_or_fingerprint(self, detector):
        with pytest.raises(ValueError):
            detector.find_clones()

    def test_fingerprint_reuse(self, detector):
        fingerprint = detector.fingerprint_source(SNIPPET)
        assert detector.find_clones(fingerprint=fingerprint) == detector.find_clones(SNIPPET)

    def test_similarity_between_indexed_documents(self, detector):
        assert detector.similarity("safe", "unsafe") > detector.similarity("safe", "token")

    def test_pairwise_clones_excludes_self(self, detector):
        pairwise = detector.pairwise_clones(similarity_threshold=0.3)
        for document_id, matches in pairwise.items():
            assert all(match.document_id != document_id for match in matches)

    def test_clone_match_repr(self):
        assert "0x1" in repr(CloneMatch(document_id="0x1", similarity=92.5))
