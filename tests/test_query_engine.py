"""Tests for the query context: deadlines, bounded traversal, predicates."""

import pytest

from repro.cpg import build_cpg
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, QueryTimeout, predicates


@pytest.fixture(scope="module")
def wallet_ctx():
    source = """
contract Wallet {
    address owner;
    mapping(address => uint) balances;
    constructor() public { owner = msg.sender; }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
    function sweep() public {
        require(msg.sender == owner);
        msg.sender.transfer(address(this).balance);
    }
}
"""
    return QueryContext(build_cpg(source, snippet=False))


class TestContext:
    def test_elapsed_increases(self, wallet_ctx):
        assert wallet_ctx.elapsed >= 0

    def test_no_timeout_by_default(self, wallet_ctx):
        wallet_ctx.check_deadline()  # must not raise

    def test_timeout_raises(self):
        graph = build_cpg("function f() { owner = msg.sender; }")
        ctx = QueryContext(graph, timeout=0.0)
        with pytest.raises(QueryTimeout):
            ctx.check_deadline()

    def test_flow_depth_bound_limits_reachability(self):
        graph = build_cpg(
            "contract C { uint a; uint b; function f(uint x) public { uint y = x; uint z = y; b = z; } }",
            snippet=False)
        unbounded = QueryContext(graph)
        bounded = QueryContext(graph, max_flow_depth=1)
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "x")
        field = next(f for f in graph.nodes_by_label("FieldDeclaration") if f.name == "b")
        assert unbounded.flows_to(param, field)
        assert not bounded.flows_to(param, field)

    def test_flow_targets_and_sources_are_inverse(self, wallet_ctx):
        graph = wallet_ctx.graph
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "amount")
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "value")
        assert call in wallet_ctx.flow_targets(param)
        assert param in wallet_ctx.flow_sources(call)

    def test_eog_reaches(self, wallet_ctx):
        graph = wallet_ctx.graph
        withdraw = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        compound_write = next(op for op in graph.nodes_by_label("BinaryOperator")
                              if op.operator_code == "-=")
        assert wallet_ctx.eog_reaches(withdraw, compound_write)

    def test_eog_between(self, wallet_ctx):
        graph = wallet_ctx.graph
        withdraw = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        compound_write = next(op for op in graph.nodes_by_label("BinaryOperator")
                              if op.operator_code == "-=")
        between = wallet_ctx.eog_between(withdraw, compound_write)
        assert any(node.name == "require" for node in between)

    def test_flows_to_any(self, wallet_ctx):
        graph = wallet_ctx.graph
        param = next(p for p in graph.nodes_by_label("ParamVariableDeclaration") if p.name == "amount")
        hit = wallet_ctx.flows_to_any(param, lambda node: node.has_label("FieldDeclaration"))
        assert hit is not None and hit.name == "balances"


class TestPredicates:
    def test_enclosing_function(self, wallet_ctx):
        graph = wallet_ctx.graph
        call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "transfer")
        function = predicates.enclosing_function(wallet_ctx, call)
        assert function is not None and function.name == "sweep"

    def test_record_of(self, wallet_ctx):
        graph = wallet_ctx.graph
        function = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        record = predicates.record_of(wallet_ctx, function)
        assert record is not None and record.name == "Wallet"

    def test_functions_excludes_constructors_by_default(self, wallet_ctx):
        names = {function.name for function in predicates.functions(wallet_ctx)}
        assert "withdraw" in names
        assert not any(f.has_label("ConstructorDeclaration") for f in predicates.functions(wallet_ctx))

    def test_calls_in(self, wallet_ctx):
        graph = wallet_ctx.graph
        withdraw = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        call_names = {call.name for call in predicates.calls_in(wallet_ctx, withdraw)}
        assert "require" in call_names and "value" in call_names

    def test_is_ether_transfer(self, wallet_ctx):
        graph = wallet_ctx.graph
        transfer = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "transfer")
        require_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "require")
        assert predicates.is_ether_transfer(wallet_ctx, transfer)
        assert not predicates.is_ether_transfer(wallet_ctx, require_call)

    def test_old_style_call_value_is_transfer(self, wallet_ctx):
        graph = wallet_ctx.graph
        value_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "value")
        assert predicates.is_ether_transfer(wallet_ctx, value_call)

    def test_is_external_call(self, wallet_ctx):
        graph = wallet_ctx.graph
        value_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "value")
        require_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "require")
        assert predicates.is_external_call(wallet_ctx, value_call)
        assert not predicates.is_external_call(wallet_ctx, require_call)

    def test_state_writes_in(self, wallet_ctx):
        graph = wallet_ctx.graph
        withdraw = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        writes = predicates.state_writes_in(wallet_ctx, withdraw)
        assert any(field.name == "balances" for _write, field in writes)

    def test_fields_compared_to_sender(self, wallet_ctx):
        fields = predicates.fields_compared_to_sender(wallet_ctx)
        assert any(field.name == "owner" for field in fields)

    def test_is_access_controlled(self, wallet_ctx):
        graph = wallet_ctx.graph
        sweep = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "sweep")
        transfer = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "transfer")
        assert predicates.is_access_controlled(wallet_ctx, sweep, transfer)

    def test_withdraw_is_not_access_controlled(self, wallet_ctx):
        graph = wallet_ctx.graph
        withdraw = next(f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "withdraw")
        value_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "value")
        assert not predicates.is_access_controlled(wallet_ctx, withdraw, value_call)

    def test_msg_sender_nodes(self, wallet_ctx):
        assert len(predicates.msg_sender_nodes(wallet_ctx)) >= 3

    def test_call_value_expressions(self, wallet_ctx):
        graph = wallet_ctx.graph
        value_call = next(c for c in graph.nodes_by_label("CallExpression") if c.name == "value")
        values = predicates.call_value_expressions(wallet_ctx, value_call)
        assert values and values[0].name == "amount"

    def test_solidity_pragma_version_absent(self, wallet_ctx):
        assert predicates.solidity_pragma_version(wallet_ctx) is None
