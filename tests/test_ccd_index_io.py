"""Tests for CCD corpus index serialization (save / shard / reload)."""

import pytest

from repro.ccd.detector import CloneDetector
from repro.ccd.index_io import (
    IndexFormatError,
    MANIFEST_NAME,
    load_index,
    read_manifest,
    save_index,
    shard_of,
)
from repro.core.persistence import DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus


@pytest.fixture(scope="module")
def corpus():
    qa = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 8, "ethereum.stackexchange": 16})
    sanctuary = generate_sanctuary(qa, seed=11, independent_contracts=8)
    queries = [(snippet.snippet_id, snippet.text)
               for post in qa.posts for snippet in post.snippets][:25]
    return sanctuary.contracts, queries


@pytest.fixture(scope="module")
def detector(corpus):
    contracts, _ = corpus
    detector = CloneDetector(similarity_threshold=0.9)
    detector.add_corpus([(contract.address, contract.source) for contract in contracts])
    return detector


class TestShardOf:
    def test_stable_and_in_range(self):
        for shards in (1, 4, 16):
            for document_id in ("0xabc", "s1", 42, ("tuple", 1)):
                shard = shard_of(document_id, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(document_id, shards)

    def test_distributes_documents(self):
        shards = {shard_of(f"0x{i:040x}", 8) for i in range(200)}
        assert len(shards) == 8


class TestSaveLoadEquivalence:
    def test_roundtrip_results_identical(self, tmp_path, detector, corpus):
        _, queries = corpus
        baseline = detector.find_clones_many(queries)
        manifest = save_index(detector, tmp_path / "index", shards=4)
        assert manifest["documents"] == len(detector)
        reloaded = load_index(tmp_path / "index")
        assert len(reloaded) == len(detector)
        assert reloaded.find_clones_many(queries) == baseline

    def test_shard_counts_are_equivalent(self, tmp_path, detector, corpus):
        _, queries = corpus
        results = []
        for shards in (1, 3, 8):
            directory = tmp_path / f"index-{shards}"
            save_index(detector, directory, shards=shards)
            assert read_manifest(directory)["shards"] == shards
            results.append(load_index(directory).find_clones_many(queries))
        assert results[0] == results[1] == results[2]

    def test_resave_with_fewer_shards_drops_stale_files(self, tmp_path, detector):
        directory = tmp_path / "index"
        save_index(detector, directory, shards=8)
        save_index(detector, directory, shards=2)
        names = sorted(p.name for p in directory.glob("shard-*.pkl"))
        assert names == ["shard-0000.pkl", "shard-0001.pkl"]

    def test_load_performs_zero_parses(self, tmp_path, detector):
        save_index(detector, tmp_path / "index", shards=2)
        store = DiskArtifactStore(tmp_path / "cache")
        reloaded = load_index(tmp_path / "index", store=store)
        assert len(reloaded) == len(detector)
        assert store.stats.parse_calls == 0
        store.close()

    def test_parse_failures_survive_roundtrip(self, tmp_path):
        detector = CloneDetector()
        detector.add_corpus([("good", "contract c { function f() public {} }"),
                             ("bad", "not solidity {{{")])
        assert detector.parse_failures == ["bad"]
        save_index(detector, tmp_path / "index")
        assert load_index(tmp_path / "index").parse_failures == ["bad"]

    def test_fuzzy_hash_parameters_survive_roundtrip(self, tmp_path, corpus):
        contracts, _ = corpus
        detector = CloneDetector(fingerprint_block_size=3, fingerprint_window=6)
        detector.add_corpus([(c.address, c.source) for c in contracts])
        save_index(detector, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        assert reloaded.generator.hasher.block_size == 3
        assert reloaded.generator.hasher.window == 6

    def test_non_string_parse_failure_ids_survive_roundtrip(self, tmp_path):
        detector = CloneDetector()
        detector.add_corpus([(7, "not solidity {{{"), (12, "also not {{{")])
        assert detector.parse_failures == [7, 12]
        save_index(detector, tmp_path / "index")
        assert load_index(tmp_path / "index").parse_failures == [7, 12]

    def test_detector_convenience_methods(self, tmp_path, detector, corpus):
        _, queries = corpus
        detector.save_index(tmp_path / "index", shards=2)
        reloaded = CloneDetector.load(tmp_path / "index")
        assert reloaded.find_clones_many(queries) == detector.find_clones_many(queries)
        assert reloaded.ngram_size == detector.ngram_size
        assert reloaded.similarity_threshold == detector.similarity_threshold


class TestCorruptionHandling:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(IndexFormatError):
            load_index(tmp_path / "nothing-here")

    def test_bad_format_version_raises(self, tmp_path, detector):
        directory = tmp_path / "index"
        save_index(detector, directory)
        (directory / MANIFEST_NAME).write_text('{"format_version": 999}')
        with pytest.raises(IndexFormatError):
            load_index(directory)

    def test_corrupt_shard_strict_raises(self, tmp_path, detector):
        directory = tmp_path / "index"
        save_index(detector, directory, shards=2)
        (directory / "shard-0001.pkl").write_bytes(b"garbage")
        with pytest.raises(IndexFormatError):
            load_index(directory)

    def test_corrupt_shard_lenient_skips(self, tmp_path, detector):
        directory = tmp_path / "index"
        manifest = save_index(detector, directory, shards=2)
        (directory / "shard-0001.pkl").write_bytes(b"garbage")
        partial = load_index(directory, strict=False)
        assert 0 < len(partial) < manifest["documents"]


class TestSimilarityBackendRoundtrip:
    def test_backend_recorded_and_restored(self, tmp_path, corpus):
        contracts, _ = corpus
        detector = CloneDetector(similarity_backend="exact")
        detector.add_corpus([(c.address, c.source) for c in contracts[:5]])
        manifest = save_index(detector, tmp_path / "index")
        assert manifest["configuration"]["similarity_backend"] == "exact"
        assert load_index(tmp_path / "index").similarity_backend == "exact"

    def test_default_backend_roundtrip(self, tmp_path, detector):
        manifest = save_index(detector, tmp_path / "index")
        assert manifest["configuration"]["similarity_backend"] == "bounded"
        assert load_index(tmp_path / "index").similarity_backend == "bounded"

    def test_legacy_manifest_without_backend_loads_with_default(self, tmp_path, detector):
        import json

        directory = tmp_path / "index"
        save_index(detector, directory)
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        del manifest["configuration"]["similarity_backend"]
        manifest_path.write_text(json.dumps(manifest))
        assert load_index(directory).similarity_backend == "bounded"

    def test_unregistered_backend_name_is_a_format_error(self, tmp_path, detector):
        import json

        directory = tmp_path / "index"
        save_index(detector, directory)
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["configuration"]["similarity_backend"] = "custom-unregistered"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(IndexFormatError, match="unloadable configuration"):
            load_index(directory)


class TestAppendToIndex:
    """Incremental persistence of newly indexed documents (the service path)."""

    def _fresh_copy(self, detector):
        copy = CloneDetector(similarity_threshold=detector.similarity_threshold)
        for document_id, fingerprint in detector.fingerprints.items():
            copy.add_fingerprint(document_id, fingerprint,
                                 grams=detector.index.grams_for(document_id))
        return copy

    def test_append_rewrites_only_affected_shards(self, detector, tmp_path):
        from repro.ccd.index_io import append_to_index

        live = self._fresh_copy(detector)
        save_index(live, tmp_path, shards=8)
        new_id = "0xfreshly-ingested"
        source = "contract Fresh { function f() public { msg.sender.transfer(1); } }"
        assert live.add_document(new_id, source)
        summary = append_to_index(live, tmp_path, [new_id])
        assert summary["appended"] == 1
        assert summary["shards_rewritten"] == 1  # one document -> one shard
        assert summary["manifest"]["documents"] == len(live)
        reloaded = load_index(tmp_path)
        assert new_id in reloaded.fingerprints
        assert len(reloaded) == len(live)
        assert reloaded.find_clones(source)[0].document_id == new_id

    def test_append_to_empty_directory_falls_back_to_save(self, detector, tmp_path):
        from repro.ccd.index_io import append_to_index

        live = self._fresh_copy(detector)
        summary = append_to_index(
            live, tmp_path / "fresh", live.fingerprints, shards=3)
        assert summary["appended"] == len(live)
        reloaded = load_index(tmp_path / "fresh")
        assert set(reloaded.fingerprints) == set(live.fingerprints)

    def test_reingesting_a_document_replaces_it(self, detector, tmp_path):
        from repro.ccd.index_io import append_to_index

        live = self._fresh_copy(detector)
        save_index(live, tmp_path, shards=2)
        victim = next(iter(live.fingerprints))
        replacement = "contract Replaced { function g() public {} }"
        assert live.add_document(victim, replacement)
        append_to_index(live, tmp_path, [victim])
        reloaded = load_index(tmp_path)
        assert len(reloaded) == len(live)  # replaced, not duplicated
        assert reloaded.fingerprints[victim].text == \
            live.fingerprints[victim].text

    def test_append_with_remove_ids_retires_documents(self, detector, tmp_path):
        from repro.ccd.index_io import append_to_index

        live = self._fresh_copy(detector)
        save_index(live, tmp_path, shards=4)
        victim = sorted(live.fingerprints)[0]
        live.remove_fingerprint(victim)
        summary = append_to_index(live, tmp_path, [], remove_ids=[victim])
        assert summary["appended"] == 0
        assert summary["manifest"]["documents"] == len(live)
        reloaded = load_index(tmp_path)
        assert victim not in reloaded.fingerprints
        assert set(reloaded.fingerprints) == set(live.fingerprints)


class TestIncrementalIndexState:
    """Source keys and function-granular accounting across persistence."""

    SOURCE = ("contract Keyed {\n"
              "    uint total;\n"
              "    function add(uint v) public { total += v; }\n"
              "    function get() public view returns (uint) { return total; }\n"
              "}\n")

    def test_source_keys_survive_roundtrip(self, tmp_path):
        from repro.core.artifacts import content_key

        live = CloneDetector(similarity_threshold=0.9)
        assert live.add_document("keyed", self.SOURCE)
        save_index(live, tmp_path, shards=2)
        reloaded = load_index(tmp_path)
        assert reloaded.source_keys["keyed"] == content_key(self.SOURCE)
        # ... which arms the no-op fast path across the save/load cycle:
        # re-ingesting identical bytes replaces nothing
        fingerprint = reloaded.fingerprints["keyed"]
        assert reloaded.add_document("keyed", self.SOURCE)
        assert reloaded.fingerprints["keyed"] is fingerprint

    def test_legacy_three_tuple_shards_load(self, tmp_path):
        import pickle

        live = CloneDetector(similarity_threshold=0.9)
        assert live.add_document("keyed", self.SOURCE)
        save_index(live, tmp_path, shards=1)
        # strip the source-key column, as an index written before it existed
        shard = tmp_path / "shard-0000.pkl"
        bucket = pickle.loads(shard.read_bytes())
        shard.write_bytes(pickle.dumps([entry[:3] for entry in bucket]))
        reloaded = load_index(tmp_path)
        assert reloaded.source_keys == {}  # unknown, never wrong
        assert "keyed" in reloaded.fingerprints

    def test_replacement_accounts_function_reuse(self):
        edited = self.SOURCE.replace("total += v;", "total += v + 1;")
        detector = CloneDetector(similarity_threshold=0.9)
        assert detector.add_document("keyed", self.SOURCE)
        assert detector.match_stats.functions_reused == 0
        assert detector.add_document("keyed", edited)
        # one of the two functions changed; the other's sub-fingerprints
        # carried over
        assert detector.match_stats.functions_reused >= 1
        assert detector.match_stats.functions_reanalyzed >= 1

    def test_noop_reingest_causes_zero_score_memo_invalidations(self, tmp_path):
        from repro.ccd.score_memo import ScoreMemoTable

        detector = CloneDetector(
            similarity_threshold=0.9,
            score_memo=ScoreMemoTable(tmp_path / "memo.sqlite"))
        assert detector.add_document("keyed", self.SOURCE)
        detector.find_clones(self.SOURCE)  # populate memo rows
        assert detector.add_document("keyed", self.SOURCE)  # identical bytes
        assert detector.score_memo.stats.invalidated == 0
