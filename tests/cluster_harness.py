"""Subprocess harness for cluster tests: real daemons, real kills.

The in-process fixtures of ``tests/test_service.py`` are great for
byte-parity assertions, but the durability claims of the cluster — a
worker killed mid-job, a coordinator killed mid-fan-out — only mean
something against *real* operating-system processes.  This module
spawns them: each daemon is ``python -m repro serve`` run as a
subprocess on an ephemeral port, scraped from the machine-readable
``PORT=<n>`` line the CLI prints on startup.

Used by ``tests/test_service_cluster.py`` and (via a ``sys.path``
insert) by the CI smoke driver ``tools/cluster_smoke.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: how long to wait for a spawned daemon to print its PORT line
SPAWN_TIMEOUT = 60.0

#: refused-connection retry budget of harness clients (rides out startup)
CLIENT_CONNECT_TIMEOUT = 10.0


def _daemon_environment() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


class DaemonProcess:
    """One spawned daemon subprocess (worker or coordinator)."""

    def __init__(self, process: subprocess.Popen, data_dir: Path,
                 role: str, argv: List[str]):
        self.process = process
        self.data_dir = Path(data_dir)
        self.role = role
        self.argv = argv
        self.port: Optional[int] = None
        self.stdout_lines: List[str] = []
        self._reader = threading.Thread(target=self._drain_stdout, daemon=True)
        self._port_seen = threading.Event()
        self._reader.start()

    def _drain_stdout(self) -> None:
        # keep draining for the process lifetime so the pipe never fills
        for line in self.process.stdout:
            line = line.rstrip("\n")
            self.stdout_lines.append(line)
            if line.startswith("PORT="):
                try:
                    self.port = int(line.split("=", 1)[1])
                except ValueError:
                    pass
                self._port_seen.set()
        self._port_seen.set()  # EOF: unblock waiters even on crash

    def wait_port(self, timeout: float = SPAWN_TIMEOUT) -> int:
        """Block until the daemon printed ``PORT=<n>``; returns the port."""
        self._port_seen.wait(timeout)
        if self.port is None:
            stderr = ""
            if self.process.poll() is not None and self.process.stderr:
                stderr = self.process.stderr.read()
            raise RuntimeError(
                f"daemon never printed PORT= (argv: {self.argv!r}, "
                f"stdout: {self.stdout_lines!r}, stderr: {stderr!r})")
        return self.port

    @property
    def url(self) -> str:
        """Base URL (requires the port to have been scraped)."""
        return f"http://127.0.0.1:{self.port}"

    def client(self, connect_timeout: float = CLIENT_CONNECT_TIMEOUT):
        """A :class:`ServiceClient` for this daemon, retrying refusals."""
        from repro.service import ServiceClient

        return ServiceClient(self.url, connect_timeout=connect_timeout)

    def alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the crash the durability tests simulate."""
        if self.alive():
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM and wait — the graceful shutdown path."""
        if self.alive():
            self.process.send_signal(signal.SIGTERM)
        self.process.wait(timeout=timeout)
        return self.process.returncode

    def close(self) -> None:
        """Ensure the process is gone and its pipes are closed."""
        try:
            self.kill()
        except Exception:  # noqa: BLE001 — teardown best-effort
            pass
        for stream in (self.process.stdout, self.process.stderr):
            if stream is not None:
                stream.close()


def spawn_daemon(data_dir, *, role: str = "worker", port: int = 0,
                 workers: Sequence[str] = (), backend: str = "serial",
                 extra: Sequence[str] = (),
                 timeout: float = SPAWN_TIMEOUT) -> DaemonProcess:
    """Spawn one ``repro serve`` subprocess and scrape its port."""
    argv = [sys.executable, "-m", "repro", "serve",
            "--data-dir", str(data_dir), "--port", str(port), "--role", role]
    if role == "coordinator":
        argv += ["--workers", ",".join(workers)]
    else:
        argv += ["--backend", backend]
    argv += list(extra)
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=_daemon_environment(), cwd=str(REPO_ROOT))
    daemon = DaemonProcess(process, Path(data_dir), role, argv)
    try:
        daemon.wait_port(timeout)
    except Exception:
        daemon.close()
        raise
    return daemon


class Cluster:
    """A coordinator plus N worker subprocesses, as one handle."""

    def __init__(self, coordinator: DaemonProcess,
                 workers: List[DaemonProcess], base_dir: Path,
                 coordinator_extra: Tuple[str, ...]):
        self.coordinator = coordinator
        self.workers = workers
        self.base_dir = Path(base_dir)
        self.coordinator_extra = coordinator_extra

    def client(self, connect_timeout: float = CLIENT_CONNECT_TIMEOUT):
        """A client for the coordinator."""
        return self.coordinator.client(connect_timeout)

    def worker_urls(self) -> List[str]:
        return [worker.url for worker in self.workers]

    def restart_worker(self, index: int, timeout: float = SPAWN_TIMEOUT) -> DaemonProcess:
        """Respawn one (killed) worker on its old port and data dir.

        Workers keep their port across restarts so the coordinator's
        configured URL stays valid — exactly like a production worker
        coming back on its stable address.
        """
        old = self.workers[index]
        daemon = spawn_daemon(old.data_dir, role="worker", port=old.port,
                              timeout=timeout)
        self.workers[index] = daemon
        old.close()
        return daemon

    def restart_coordinator(self, worker_urls: Optional[Sequence[str]] = None,
                            timeout: float = SPAWN_TIMEOUT) -> DaemonProcess:
        """Respawn the (killed) coordinator over its old data dir and port."""
        old = self.coordinator
        daemon = spawn_daemon(
            old.data_dir, role="coordinator", port=old.port,
            workers=worker_urls if worker_urls is not None else self.worker_urls(),
            extra=self.coordinator_extra, timeout=timeout)
        self.coordinator = daemon
        old.close()
        return daemon

    def add_worker(self, timeout: float = SPAWN_TIMEOUT) -> DaemonProcess:
        """Spawn one more worker subprocess (not yet known to the ring)."""
        daemon = spawn_daemon(
            self.base_dir / f"worker-{len(self.workers)}", role="worker",
            timeout=timeout)
        self.workers.append(daemon)
        return daemon

    def stop(self) -> None:
        """Tear every process down (best-effort, coordinator first)."""
        for daemon in [self.coordinator] + self.workers:
            daemon.close()


def spawn_cluster(base_dir, n: int, *,
                  coordinator_extra: Sequence[str] = (),
                  worker_extra: Sequence[str] = (),
                  timeout: float = SPAWN_TIMEOUT) -> Cluster:
    """Spawn N workers plus a coordinator fronting them, all ready."""
    base_dir = Path(base_dir)
    workers = []
    try:
        for index in range(n):
            workers.append(spawn_daemon(
                base_dir / f"worker-{index}", role="worker",
                extra=worker_extra, timeout=timeout))
        coordinator = spawn_daemon(
            base_dir / "coordinator", role="coordinator",
            workers=[worker.url for worker in workers],
            extra=coordinator_extra, timeout=timeout)
    except Exception:
        for worker in workers:
            worker.close()
        raise
    cluster = Cluster(coordinator, workers, base_dir,
                      tuple(coordinator_extra))
    cluster.client().wait_ready(timeout)
    return cluster
