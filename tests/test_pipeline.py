"""Tests for the measurement pipeline stages (collection, mapping, temporal,
correlation, validation) and the end-to-end study."""

from datetime import date, timedelta

import pytest

from repro.ccc.dasp import DaspCategory
from repro.datasets.corpus import DeployedContract, Snippet
from repro.pipeline import (
    ContractValidator,
    SnippetCollector,
    StudyConfiguration,
    VulnerableCodeReuseStudy,
    categorize_pairs,
    correlate_views_with_adoption,
    map_snippets_to_contracts,
)
from repro.pipeline.clone_mapping import CloneMapping
from repro.pipeline.collection import canonical_text
from repro.pipeline.report import render_percentage, render_table


def make_snippet(snippet_id, text, created=date(2021, 1, 1), views=1000, site="stackoverflow"):
    return Snippet(snippet_id=snippet_id, post_id=f"p-{snippet_id}", site=site,
                   text=text, created=created, views=views)


def make_contract(address, source, deployed=date(2022, 1, 1)):
    return DeployedContract(address=address, source=source, deployed=deployed,
                            compiler_version="v0.4.24")


VULNERABLE_FUNCTION = """
function withdraw(uint amount) public {
    require(balances[msg.sender] >= amount);
    msg.sender.call.value(amount)();
    balances[msg.sender] -= amount;
}
"""

EMBEDDING_CONTRACT = """
pragma solidity ^0.4.24;
contract Bank {
    mapping(address => uint) balances;
    function deposit() public payable { balances[msg.sender] += msg.value; }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

UNRELATED_CONTRACT = """
pragma solidity ^0.8.0;
contract Counter {
    uint public count;
    function increment() public { count += 1; }
    function decrement() public { count -= 1; }
}
"""


class TestCollection:
    def test_funnel_counts(self, small_qa_corpus):
        result = SnippetCollector().collect(small_qa_corpus)
        total = result.total_funnel
        assert total.snippets >= total.solidity >= total.parsable >= total.unique > 0

    def test_javascript_mostly_filtered(self, small_qa_corpus):
        collected = SnippetCollector().collect(small_qa_corpus).snippets
        javascript = [s for s in collected if s.ground_truth_language == "javascript"]
        total_javascript = [s for s in small_qa_corpus.snippets
                            if s.ground_truth_language == "javascript"]
        # the keyword + parsability filters remove the overwhelming majority of
        # mis-tagged JavaScript snippets (the filter is keyword-based and thus
        # not perfect, as in the paper)
        assert len(javascript) <= max(1, 0.15 * len(total_javascript))

    def test_duplicates_removed(self, small_qa_corpus):
        result = SnippetCollector().collect(small_qa_corpus)
        canonicals = [canonical_text(snippet.text) for snippet in result.snippets]
        assert len(canonicals) == len(set(canonicals))

    def test_per_site_funnels(self, small_qa_corpus):
        result = SnippetCollector().collect(small_qa_corpus)
        assert set(result.funnels) == {"stackoverflow", "ethereum.stackexchange"}

    def test_shape_distribution_covers_paper_shapes(self, small_qa_corpus):
        result = SnippetCollector().collect(small_qa_corpus)
        assert set(result.shape_distribution) <= {"contract", "function", "statements"}
        assert sum(result.shape_distribution.values()) == len(result.snippets)

    def test_line_statistics(self, small_qa_corpus):
        result = SnippetCollector().collect(small_qa_corpus)
        stats = result.line_statistics
        assert stats["min"] <= stats["median"] <= stats["max"]

    def test_canonical_text_ignores_comments_and_whitespace(self):
        first = "function f() {\n  // comment\n  x = 1;\n}"
        second = "function f() { x = 1; }"
        assert canonical_text(first) == canonical_text(second)


class TestCloneMapping:
    def test_snippet_mapped_to_embedding_contract(self):
        snippets = [make_snippet("s1", VULNERABLE_FUNCTION)]
        contracts = [make_contract("0xaaa", EMBEDDING_CONTRACT),
                     make_contract("0xbbb", UNRELATED_CONTRACT)]
        mapping = map_snippets_to_contracts(snippets, contracts, similarity_threshold=0.8)
        assert mapping.contracts_for("s1") == ["0xaaa"]
        assert mapping.total_pairs == 1

    def test_unparsable_snippet_counted(self):
        snippets = [make_snippet("s1", "not solidity at all, plain words only")]
        mapping = map_snippets_to_contracts(snippets, [make_contract("0xaaa", EMBEDDING_CONTRACT)])
        assert mapping.unparsable_snippets == 1
        assert mapping.contracts_for("s1") == []

    def test_snippets_with_clones(self):
        snippets = [make_snippet("s1", VULNERABLE_FUNCTION),
                    make_snippet("s2", "function ping() public { counter += 1; }")]
        contracts = [make_contract("0xaaa", EMBEDDING_CONTRACT)]
        mapping = map_snippets_to_contracts(snippets, contracts, similarity_threshold=0.8)
        assert mapping.snippets_with_clones() == ["s1"]


class TestTemporalCategories:
    def build(self, snippet_date, contract_dates):
        snippet = make_snippet("s1", VULNERABLE_FUNCTION, created=snippet_date)
        contracts = [make_contract(f"0x{i}", EMBEDDING_CONTRACT, deployed=deployed)
                     for i, deployed in enumerate(contract_dates)]
        mapping = CloneMapping(matches={"s1": [(c.address, 95.0) for c in contracts]})
        return categorize_pairs([snippet], contracts, mapping)

    def test_all_later_contracts_make_source_snippet(self):
        categories = self.build(date(2020, 1, 1), [date(2021, 1, 1), date(2022, 1, 1)])
        assert "s1" in categories.source and "s1" in categories.disseminator

    def test_mixed_dates_make_disseminator_only(self):
        categories = self.build(date(2020, 1, 1), [date(2019, 1, 1), date(2021, 1, 1)])
        assert "s1" in categories.disseminator and "s1" not in categories.source
        # only the later contract is counted for the disseminator group
        assert len(categories.disseminator["s1"]) == 1

    def test_only_earlier_contracts_not_disseminator(self):
        categories = self.build(date(2020, 1, 1), [date(2018, 1, 1)])
        assert "s1" in categories.all_snippets
        assert "s1" not in categories.disseminator

    def test_summary_counts(self):
        categories = self.build(date(2020, 1, 1), [date(2021, 1, 1)])
        summary = categories.summary()
        assert summary["all_snippets"] == 1 and summary["source_contracts"] == 1


class TestCorrelation:
    def test_correlation_structure(self, small_qa_corpus, small_sanctuary):
        collector = SnippetCollector().collect(small_qa_corpus)
        mapping = map_snippets_to_contracts(collector.snippets, small_sanctuary.contracts,
                                            similarity_threshold=0.9)
        categories = categorize_pairs(collector.snippets, small_sanctuary.contracts, mapping)
        results = correlate_views_with_adoption(collector.snippets, small_sanctuary.contracts, categories)
        assert [result.category for result in results] == ["All Snippets", "Disseminator", "Source"]
        for result in results:
            assert -1.0 <= result.rho <= 1.0
            assert result.sample_size >= 0

    def test_views_drive_adoption_synthetic(self):
        # hand-built: views and adoption perfectly rank-correlated
        snippets = []
        contracts = []
        matches = {}
        for index in range(12):
            snippet = make_snippet(f"s{index}", VULNERABLE_FUNCTION, views=100 * (index + 1))
            snippets.append(snippet)
            addresses = []
            for copy_index in range(index + 1):
                address = f"0x{index}_{copy_index}"
                contracts.append(make_contract(
                    address, EMBEDDING_CONTRACT + f"\n// variant {index} {copy_index}\ncontract V{index}_{copy_index} {{ uint x{copy_index}; }}"))
                addresses.append(address)
            matches[snippet.snippet_id] = [(a, 95.0) for a in addresses]
        mapping = CloneMapping(matches=matches)
        categories = categorize_pairs(snippets, contracts, mapping)
        results = correlate_views_with_adoption(snippets, contracts, categories)
        all_result = results[0]
        assert all_result.rho > 0.9 and all_result.p_value < 0.01


class TestValidator:
    def test_vulnerable_contract_confirmed(self):
        validator = ContractValidator(timeout_seconds=20)
        outcome = validator.validate("0xaaa", EMBEDDING_CONTRACT, "s1",
                                     ["reentrancy-call-before-write"])
        assert outcome.vulnerable and outcome.phase == 1

    def test_mitigated_contract_not_confirmed(self):
        mitigated = EMBEDDING_CONTRACT.replace(
            "msg.sender.call.value(amount)();\n        balances[msg.sender] -= amount;",
            "balances[msg.sender] -= amount;\n        msg.sender.transfer(amount);")
        validator = ContractValidator(timeout_seconds=20)
        outcome = validator.validate("0xaaa", mitigated, "s1", ["reentrancy-call-before-write"])
        assert not outcome.vulnerable

    def test_only_requested_queries_checked(self):
        validator = ContractValidator(timeout_seconds=20)
        outcome = validator.validate("0xaaa", EMBEDDING_CONTRACT, "s1",
                                     ["access-control-selfdestruct"])
        assert not outcome.vulnerable

    def test_unparsable_contract_reports_error(self):
        validator = ContractValidator(timeout_seconds=20)
        outcome = validator.validate("0xbad", "completely unrelated text with no code", "s1",
                                     ["reentrancy-call-before-write"])
        assert outcome.analysis_error is not None and not outcome.vulnerable

    def test_phase2_path_reduction_on_timeout(self):
        validator = ContractValidator(timeout_seconds=0.0, reduced_flow_depths=(8,))
        validator.checker.timeout = None
        outcome = validator.validate("0xaaa", EMBEDDING_CONTRACT, "s1",
                                     ["reentrancy-call-before-write"])
        # with a zero-second phase-1 budget the validator falls back to phase 2
        assert outcome.phase == 2 or outcome.timed_out


class TestStudy:
    @pytest.fixture(scope="class")
    def study_result(self, small_qa_corpus, small_sanctuary):
        configuration = StudyConfiguration(validation_timeout_seconds=15,
                                           snippet_analysis_timeout_seconds=15)
        study = VulnerableCodeReuseStudy(configuration)
        return study.run(small_qa_corpus, small_sanctuary.contracts)

    def test_funnel_is_monotonic(self, study_result):
        funnel = study_result.funnel()
        assert funnel["unique_snippets"] >= funnel["vulnerable_snippets"]
        assert funnel["vulnerable_snippets"] >= funnel["vulnerable_snippets_in_contracts"]
        assert funnel["vulnerable_snippets_in_contracts"] >= funnel["disseminator_snippets"]
        assert funnel["disseminator_snippets"] >= funnel["source_snippets"]

    def test_some_vulnerable_snippets_found(self, study_result):
        assert study_result.vulnerable_snippets

    def test_validation_ran(self, study_result):
        assert study_result.validation.attempted > 0
        assert study_result.validation.vulnerable <= study_result.validation.attempted

    def test_dasp_distribution_totals(self, study_result):
        distribution = study_result.dasp_distribution()
        assert sum(row["snippets"] for row in distribution.values()) > 0

    def test_correlations_present(self, study_result):
        assert len(study_result.correlations) == 3


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[2]

    def test_render_percentage(self):
        assert render_percentage(0.923) == "92.3%"
