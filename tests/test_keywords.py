"""Tests for the Solidity/JavaScript keyword filter (Section 6.1)."""

import pytest

from repro.solidity.keywords import (
    JAVASCRIPT_KEYWORDS,
    SOLIDITY_KEYWORDS,
    UNIQUE_SOLIDITY_KEYWORDS,
    extract_words,
    looks_like_solidity,
    solidity_keyword_hits,
)


class TestKeywordSets:
    def test_unique_keywords_exclude_javascript_words(self):
        assert UNIQUE_SOLIDITY_KEYWORDS.isdisjoint({k.lower() for k in JAVASCRIPT_KEYWORDS})

    def test_unique_keywords_are_subset_of_solidity(self):
        assert UNIQUE_SOLIDITY_KEYWORDS <= SOLIDITY_KEYWORDS

    def test_core_solidity_words_are_unique(self):
        for word in ("pragma", "mapping", "payable", "msg", "wei", "selfdestruct"):
            assert word in UNIQUE_SOLIDITY_KEYWORDS

    def test_shared_words_are_not_unique(self):
        for word in ("function", "return", "if", "public", "var"):
            assert word not in UNIQUE_SOLIDITY_KEYWORDS


class TestFilter:
    def test_solidity_contract_is_accepted(self):
        assert looks_like_solidity("pragma solidity ^0.8.0; contract C {}")

    def test_solidity_function_snippet_is_accepted(self):
        assert looks_like_solidity("function f() public payable { msg.sender.transfer(1 ether); }")

    def test_javascript_is_rejected(self, javascript_snippet):
        assert not looks_like_solidity(javascript_snippet)

    def test_plain_prose_is_rejected(self, prose_snippet):
        assert not looks_like_solidity(prose_snippet)

    def test_empty_text_is_rejected(self):
        assert not looks_like_solidity("")
        assert not looks_like_solidity("   \n  ")

    def test_min_keyword_threshold(self):
        text = "the payable keyword makes a function accept ether"
        assert looks_like_solidity(text, min_unique_keywords=1)
        assert not looks_like_solidity(text, min_unique_keywords=5)

    def test_extract_words(self):
        assert extract_words("msg.sender.transfer(amount);") == {"msg", "sender", "transfer", "amount"}

    def test_keyword_hits(self):
        hits = solidity_keyword_hits("require(msg.sender == owner); selfdestruct(owner);")
        assert "selfdestruct" in hits and "msg" in hits

    @pytest.mark.parametrize("text,expected", [
        ("uint256 balance = address(this).balance;", True),
        ("console.log('hello world');", False),
        ("emit Transfer(from, to, value);", True),
        ("SELECT * FROM users WHERE id = 1;", False),
    ])
    def test_mixed_cases(self, text, expected):
        assert looks_like_solidity(text) is expected
