"""Tests for snippet mode: the grammar modifications of Section 4.1."""

import pytest

from repro.solidity import ast_nodes as ast
from repro.solidity.errors import SolidityParseError
from repro.solidity.parser import parse_snippet


class TestHierarchyUnnesting:
    def test_free_function(self):
        unit = parse_snippet("function f(uint a) public { return a; }")
        assert unit.shape == "function"
        assert unit.free_functions()[0].name == "f"

    def test_free_statements(self):
        unit = parse_snippet("msg.sender.transfer(amount);\nbalances[msg.sender] = 0;")
        assert unit.shape == "statements"
        assert len(unit.free_statements()) == 2

    def test_free_state_variable(self):
        unit = parse_snippet("mapping(address => uint) balances;")
        assert unit.items and isinstance(unit.items[0], ast.StateVariableDeclaration)

    def test_free_modifier(self):
        unit = parse_snippet("modifier onlyOwner() { require(msg.sender == owner); _; }")
        assert any(isinstance(item, ast.ModifierDefinition) for item in unit.items)

    def test_free_event(self):
        unit = parse_snippet("event Transfer(address from, address to, uint value);")
        assert any(isinstance(item, ast.EventDefinition) for item in unit.items)

    def test_contract_shape_takes_priority(self):
        unit = parse_snippet("contract C { uint x; }\nfunction g() public {}")
        assert unit.shape == "contract"

    def test_mixed_function_and_statements(self):
        unit = parse_snippet("owner = msg.sender;\nfunction f() public { return 1; }")
        assert unit.free_functions() and unit.free_statements()


class TestStatementTermination:
    def test_missing_semicolons_at_newlines(self):
        unit = parse_snippet("uint a = 1\nuint b = 2\na = a + b")
        assert len(unit.items) == 3

    def test_missing_semicolon_in_function_body(self):
        unit = parse_snippet("function f() {\n  owner = msg.sender\n  total += 1\n}")
        body = unit.free_functions()[0].body
        assert len(body.statements) == 2

    def test_missing_semicolon_before_closing_brace(self):
        unit = parse_snippet("function f() { owner = msg.sender }")
        assert unit.free_functions()[0].body.statements


class TestPlaceholders:
    def test_ellipsis_between_statements(self):
        unit = parse_snippet("uint a = 1;\n...\nuint b = 2;")
        assert len(unit.items) == 2
        assert not unit.warnings

    def test_ellipsis_inside_contract(self):
        unit = parse_snippet("contract C {\n  uint x;\n  ...\n  function f() public {}\n}")
        contract = unit.contracts()[0]
        assert contract.state_variables() and contract.functions()

    def test_ellipsis_inside_function_body(self):
        unit = parse_snippet("function f() {\n  require(msg.sender == owner);\n  ...\n}")
        assert unit.free_functions()[0].body is not None


class TestErrorRecoveryAndRejection:
    def test_prose_is_rejected(self, prose_snippet):
        with pytest.raises(SolidityParseError):
            parse_snippet(prose_snippet)

    def test_empty_input_is_rejected(self):
        with pytest.raises(SolidityParseError):
            parse_snippet("")

    def test_solidity_with_a_little_noise_is_accepted(self):
        unit = parse_snippet(
            "function withdraw(uint amount) public {\n"
            "    require(balances[msg.sender] >= amount);\n"
            "    msg.sender.transfer(amount);\n"
            "}\n"
            "Hope this helps!")
        assert unit.free_functions()
        assert unit.warnings  # the trailing prose produced a warning

    def test_unbalanced_braces_recovered(self):
        unit = parse_snippet("function f() {\n  owner = msg.sender;\n")
        assert unit.free_functions()[0].body is not None

    def test_snippet_mode_flag_recorded(self):
        assert parse_snippet("uint x = 1;").snippet_mode is True

    def test_warning_objects_have_location(self):
        unit = parse_snippet("function f() { owner = msg.sender; }\n???;")
        if unit.warnings:
            assert unit.warnings[0].line >= 1


class TestRealWorldShapedSnippets:
    def test_withdraw_snippet(self, reentrancy_snippet):
        unit = parse_snippet(reentrancy_snippet)
        function = unit.free_functions()[0]
        assert function.name == "withdraw"
        assert len(function.body.statements) == 3

    def test_statement_snippet(self, statement_snippet):
        unit = parse_snippet(statement_snippet)
        assert unit.shape == "statements"

    def test_interface_snippet(self):
        unit = parse_snippet(
            "interface IERC20 {\n"
            "    function totalSupply() external view returns (uint256);\n"
            "    function transfer(address to, uint256 amount) external returns (bool);\n"
            "}")
        assert unit.contracts()[0].kind == "interface"

    def test_snippet_with_pragma_only_line(self):
        unit = parse_snippet("pragma solidity ^0.8.0;\nuint x = 1;")
        assert any(isinstance(item, ast.PragmaDirective) for item in unit.items)

    def test_full_wallet_contract(self, vulnerable_wallet_source):
        unit = parse_snippet(vulnerable_wallet_source)
        contract = unit.contracts()[0]
        assert {f.name for f in contract.functions() if f.name} >= {"deposit", "withdraw", "kill"}
        assert contract.modifiers()
