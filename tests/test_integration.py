"""End-to-end integration tests combining CCC, CCD and the pipeline."""

import pytest

from repro.ccc import ContractChecker, DaspCategory
from repro.ccd import CloneDetector
from repro.datasets.templates import generate_vulnerable
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy


class TestSnippetToContractFlow:
    """The core scenario of the paper on a hand-built example."""

    SNIPPET = """
function withdraw(uint amount) public {
    require(balances[msg.sender] >= amount);
    msg.sender.call.value(amount)();
    balances[msg.sender] -= amount;
}
"""

    DEPLOYED = """
pragma solidity ^0.4.24;

contract EtherBank {
    mapping(address => uint) balances;
    address operator;

    function EtherBank() public { operator = msg.sender; }

    function deposit() public payable {
        balances[msg.sender] += msg.value;
    }

    // copied from a Q&A answer
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

    FIXED_DEPLOYED = DEPLOYED.replace(
        "msg.sender.call.value(amount)();\n        balances[msg.sender] -= amount;",
        "balances[msg.sender] -= amount;\n        msg.sender.transfer(amount);")

    def test_snippet_is_flagged_vulnerable(self, checker):
        result = checker.analyze(self.SNIPPET)
        assert DaspCategory.REENTRANCY in result.categories()

    def test_clone_detection_maps_snippet_to_deployment(self):
        detector = CloneDetector(similarity_threshold=0.9)
        detector.add_corpus([("vulnerable", self.DEPLOYED), ("fixed", self.FIXED_DEPLOYED)])
        matches = detector.find_clones(self.SNIPPET)
        assert any(match.document_id == "vulnerable" for match in matches)

    def test_validation_confirms_only_unmitigated_contract(self, checker):
        vulnerable = checker.analyze(self.DEPLOYED, categories=[DaspCategory.REENTRANCY])
        fixed = checker.analyze(self.FIXED_DEPLOYED, categories=[DaspCategory.REENTRANCY])
        assert vulnerable.findings and not fixed.findings

    def test_finding_location_points_into_withdraw(self, checker):
        result = checker.analyze(self.DEPLOYED, categories=[DaspCategory.REENTRANCY])
        assert any(finding.function_name == "withdraw" for finding in result.findings)
        assert any(finding.contract_name == "EtherBank" for finding in result.findings)


class TestTemplateRoundTrip:
    @pytest.mark.parametrize("category", [
        DaspCategory.REENTRANCY,
        DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
        DaspCategory.TIME_MANIPULATION,
    ])
    def test_snippet_detected_and_found_in_contract(self, category, checker):
        import random

        instance = generate_vulnerable(random.Random(17), category)
        snippet_result = checker.analyze(instance.function_snippet)
        assert category in snippet_result.categories()

        detector = CloneDetector(similarity_threshold=0.8)
        detector.add_document("deployed", instance.contract_source)
        assert detector.find_clones(instance.function_snippet)

        contract_result = checker.analyze(
            instance.contract_source, query_ids=sorted(snippet_result.query_ids()))
        assert contract_result.findings


class TestStudySmoke:
    def test_study_on_tiny_corpus(self, small_qa_corpus, small_sanctuary):
        study = VulnerableCodeReuseStudy(StudyConfiguration(
            validation_timeout_seconds=10, snippet_analysis_timeout_seconds=10))
        result = study.run(small_qa_corpus, small_sanctuary.contracts)
        funnel = result.funnel()
        # the qualitative claim of the paper: some vulnerable snippets are
        # found inside deployed contracts and survive validation
        assert funnel["vulnerable_snippets"] > 0
        assert funnel["vulnerable_contracts"] >= 0
        assert funnel["validated_contracts"] <= funnel["unique_candidate_contracts"] + funnel["candidate_contracts"]
