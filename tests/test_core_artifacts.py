"""Tests for the parse-once artifact store (repro.core.artifacts)."""

from __future__ import annotations

import threading

import pytest

from repro.ccd.fingerprint import FingerprintGenerator
from repro.ccd.ngram_index import ngrams
from repro.core.artifacts import (
    ArtifactStore,
    ArtifactStoreSpec,
    content_key,
    process_local_store,
)
from repro.solidity.errors import SolidityParseError

WALLET = """
contract Wallet {
    mapping(address => uint) balances;
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

TOKEN = """
contract Token {
    mapping(address => uint) balances;
    function transfer(address to, uint value) public {
        balances[msg.sender] -= value;
        balances[to] += value;
    }
}
"""

GARBAGE = "this is prose, definitely not solidity === ;;; <<<>>>"


class TestContentKey:
    def test_identical_sources_share_a_key(self):
        assert content_key(WALLET) == content_key(str(WALLET))

    def test_distinct_sources_get_distinct_keys(self):
        assert content_key(WALLET) != content_key(TOKEN)
        # content hashing is exact: whitespace variants are different entries
        assert content_key(WALLET) != content_key(WALLET + " ")


class TestCacheBehaviour:
    def test_hit_miss_counting_and_identity(self):
        store = ArtifactStore()
        first = store.get(WALLET)
        again = store.get(WALLET)
        assert first is again
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.hit_rate == 0.5
        # equal content in a distinct str object still hits
        assert store.get("".join(WALLET)) is first
        assert store.stats.hits == 2

    def test_parse_happens_at_most_once(self):
        store = ArtifactStore()
        artifact = store.get(WALLET)
        unit = artifact.unit
        assert artifact.unit is unit
        assert store.stats.parse_calls == 1
        # the fingerprint and CPG derive from the cached AST — no re-parse
        fingerprint = artifact.fingerprint
        graph = artifact.graph
        assert store.stats.parse_calls == 1
        assert store.stats.fingerprint_builds == 1
        assert store.stats.cpg_builds == 1
        assert artifact.fingerprint is fingerprint
        assert artifact.graph is graph
        assert store.stats.fingerprint_builds == 1
        assert store.stats.cpg_builds == 1

    def test_fingerprint_matches_direct_generation(self):
        store = ArtifactStore()
        artifact = store.get(WALLET)
        direct = FingerprintGenerator().from_source(WALLET)
        assert artifact.fingerprint.text == direct.text
        assert artifact.fingerprint.contracts == direct.contracts

    def test_ngrams_match_fingerprint_text(self):
        store = ArtifactStore(ngram_size=3)
        artifact = store.get(WALLET)
        assert artifact.ngrams == frozenset(ngrams(artifact.fingerprint.text, 3))

    def test_parse_failures_are_cached(self):
        store = ArtifactStore()
        artifact = store.get(GARBAGE)
        with pytest.raises(SolidityParseError):
            artifact.unit
        with pytest.raises(SolidityParseError):
            artifact.unit
        assert store.stats.parse_calls == 1
        assert artifact.try_unit() is None
        assert not artifact.parse_ok
        assert artifact.parse_error
        with pytest.raises(SolidityParseError):
            artifact.fingerprint
        with pytest.raises(SolidityParseError):
            artifact.graph
        assert store.stats.parse_calls == 1

    def test_thread_safety_single_parse(self):
        store = ArtifactStore()
        artifact = store.get(WALLET)
        barrier = threading.Barrier(8)

        def materialize():
            barrier.wait()
            artifact.unit
            artifact.fingerprint

        threads = [threading.Thread(target=materialize) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats.parse_calls == 1
        assert store.stats.fingerprint_builds == 1


class TestLRUEviction:
    def test_least_recently_used_is_evicted_first(self):
        store = ArtifactStore(max_entries=2)
        store.get(WALLET)
        store.get(TOKEN)
        # touch WALLET so TOKEN becomes least recently used
        store.get(WALLET)
        store.get(GARBAGE)
        assert store.stats.evictions == 1
        assert len(store) == 2
        assert WALLET in store
        assert GARBAGE in store
        assert TOKEN not in store
        # re-requesting the evicted entry is a miss again
        misses = store.stats.misses
        store.get(TOKEN)
        assert store.stats.misses == misses + 1

    def test_evicted_artifacts_stay_usable(self):
        store = ArtifactStore(max_entries=1)
        wallet = store.get(WALLET)
        store.get(TOKEN)
        assert WALLET not in store
        assert wallet.fingerprint.text  # still materializes after eviction

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)


class TestSpec:
    def test_spec_roundtrip(self):
        store = ArtifactStore(max_entries=7, ngram_size=5,
                              fingerprint_block_size=3, fingerprint_window=6)
        spec = store.spec
        rebuilt = spec.build()
        assert rebuilt.max_entries == 7
        assert rebuilt.ngram_size == 5
        assert rebuilt.generator.hasher.block_size == 3
        assert rebuilt.generator.hasher.window == 6

    def test_process_local_store_is_cached_per_spec(self):
        spec = ArtifactStoreSpec(ngram_size=5)
        assert process_local_store(spec) is process_local_store(ArtifactStoreSpec(ngram_size=5))
        assert process_local_store(spec) is not process_local_store(ArtifactStoreSpec(ngram_size=7))
