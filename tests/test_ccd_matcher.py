"""Tests for the staged clone-matching engine (repro.ccd.matcher).

The central property is **backend parity**: the ``bounded`` and
``myers`` backends must return :class:`CloneMatch` lists byte-identical
(ids *and* float scores) to the ``exact`` backend — and all must agree
with a naive re-derivation of the seed semantics (count-every-posting
candidates + Algorithm 1) — across randomized fingerprint corpora and
η/ε grids, including unicode and >64-character sub-fingerprints (the
multi-word big-int path of the bit-parallel kernel).
"""

import random
from collections import defaultdict

import pytest

from repro.ccd.detector import CloneDetector
from repro.ccd.fingerprint import Fingerprint
from repro.ccd.fuzzyhash import BASE64_ALPHABET
from repro.ccd.matcher import (
    DEFAULT_SIMILARITY_BACKEND,
    SIMILARITY_BACKENDS,
    BoundedSimilarityBackend,
    CloneMatch,
    ExactSimilarityBackend,
    MatchPipeline,
    MatchStats,
    MyersSimilarityBackend,
    resolve_similarity_backend,
)
from repro.ccd.ngram_index import NGramIndex, ngrams
from repro.ccd.similarity import order_independent_similarity

PRUNED_BACKENDS = ("bounded", "myers")

ETA_GRID = (0.0, 0.2, 0.5, 0.8, 1.0)
EPSILON_GRID = (0.0, 30.0, 50.0, 70.0, 90.0, 100.0)


# ---------------------------------------------------------------------------
# randomized fingerprint corpora (seeded, stdlib only)
# ---------------------------------------------------------------------------

def random_sub(rng, low=1, high=40):
    return "".join(rng.choice(BASE64_ALPHABET) for _ in range(rng.randint(low, high)))


def mutate(rng, sub, max_edits=3):
    sub = list(sub)
    for _ in range(rng.randint(0, max_edits)):
        position = rng.randrange(len(sub)) if sub else 0
        operation = rng.random()
        if operation < 0.4 and sub:
            sub[position] = rng.choice(BASE64_ALPHABET)
        elif operation < 0.7 and sub:
            del sub[position]
        else:
            sub.insert(position, rng.choice(BASE64_ALPHABET))
    return "".join(sub)


def random_corpus(rng, documents=50):
    """Fingerprints with heavy sub-fingerprint reuse (clone-rich)."""
    pool = [random_sub(rng) for _ in range(15)]
    fingerprints = {}
    for index in range(documents):
        subs = []
        for _ in range(rng.randint(0, 6)):
            if rng.random() < 0.7:
                subs.append(mutate(rng, rng.choice(pool)))
            else:
                subs.append(random_sub(rng, 0, 25))  # may be empty
        fingerprints[f"doc{index}"] = Fingerprint.parse(".".join(subs))
    return pool, fingerprints


def random_queries(rng, pool, fingerprints):
    queries = [
        Fingerprint.parse(".".join(
            mutate(rng, rng.choice(pool)) for _ in range(rng.randint(1, 4))))
        for _ in range(6)
    ]
    queries.append(Fingerprint.parse(""))    # empty fingerprint
    queries.append(Fingerprint.parse("ab"))  # shorter than N: whole-text gram
    queries.append(rng.choice(list(fingerprints.values())))  # exact document
    return queries


def build_index(fingerprints, ngram_size=3):
    index = NGramIndex(ngram_size=ngram_size)
    for document_id, fingerprint in fingerprints.items():
        index.add(document_id, fingerprint.text)
    return index


def seed_semantics_matches(fingerprints, query, eta, epsilon, ngram_size=3):
    """The pre-refactor behaviour, re-derived naively and independently."""
    query_grams = ngrams(query.text, ngram_size)
    matches = []
    if query_grams:
        counts = defaultdict(int)
        for document_id, fingerprint in fingerprints.items():
            document_grams = ngrams(fingerprint.text, ngram_size)
            for gram in query_grams:
                if gram in document_grams:
                    counts[document_id] += 1
        required = eta * len(query_grams)
        for document_id, count in counts.items():
            if count >= required:
                score = order_independent_similarity(query, fingerprints[document_id])
                if score >= epsilon:
                    matches.append(CloneMatch(document_id=document_id, similarity=score))
    matches.sort(key=lambda match: (-match.similarity, str(match.document_id)))
    return matches


# ---------------------------------------------------------------------------
# parity
# ---------------------------------------------------------------------------

class TestBackendParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_bounded_equals_exact_equals_seed_semantics(self, seed):
        rng = random.Random(seed)
        pool, fingerprints = random_corpus(rng)
        index = build_index(fingerprints)
        exact = MatchPipeline(index, fingerprints, backend="exact")
        pruned = {backend: MatchPipeline(index, fingerprints, backend=backend)
                  for backend in PRUNED_BACKENDS}
        for query in random_queries(rng, pool, fingerprints):
            for eta in ETA_GRID:
                for epsilon in EPSILON_GRID:
                    exact_matches = exact.match(query, eta, epsilon)
                    for backend, pipeline in pruned.items():
                        assert pipeline.match(query, eta, epsilon) == exact_matches, \
                            f"{backend} mismatch at eta={eta} epsilon={epsilon}"
                    # not approx: scores must be byte-identical floats
                    assert exact_matches == seed_semantics_matches(
                        fingerprints, query, eta, epsilon), \
                        f"seed-semantics mismatch at eta={eta} epsilon={epsilon}"

    def test_parity_on_larger_ngram_size(self):
        rng = random.Random(99)
        pool, fingerprints = random_corpus(rng, documents=30)
        index = build_index(fingerprints, ngram_size=5)
        exact = MatchPipeline(index, fingerprints, backend="exact")
        pruned = {backend: MatchPipeline(index, fingerprints, backend=backend)
                  for backend in PRUNED_BACKENDS}
        for query in random_queries(rng, pool, fingerprints):
            for epsilon in EPSILON_GRID:
                exact_matches = exact.match(query, 0.5, epsilon)
                for pipeline in pruned.values():
                    assert pipeline.match(query, 0.5, epsilon) == exact_matches

    def test_detector_level_parity(self):
        sources = {
            "wallet": "contract W { function w(uint a) { msg.sender.transfer(a); } }",
            "guarded": """
contract G {
    address owner;
    function w(uint a) { require(msg.sender == owner); msg.sender.transfer(a); }
}
""",
            "token": """
contract T {
    mapping(address => uint) b;
    function mint(address t, uint v) public { b[t] += v; }
    function burn(address f, uint v) public { b[f] -= v; }
}
""",
        }
        detectors = {}
        for backend in ("exact",) + PRUNED_BACKENDS:
            detector = CloneDetector(
                ngram_threshold=0.3, similarity_threshold=0.5,
                similarity_backend=backend)
            detector.add_corpus(sources.items())
            detectors[backend] = detector
        query = "function send(uint v) { msg.sender.transfer(v); }"
        for epsilon in (0.3, 0.5, 0.7, 0.95):
            expected = detectors["exact"].find_clones(
                query, similarity_threshold=epsilon)
            for backend in PRUNED_BACKENDS:
                assert detectors[backend].find_clones(
                    query, similarity_threshold=epsilon) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_on_long_sub_fingerprints(self, seed):
        # sub-fingerprints well past 64 characters: the bit-parallel
        # kernel's bitvectors span multiple machine words (Python big
        # ints), a path the short base64 corpora never reach
        rng = random.Random(1000 + seed)
        pool = [random_sub(rng, low=70, high=160) for _ in range(8)]
        fingerprints = {
            f"doc{index}": Fingerprint.parse(".".join(
                mutate(rng, rng.choice(pool), max_edits=6)
                for _ in range(rng.randint(1, 4))))
            for index in range(20)
        }
        index = build_index(fingerprints)
        exact = MatchPipeline(index, fingerprints, backend="exact")
        pruned = {backend: MatchPipeline(index, fingerprints, backend=backend)
                  for backend in PRUNED_BACKENDS}
        queries = [Fingerprint.parse(mutate(rng, rng.choice(pool), max_edits=8))
                   for _ in range(5)]
        for query in queries:
            for eta in (0.2, 0.5):
                for epsilon in EPSILON_GRID:
                    exact_matches = exact.match(query, eta, epsilon)
                    for backend, pipeline in pruned.items():
                        assert pipeline.match(query, eta, epsilon) == exact_matches, \
                            f"{backend} mismatch at eta={eta} epsilon={epsilon}"
        assert pruned["myers"].stats.myers_words > 0

    def test_parity_on_unicode_sub_fingerprints(self):
        # non-ascii characters exercise the Peq mask table with a sparse
        # alphabet far outside base64
        rng = random.Random(4242)
        alphabet = "αβγδε汉字漢字ß€✓é́"
        pool = ["".join(rng.choice(alphabet) for _ in range(rng.randint(8, 30)))
                for _ in range(6)]
        fingerprints = {
            f"doc{index}": Fingerprint.parse(".".join(
                rng.choice(pool) for _ in range(rng.randint(1, 3))))
            for index in range(12)
        }
        index = build_index(fingerprints)
        exact = MatchPipeline(index, fingerprints, backend="exact")
        pruned = {backend: MatchPipeline(index, fingerprints, backend=backend)
                  for backend in PRUNED_BACKENDS}
        for query_text in pool:
            query = Fingerprint.parse(query_text)
            for epsilon in EPSILON_GRID:
                exact_matches = exact.match(query, 0.5, epsilon)
                for backend, pipeline in pruned.items():
                    assert pipeline.match(query, 0.5, epsilon) == exact_matches, \
                        f"{backend} unicode mismatch at epsilon={epsilon}"

    def test_myers_shares_every_pruning_decision_with_bounded(self):
        # myers only swaps the distance kernel: the pair counters must be
        # exactly equal to bounded's, query by query
        rng = random.Random(77)
        pool, fingerprints = random_corpus(rng, documents=40)
        index = build_index(fingerprints)
        bounded = MatchPipeline(index, fingerprints, backend="bounded")
        myers = MatchPipeline(index, fingerprints, backend="myers")
        for query in random_queries(rng, pool, fingerprints):
            assert myers.match(query, 0.5, 70.0) == bounded.match(query, 0.5, 70.0)
        for field in ("pairs_scored", "pairs_cutoff", "pairs_skipped_by_bound",
                      "memo_hits", "memo_misses", "verified", "matched"):
            assert getattr(myers.stats, field) == getattr(bounded.stats, field), field
        assert myers.stats.myers_words > 0
        assert bounded.stats.myers_words == 0

    def test_empty_corpus(self):
        pipeline = MatchPipeline(NGramIndex(3), {}, backend="bounded")
        assert pipeline.match(Fingerprint.parse("ABCDEF"), 0.5, 70.0) == []

    def test_document_with_only_empty_subs(self):
        # a document whose text survives but whose subs are all empty
        fingerprints = {"empty": Fingerprint(text="ABCDEF", contracts=[[""]])}
        index = build_index(fingerprints)
        query = Fingerprint.parse("ABCDEF")
        for backend in ("exact",) + PRUNED_BACKENDS:
            pipeline = MatchPipeline(index, fingerprints, backend=backend)
            # score 0.0: matches only when epsilon is 0
            assert pipeline.match(query, 0.5, 0.0) == [CloneMatch("empty", 0.0)]
            assert pipeline.match(query, 0.5, 50.0) == []


# ---------------------------------------------------------------------------
# backend registry / resolution
# ---------------------------------------------------------------------------

class TestBackendResolution:
    def test_default_is_bounded(self):
        assert DEFAULT_SIMILARITY_BACKEND == "bounded"
        assert isinstance(resolve_similarity_backend(None), BoundedSimilarityBackend)
        assert CloneDetector().similarity_backend == "bounded"

    def test_names_resolve(self):
        assert isinstance(resolve_similarity_backend("exact"), ExactSimilarityBackend)
        assert isinstance(resolve_similarity_backend("bounded"), BoundedSimilarityBackend)
        assert isinstance(resolve_similarity_backend("myers"), MyersSimilarityBackend)
        assert set(SIMILARITY_BACKENDS) == {"exact", "bounded", "myers"}

    def test_instance_passes_through(self):
        backend = ExactSimilarityBackend()
        assert resolve_similarity_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown similarity backend"):
            resolve_similarity_backend("fuzzy")
        with pytest.raises(ValueError, match="unknown similarity backend"):
            CloneDetector(similarity_backend="fuzzy")


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------

class TestMatchStats:
    def test_stats_accumulate_across_queries(self):
        rng = random.Random(7)
        pool, fingerprints = random_corpus(rng, documents=25)
        index = build_index(fingerprints)
        pipeline = MatchPipeline(index, fingerprints, backend="bounded")
        for query in random_queries(rng, pool, fingerprints):
            pipeline.match(query, 0.5, 70.0)
        stats = pipeline.stats
        assert stats.queries == 9
        assert stats.verified == stats.candidates_generated
        assert stats.matched <= stats.verified
        assert stats.candidate_seconds >= 0.0
        assert stats.verify_seconds >= 0.0
        assert stats.pairs_scored + stats.memo_hits > 0

    def test_exact_backend_computes_every_pair(self):
        fingerprints = {"doc": Fingerprint.parse("AAAA.BBBB")}
        index = build_index(fingerprints)
        pipeline = MatchPipeline(index, fingerprints, backend="exact")
        pipeline.match(Fingerprint.parse("AAAA.CCCC"), 0.1, 0.0)
        # "AAAA" scores 100 against the first doc sub and short-circuits
        # (seed semantics); "CCCC" is scored against both doc subs
        assert pipeline.stats.pairs_scored == 3
        assert pipeline.stats.pairs_skipped_by_bound == 0
        assert pipeline.stats.pairs_cutoff == 0

    def test_merge_and_as_dict(self):
        first = MatchStats(queries=1, pairs_scored=10, verify_seconds=0.5)
        second = MatchStats(queries=2, pairs_scored=5, verify_seconds=0.25)
        merged = first.merge(second)
        assert merged is first
        assert merged.queries == 3
        assert merged.pairs_scored == 15
        assert merged.verify_seconds == pytest.approx(0.75)
        assert merged.as_dict()["pairs_scored"] == 15

    def test_stage_rows_cover_both_stages(self):
        stages = {row[0] for row in MatchStats().stage_rows()}
        assert stages == {"candidates", "verification", "ingest"}

    def test_detector_exposes_match_stats(self):
        detector = CloneDetector()
        detector.add_corpus([
            ("a", "contract A { function f(uint x) { msg.sender.transfer(x); } }")])
        detector.find_clones("function g(uint y) { msg.sender.transfer(y); }")
        assert detector.match_stats.queries == 1


# ---------------------------------------------------------------------------
# staged candidate generation
# ---------------------------------------------------------------------------

class TestCandidateGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_pruned_generation_equals_naive_counting(self, seed):
        rng = random.Random(seed)
        _pool, fingerprints = random_corpus(rng, documents=40)
        index = build_index(fingerprints)
        document_grams = {document_id: ngrams(fingerprint.text, 3)
                          for document_id, fingerprint in fingerprints.items()}
        for fingerprint in list(fingerprints.values())[:10]:
            query_grams = ngrams(fingerprint.text, 3)
            for eta in ETA_GRID:
                got = set(index.candidates(fingerprint.text, eta))
                expected = set()
                if query_grams:
                    required = eta * len(query_grams)
                    for document_id, grams in document_grams.items():
                        if grams and len(query_grams & grams) >= required \
                                and query_grams & grams:
                            expected.add(document_id)
                assert got == expected, f"candidate mismatch at eta={eta}"

    def test_stats_counters_populated(self):
        index = NGramIndex(3)
        index.add("tiny", "ABC")      # one gram: length-prunable at eta 0.75
        index.add("full", "ABCDEF")   # all four query grams
        for bulk in range(5):
            # five documents sharing the three *common* grams: the rare
            # gram "ABC" (carrying "tiny") leads the ascending-df walk
            index.add(f"bulk{bulk}", "BCDEFG")
        counters: dict = {}
        candidates = index.candidates_from_grams(
            ngrams("ABCDEF", 3), 0.75, stats=counters)
        assert set(candidates) == {"full"} | {f"bulk{i}" for i in range(5)}
        assert counters["grams"] == 4
        assert counters["postings_scanned"] > 0
        assert counters["pruned_by_length"] == 1   # "tiny": 1 gram < required 3
        assert counters["candidates_considered"] == 6


class TestThreadSafety:
    def test_concurrent_queries_do_not_lose_stat_updates(self):
        from concurrent.futures import ThreadPoolExecutor

        rng = random.Random(11)
        pool, fingerprints = random_corpus(rng, documents=30)
        index = build_index(fingerprints)
        pipeline = MatchPipeline(index, fingerprints, backend="bounded")
        queries = [
            Fingerprint.parse(".".join(
                mutate(rng, rng.choice(pool)) for _ in range(rng.randint(1, 3))))
            for _ in range(64)
        ]
        with ThreadPoolExecutor(max_workers=8) as executor:
            results = list(executor.map(
                lambda query: pipeline.match(query, 0.5, 70.0), queries))
        assert pipeline.stats.queries == len(queries)
        assert pipeline.stats.matched == sum(len(matches) for matches in results)
        assert pipeline.stats.verified == pipeline.stats.candidates_generated


class TestPickling:
    def test_detector_round_trips_through_pickle(self):
        import pickle

        detector = CloneDetector()
        detector.add_corpus([
            ("a", "contract A { function f(uint x) { msg.sender.transfer(x); } }")])
        clone = pickle.loads(pickle.dumps(detector))
        query = "function g(uint y) { msg.sender.transfer(y); }"
        assert clone.find_clones(query) == detector.find_clones(query)
        assert clone.similarity_backend == detector.similarity_backend
