"""Tests for the Solidity frontend: AST -> CPG translation (Section 4.2)."""

import pytest

from repro.cpg import build_cpg
from repro.cpg.graph import EdgeLabel


@pytest.fixture(scope="module")
def wallet_graph(vulnerable_wallet_source=None):
    source = """
pragma solidity ^0.4.24;

contract Wallet {
    address owner;
    mapping(address => uint) balances;

    constructor() public { owner = msg.sender; }

    function deposit() public payable {
        balances[msg.sender] += msg.value;
    }

    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call{value: amount}("");
        balances[msg.sender] -= amount;
    }

    function kill() public onlyOwner {
        selfdestruct(msg.sender);
    }

    modifier onlyOwner() {
        require(msg.sender == owner, "Not owner");
        _;
    }
}
"""
    return build_cpg(source, snippet=False)


class TestDeclarations:
    def test_record_created(self, wallet_graph):
        records = wallet_graph.nodes_by_label("RecordDeclaration")
        assert any(record.name == "Wallet" for record in records)

    def test_fields_created_with_fields_edges(self, wallet_graph):
        record = next(r for r in wallet_graph.nodes_by_label("RecordDeclaration") if r.name == "Wallet")
        fields = wallet_graph.successors(record, EdgeLabel.FIELDS)
        assert {field.name for field in fields} == {"owner", "balances"}

    def test_field_type_recorded(self, wallet_graph):
        field = next(f for f in wallet_graph.nodes_by_label("FieldDeclaration") if f.name == "owner")
        types = wallet_graph.successors(field, EdgeLabel.TYPE)
        assert types and types[0].name == "address"

    def test_constructor_node(self, wallet_graph):
        assert wallet_graph.nodes_by_label("ConstructorDeclaration")

    def test_functions_linked_to_record(self, wallet_graph):
        withdraw = next(f for f in wallet_graph.nodes_by_label("FunctionDeclaration")
                        if f.name == "withdraw")
        records = wallet_graph.successors(withdraw, EdgeLabel.RECORD_DECLARATION)
        assert records and records[0].name == "Wallet"

    def test_parameters_with_index(self, wallet_graph):
        withdraw = next(f for f in wallet_graph.nodes_by_label("FunctionDeclaration")
                        if f.name == "withdraw")
        params = wallet_graph.successors(withdraw, EdgeLabel.PARAMETERS)
        assert len(params) == 1 and params[0].name == "amount"

    def test_pragma_version_recorded(self, wallet_graph):
        unit = wallet_graph.nodes_by_label("TranslationUnitDeclaration")[0]
        assert unit.properties.get("solidity_version") == (0, 4)


class TestExpressions:
    def test_call_with_value_specifier(self, wallet_graph):
        call = next(c for c in wallet_graph.nodes_by_label("CallExpression") if c.name == "call")
        specifiers = wallet_graph.successors(call, EdgeLabel.SPECIFIERS)
        assert specifiers
        pairs = wallet_graph.ast_children(specifiers[0])
        assert any(getattr(pair, "key", "") == "value" for pair in pairs)

    def test_member_expression_for_msg_sender(self, wallet_graph):
        assert any(node.code == "msg.sender"
                   for node in wallet_graph.nodes_by_label("MemberExpression"))

    def test_subscript_expression(self, wallet_graph):
        assert wallet_graph.nodes_by_label("SubscriptExpression")

    def test_binary_operator_lhs_rhs_edges(self, wallet_graph):
        compound = next(op for op in wallet_graph.nodes_by_label("BinaryOperator")
                        if op.operator_code == "-=")
        assert wallet_graph.successors(compound, EdgeLabel.LHS)
        assert wallet_graph.successors(compound, EdgeLabel.RHS)

    def test_require_call_has_rollback_child(self, wallet_graph):
        requires = [c for c in wallet_graph.nodes_by_label("CallExpression") if c.name == "require"]
        assert requires
        assert all(
            any(edge.properties.get("role") == "rollback"
                for edge in wallet_graph.out_edges(call, EdgeLabel.AST))
            for call in requires
        )


class TestRollbackNodes:
    def test_revert_statement_becomes_rollback(self):
        graph = build_cpg("function f() { revert(); }")
        assert graph.nodes_by_label("Rollback")

    def test_throw_becomes_rollback(self):
        graph = build_cpg("function f() { if (x > 0) { throw; } }")
        assert graph.nodes_by_label("Rollback")

    def test_require_produces_rollback_branch(self):
        graph = build_cpg("function f(uint a) { require(a > 0); a = a + 1; }")
        rollbacks = graph.nodes_by_label("Rollback")
        assert rollbacks
        # the rollback has no outgoing EOG edges (terminates the path)
        assert all(not graph.out_edges(node, EdgeLabel.EOG) for node in rollbacks)


class TestModifierExpansion:
    def test_modifier_body_expanded_into_function(self, wallet_graph):
        kill = next(f for f in wallet_graph.nodes_by_label("FunctionDeclaration") if f.name == "kill")
        reached = wallet_graph.reachable(kill, EdgeLabel.EOG)
        assert any(node.name == "require" for node in reached), \
            "the onlyOwner require should precede selfdestruct after expansion"
        assert any(node.name == "selfdestruct" for node in reached)

    def test_each_application_gets_its_own_copy(self):
        source = """
contract C {
    address owner;
    modifier onlyOwner() { require(msg.sender == owner); _; }
    function a() public onlyOwner { x = 1; }
    function b() public onlyOwner { x = 2; }
    uint x;
}
"""
        graph = build_cpg(source, snippet=False)
        requires = [c for c in graph.nodes_by_label("CallExpression") if c.name == "require"]
        assert len(requires) == 2

    def test_modifier_declaration_kept_without_body(self, wallet_graph):
        modifiers = wallet_graph.nodes_by_label("ModifierDeclaration")
        assert modifiers
        assert not wallet_graph.successors(modifiers[0], EdgeLabel.BODY)


class TestSnippetInference:
    def test_free_statements_get_inferred_wrappers(self):
        graph = build_cpg("msg.sender.transfer(amount);")
        functions = graph.nodes_by_label("FunctionDeclaration")
        assert functions and functions[0].is_inferred
        records = graph.nodes_by_label("RecordDeclaration")
        assert records and records[0].is_inferred

    def test_free_function_gets_inferred_contract(self):
        graph = build_cpg("function f() public { owner = msg.sender; }")
        records = graph.nodes_by_label("RecordDeclaration")
        assert records and records[0].is_inferred
        functions = [f for f in graph.nodes_by_label("FunctionDeclaration") if f.name == "f"]
        assert functions and not functions[0].is_inferred

    def test_unresolved_references_become_inferred_fields(self):
        graph = build_cpg("function f(uint amount) { balances[msg.sender] -= amount; }")
        fields = graph.nodes_by_label("FieldDeclaration")
        assert any(field.name == "balances" and field.is_inferred for field in fields)

    def test_builtins_are_not_inferred_as_fields(self):
        graph = build_cpg("function f() { msg.sender.transfer(1 ether); }")
        names = {field.name for field in graph.nodes_by_label("FieldDeclaration")}
        assert "msg" not in names and "transfer" not in names

    def test_declared_locals_are_not_inferred_as_fields(self):
        graph = build_cpg("function f() { uint total = 0; total += 1; }")
        assert not any(field.name == "total" for field in graph.nodes_by_label("FieldDeclaration"))


class TestBuilderApi:
    def test_build_requires_source_or_unit(self):
        with pytest.raises(ValueError):
            build_cpg()

    def test_build_from_parsed_unit(self):
        from repro.solidity.parser import parse_snippet
        unit = parse_snippet("function f() { owner = msg.sender; }")
        graph = build_cpg(unit=unit)
        assert graph.nodes_by_label("FunctionDeclaration")

    def test_snippet_flag_controls_strictness(self):
        from repro.solidity.errors import SolidityParseError
        with pytest.raises(SolidityParseError):
            build_cpg("owner = msg.sender;", snippet=False)
