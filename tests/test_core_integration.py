"""Integration tests for the shared analysis core across the full study.

Acceptance criteria of the core refactor:

* ``VulnerableCodeReuseStudy.run`` parses each unique source exactly once
  end-to-end (asserted via the shared store's stats counters),
* the study produces identical results under the serial, thread, and
  process executors.
"""

from __future__ import annotations

import pytest

from repro.core.artifacts import ArtifactStore
from repro.core.executor import BACKENDS
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy


@pytest.fixture(scope="module")
def small_corpora():
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 10, "ethereum.stackexchange": 20})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=10)
    return qa_corpus, sanctuary.contracts


def _study_tables(result):
    """Everything comparable that feeds Tables 4–8."""
    return {
        "funnel": result.funnel(),
        "dasp": result.dasp_distribution(),
        "vulnerable_snippets": result.vulnerable_snippets,
        "snippet_categories": result.snippet_categories,
        "snippet_timeouts": result.snippet_timeouts,
        "collection": result.collection.total_funnel.as_row(),
        "clone_matches": result.clone_mapping.matches,
        "unique_contract_keys": result.unique_contract_keys,
        "outcomes": [
            (o.address, o.snippet_id, o.expected_queries, o.vulnerable,
             o.confirmed_queries, o.timed_out, o.analysis_error, o.phase)
            for o in result.validation.outcomes
        ],
    }


class TestParseOnce:
    def test_study_parses_each_unique_source_exactly_once(self, small_corpora):
        qa_corpus, contracts = small_corpora
        store = ArtifactStore()
        with VulnerableCodeReuseStudy(StudyConfiguration(), store=store) as study:
            study.run(qa_corpus, contracts)
        stats = store.stats
        # every cache miss creates one artifact, and only artifact misses
        # may parse — at most once each.  Some misses now skip the whole-
        # source parse entirely: the function-digest tier assembles their
        # fingerprint from functions shared with already-parsed sources.
        assert stats.evictions == 0
        assert stats.misses == len(store)
        assert stats.parse_calls <= stats.misses
        assert stats.misses - stats.parse_calls <= stats.delta_assemblies
        assert stats.delta_fallbacks == 0
        # the stages genuinely share artifacts (collection, CCD, CCC, and
        # validation all touch overlapping sources)
        assert stats.hits > 0
        assert stats.hit_rate > 0.3
        # CPGs and fingerprints are also built at most once per source
        assert stats.cpg_builds <= stats.misses
        assert stats.fingerprint_builds <= stats.misses

    def test_rerunning_the_study_reuses_the_store(self, small_corpora):
        qa_corpus, contracts = small_corpora
        store = ArtifactStore()
        with VulnerableCodeReuseStudy(StudyConfiguration(), store=store) as study:
            study.run(qa_corpus, contracts)
            parse_calls_after_first = store.stats.parse_calls
            study.run(qa_corpus, contracts)
        # the second run is answered entirely from cache
        assert store.stats.parse_calls == parse_calls_after_first


class TestConfigurationPlumbing:
    def test_nondefault_fingerprint_block_size_reaches_the_detector(self, small_corpora):
        qa_corpus, contracts = small_corpora
        configuration = StudyConfiguration(fingerprint_block_size=3)
        with VulnerableCodeReuseStudy(configuration) as study:
            result = study.run(qa_corpus, contracts)
        assert result.clone_mapping is not None
        assert study.store.generator.hasher.block_size == 3


class TestExecutorParity:
    def test_identical_study_results_across_backends(self, small_corpora):
        qa_corpus, contracts = small_corpora
        tables = {}
        for backend in BACKENDS:
            configuration = StudyConfiguration(
                executor_backend=backend, max_workers=2, chunk_size=4)
            with VulnerableCodeReuseStudy(configuration) as study:
                tables[backend] = _study_tables(study.run(qa_corpus, contracts))
        assert tables["thread"] == tables["serial"]
        assert tables["process"] == tables["serial"]

    def test_thread_backend_shares_the_parse_once_store(self, small_corpora):
        qa_corpus, contracts = small_corpora
        store = ArtifactStore()
        configuration = StudyConfiguration(executor_backend="thread", max_workers=4)
        with VulnerableCodeReuseStudy(configuration, store=store) as study:
            study.run(qa_corpus, contracts)
        # at most one parse per miss even under concurrency; misses beyond
        # parse_calls were served by the function-digest tier
        assert store.stats.parse_calls <= store.stats.misses
        assert (store.stats.misses - store.stats.parse_calls
                <= store.stats.delta_assemblies)
