"""Tests for the ``repro`` console-script CLI."""

import pytest

from repro.cli import build_parser, main

SMALL_CORPUS = ["--posts-stackoverflow", "4", "--posts-ethereum", "8",
                "--independent-contracts", "4"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_every_subcommand_is_wired(self):
        parser = build_parser()
        for argv in (["analyze", "contracts"],
                     ["analyzers", "list"],
                     ["queries", "list"],
                     ["index", "build", "--output", "x"],
                     ["index", "info", "x"],
                     ["study", "run"],
                     ["study", "resume", "--checkpoint", "x"],
                     ["cache", "stats", "x"],
                     ["cache", "gc", "x"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "run", "--backend", "rocket"])


class TestIndexCommands:
    def test_build_then_info(self, tmp_path, capsys):
        index = str(tmp_path / "index")
        code, out, _ = run_cli(capsys, "index", "build", "--output", index,
                               "--shards", "2", *SMALL_CORPUS)
        assert code == 0
        assert "saved" in out and "2 shard(s)" in out
        code, out, _ = run_cli(capsys, "index", "info", index)
        assert code == 0
        assert "documents" in out and "similarity_threshold" in out

    def test_build_with_cache_warm_rebuild(self, tmp_path, capsys):
        index = str(tmp_path / "index")
        cache = str(tmp_path / "cache")
        code, out, _ = run_cli(capsys, "index", "build", "--output", index,
                               "--cache", cache, *SMALL_CORPUS)
        assert code == 0
        code, out, _ = run_cli(capsys, "index", "build", "--output", index,
                               "--cache", cache, *SMALL_CORPUS)
        assert code == 0
        assert "0 parses" in out  # warm rebuild hydrated from the disk cache

    def test_info_on_missing_index_fails(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, "index", "info", str(tmp_path / "nope"))
        assert code == 1
        assert "error" in err


class TestStudyCommands:
    def test_run_then_resume_same_report(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "ck")
        code, first, _ = run_cli(capsys, "study", "run", "--checkpoint", checkpoint,
                                 "--quiet", *SMALL_CORPUS)
        assert code == 0
        assert "Pipeline funnel" in first
        code, second, _ = run_cli(capsys, "study", "resume",
                                  "--checkpoint", checkpoint, "--quiet")
        assert code == 0

        def report_of(text):
            return text[:text.index("artifact cache")]

        assert report_of(first) == report_of(second)

    def test_run_with_cache_reports_disk_tier(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code, out, _ = run_cli(capsys, "study", "run", "--cache", cache,
                               "--quiet", *SMALL_CORPUS)
        assert code == 0
        assert "disk tier" in out

    def test_run_refuses_mismatched_corpus_checkpoint(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "ck")
        code, _, _ = run_cli(capsys, "study", "run", "--checkpoint", checkpoint,
                             "--quiet", *SMALL_CORPUS)
        assert code == 0
        code, _, err = run_cli(capsys, "study", "run", "--checkpoint", checkpoint,
                               "--quiet", "--posts-stackoverflow", "5",
                               "--posts-ethereum", "8", "--independent-contracts", "4")
        assert code == 1
        assert "different corpus parameters" in err

    def test_resume_without_study_fails(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, "study", "resume",
                               "--checkpoint", str(tmp_path / "empty"))
        assert code == 1
        assert "resumable" in err


class TestCacheCommands:
    def test_stats_and_gc(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        run_cli(capsys, "study", "run", "--cache", cache, "--quiet", *SMALL_CORPUS)
        code, out, _ = run_cli(capsys, "cache", "stats", cache)
        assert code == 0
        assert "entries" in out
        code, out, _ = run_cli(capsys, "cache", "gc", cache, "--max-entries", "5")
        assert code == 0
        assert "evicted" in out
        code, out, _ = run_cli(capsys, "cache", "stats", cache)
        assert code == 0

    def test_mismatched_cache_configuration_is_a_clean_error(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code, _, _ = run_cli(capsys, "study", "run", "--cache", cache,
                             "--quiet", *SMALL_CORPUS)
        assert code == 0
        code, _, err = run_cli(capsys, "study", "run", "--cache", cache, "--quiet",
                               "--ngram-size", "5", *SMALL_CORPUS)
        assert code == 1
        assert "error" in err and "cache" in err
        code, _, err = run_cli(capsys, "index", "build", "--output",
                               str(tmp_path / "idx"), "--cache", cache,
                               "--ngram-size", "5", *SMALL_CORPUS)
        assert code == 1
        assert "error" in err

    def test_stats_on_missing_path_is_a_clean_error(self, tmp_path, capsys):
        code, _, err = run_cli(capsys, "cache", "stats", str(tmp_path / "none"))
        assert code == 1
        assert "no artifact cache" in err and "Traceback" not in err

    def test_stats_on_non_sqlite_path_is_a_clean_error(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "artifacts.sqlite").write_text("definitely not a database")
        code, _, err = run_cli(capsys, "cache", "stats", str(cache))
        assert code == 1
        assert "not a valid SQLite" in err and "Traceback" not in err


class TestRegistryCommands:
    def test_analyzers_list(self, capsys):
        code, out, _ = run_cli(capsys, "analyzers", "list")
        assert code == 0
        for analyzer_id in ("ccd", "ccc", "validate", "temporal", "correlation"):
            assert analyzer_id in out
        assert "corpus" in out and "contract" in out

    def test_queries_list(self, capsys):
        code, out, _ = run_cli(capsys, "queries", "list")
        assert code == 0
        assert "17 queries" in out
        assert "reentrancy-call-before-write" in out
        assert "Access Control" in out


class TestAnalyzeCommand:
    def test_streaming_and_batch_summaries_agree(self, capsys):
        code, stream_out, _ = run_cli(capsys, "analyze", "contracts", *SMALL_CORPUS)
        assert code == 0
        assert "(streaming)" in stream_out and "ccd" in stream_out and "ccc" in stream_out
        code, batch_out, _ = run_cli(capsys, "analyze", "contracts", "--batch",
                                     *SMALL_CORPUS)
        assert code == 0
        assert "(batch)" in batch_out

        def rows_of(text):
            # drop the mode word, timing line, and title underline; the
            # tallies themselves must be identical between the two modes
            return [line for line in text.splitlines()
                    if not line.startswith(("=", "analyzed "))
                    and "(streaming)" not in line and "(batch)" not in line]

        assert rows_of(stream_out) == rows_of(batch_out)

    def test_snippet_corpus_with_corpus_scope_analyzers(self, capsys):
        code, out, _ = run_cli(capsys, "analyze", "snippets",
                               "--analyses", "ccc,temporal,correlation",
                               *SMALL_CORPUS)
        assert code == 0
        assert "temporal (corpus scope)" in out
        assert "correlation (corpus scope)" in out
        assert "disseminator_snippets" in out

    def test_unknown_analyzer_is_a_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "analyze", "contracts",
                               "--analyses", "nope", *SMALL_CORPUS)
        assert code == 1
        assert "unknown analyzer" in err and "analyzers list" in err

    def test_warm_cache_rerun_parses_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        code, _, _ = run_cli(capsys, "analyze", "contracts", "--cache", cache,
                             *SMALL_CORPUS)
        assert code == 0
        code, out, _ = run_cli(capsys, "analyze", "contracts", "--cache", cache,
                               *SMALL_CORPUS)
        assert code == 0
        assert "0 parses" in out


class TestMatcherCliOptions:
    def test_profile_prints_stage_table(self, capsys):
        code, out, _ = run_cli(capsys, "analyze", "snippets", "--analyses", "ccd",
                               "--profile", *SMALL_CORPUS)
        assert code == 0
        assert "Match pipeline profile [bounded backend]" in out
        assert "candidates" in out and "verification" in out
        assert "pruned by length bucket" in out
        assert "abandoned by mean bound" in out
        assert "seconds (summed over queries)" in out

    def test_exact_and_bounded_backends_agree(self, capsys):
        code, bounded_out, _ = run_cli(capsys, "analyze", "snippets",
                                       "--analyses", "ccd", *SMALL_CORPUS)
        assert code == 0
        code, exact_out, _ = run_cli(capsys, "analyze", "snippets",
                                     "--analyses", "ccd",
                                     "--similarity-backend", "exact",
                                     *SMALL_CORPUS)
        assert code == 0

        def tally_rows(text):
            return [line for line in text.splitlines()
                    if not line.startswith("analyzed ")]

        assert tally_rows(bounded_out) == tally_rows(exact_out)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "contracts", "--similarity-backend", "fuzzy"])

    def test_index_build_records_backend(self, tmp_path, capsys):
        index = str(tmp_path / "index")
        code, _, _ = run_cli(capsys, "index", "build", "--output", index,
                             "--similarity-backend", "exact", *SMALL_CORPUS)
        assert code == 0
        code, out, _ = run_cli(capsys, "index", "info", index)
        assert code == 0
        assert "similarity_backend" in out and "exact" in out

    def test_profile_without_ccd_warns(self, capsys):
        code, out, err = run_cli(capsys, "analyze", "snippets",
                                 "--analyses", "ccc", "--profile", *SMALL_CORPUS)
        assert code == 0
        assert "Match pipeline profile" not in out
        assert "needs 'ccd'" in err


class TestVersion:
    def test_version_subcommand(self, capsys):
        code, out, _ = run_cli(capsys, "version")
        assert code == 0
        from repro import __version__

        assert out.strip() == f"repro {__version__}"

    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        from repro import __version__

        assert __version__ in out and out.startswith("repro")

    def test_version_matches_installed_metadata_when_available(self):
        from repro.cli import package_version

        assert package_version()  # never raises, installed or not


class TestServiceCommands:
    def test_serve_submit_jobs_are_wired(self):
        parser = build_parser()
        for argv in (["serve", "--data-dir", "x"],
                     ["submit", "snippets", "--url", "http://localhost:1"],
                     ["jobs", "list", "--url", "http://localhost:1"],
                     ["jobs", "show", "3", "--url", "http://localhost:1"],
                     ["version"]):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_serve_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_against_dead_daemon_is_a_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "submit", "snippets",
                               "--url", "http://127.0.0.1:9",  # discard port
                               *SMALL_CORPUS)
        assert code == 1
        assert "error" in err and "Traceback" not in err

    def test_jobs_list_against_dead_daemon_is_a_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "jobs", "list", "--url", "http://127.0.0.1:9")
        assert code == 1
        assert "error" in err

    def test_submit_and_jobs_against_in_process_daemon(self, tmp_path, capsys):
        from repro.service import AnalysisService, ServiceConfig

        config = ServiceConfig(data_dir=str(tmp_path / "svc"), port=0,
                               backend="serial")
        with AnalysisService(config) as service:
            code, out, _ = run_cli(capsys, "submit", "snippets",
                                   "--url", service.url, "--ingest", "--wait",
                                   *SMALL_CORPUS)
            assert code == 0
            assert "submitted job" in out and "done in" in out
            assert "ingested" in out
            code, out, _ = run_cli(capsys, "jobs", "list", "--url", service.url)
            assert code == 0
            assert "done" in out
            code, out, _ = run_cli(capsys, "jobs", "show", "1",
                                   "--url", service.url)
            assert code == 0
            assert "Results" in out


class TestClusterCli:
    def test_serve_role_and_cluster_status_are_wired(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--data-dir", "d", "--role", "coordinator",
             "--workers", "http://a:1,http://b:2",
             "--shard-timeout", "12", "--connect-timeout", "3"])
        assert args.role == "coordinator"
        assert args.workers == "http://a:1,http://b:2"
        assert args.shard_timeout == 12.0 and args.connect_timeout == 3.0
        args = parser.parse_args(["cluster", "status", "--url", "http://c:9"])
        assert args.url == "http://c:9" and callable(args.handler)

    def test_serve_worker_count_still_parses_as_int(self):
        args = build_parser().parse_args(
            ["serve", "--data-dir", "d", "--workers", "4"])
        assert args.role == "worker" and args.workers == "4"

    def test_port_zero_prints_machine_readable_port_line(self, tmp_path):
        """``repro serve --port 0`` must print ``PORT=<n>`` for harnesses."""
        import cluster_harness

        daemon = cluster_harness.spawn_daemon(tmp_path / "svc", timeout=60)
        try:
            assert daemon.port is not None and daemon.port > 0
            port_lines = [line for line in daemon.stdout_lines
                          if line.startswith("PORT=")]
            assert port_lines == [f"PORT={daemon.port}"]
            # the human-readable banner stays FIRST: tools/service_smoke.py
            # scrapes the URL from line one
            assert daemon.stdout_lines[0].startswith("serving on ")
            assert f":{daemon.port}" in daemon.stdout_lines[0]
            assert daemon.client().healthz()["status"] == "ok"
        finally:
            daemon.close()
