"""Unit tests for the Solidity parser on complete source files."""

import pytest

from repro.solidity import ast_nodes as ast
from repro.solidity.errors import SolidityParseError
from repro.solidity.parser import parse, parse_snippet


def single_contract(source):
    unit = parse(source)
    contracts = unit.contracts()
    assert len(contracts) == 1
    return contracts[0]


class TestTopLevel:
    def test_pragma_directive(self):
        unit = parse("pragma solidity ^0.8.0; contract C {}")
        pragmas = [item for item in unit.items if isinstance(item, ast.PragmaDirective)]
        assert len(pragmas) == 1
        assert "0.8" in pragmas[0].value.replace(" ", "")

    def test_import_directive(self):
        unit = parse('import "./Token.sol"; contract C {}')
        imports = [item for item in unit.items if isinstance(item, ast.ImportDirective)]
        assert imports and imports[0].path == "./Token.sol"

    def test_multiple_contracts(self):
        unit = parse("contract A {} contract B {} interface I {} library L {}")
        assert [c.kind for c in unit.contracts()] == ["contract", "contract", "interface", "library"]

    def test_abstract_contract(self):
        contract = parse("abstract contract A {}").contracts()[0]
        assert contract.is_abstract is True

    def test_inheritance_list(self):
        contract = single_contract("contract C is A, B(1) { }")
        assert contract.base_contracts == ["A", "B"]

    def test_strict_mode_rejects_bare_statements(self):
        with pytest.raises(SolidityParseError):
            parse("x = 1;")


class TestContractParts:
    def test_state_variables(self):
        contract = single_contract("""
            contract C {
                uint public total;
                address owner;
                mapping(address => uint) balances;
                uint constant FEE = 100;
            }
        """)
        names = [v.name for v in contract.state_variables()]
        assert names == ["total", "owner", "balances", "FEE"]
        assert contract.state_variables()[0].visibility == "public"
        assert contract.state_variables()[3].is_constant is True

    def test_mapping_type_structure(self):
        contract = single_contract("contract C { mapping(address => mapping(address => uint)) allowed; }")
        mapping = contract.state_variables()[0].type_name
        assert isinstance(mapping, ast.MappingTypeName)
        assert isinstance(mapping.value_type, ast.MappingTypeName)

    def test_array_state_variable(self):
        contract = single_contract("contract C { address[] players; uint[10] slots; }")
        assert isinstance(contract.state_variables()[0].type_name, ast.ArrayTypeName)
        assert contract.state_variables()[1].type_name.length is not None

    def test_constructor_keyword(self):
        contract = single_contract("contract C { constructor() public {} }")
        assert contract.functions()[0].is_constructor

    def test_old_style_constructor_named_like_contract(self):
        contract = single_contract("contract C { function C() public {} }")
        function = contract.functions()[0]
        assert function.name == "C"

    def test_fallback_function_unnamed(self):
        contract = single_contract("contract C { function () payable {} }")
        assert contract.functions()[0].is_default_function

    def test_receive_and_fallback_keywords(self):
        contract = single_contract(
            "contract C { receive() external payable {} fallback() external {} }")
        kinds = [f.kind for f in contract.functions()]
        assert kinds == ["receive", "fallback"]

    def test_function_visibility_and_mutability(self):
        contract = single_contract(
            "contract C { function f() public view returns (uint) { return 1; } }")
        function = contract.functions()[0]
        assert function.visibility == "public"
        assert function.mutability == "view"
        assert len(function.return_parameters) == 1

    def test_function_parameters(self):
        contract = single_contract(
            "contract C { function f(address to, uint256 amount, bytes memory data) public {} }")
        params = contract.functions()[0].parameters
        assert [p.name for p in params] == ["to", "amount", "data"]
        assert params[2].storage_location == "memory"

    def test_function_modifier_invocation(self):
        contract = single_contract(
            "contract C { modifier onlyOwner() { _; } function f() public onlyOwner {} }")
        function = next(f for f in contract.functions() if f.name == "f")
        assert [m.name for m in function.modifiers] == ["onlyOwner"]

    def test_modifier_with_arguments(self):
        contract = single_contract(
            "contract C { modifier limit(uint n) { _; } function f() public limit(5) {} }")
        function = next(f for f in contract.functions() if f.name == "f")
        assert function.modifiers[0].arguments[0].code == "5"

    def test_event_definition(self):
        contract = single_contract(
            "contract C { event Transfer(address indexed from, address indexed to, uint value); }")
        events = [p for p in contract.parts if isinstance(p, ast.EventDefinition)]
        assert events[0].name == "Transfer"
        assert events[0].parameters[0].indexed is True

    def test_struct_definition(self):
        contract = single_contract("contract C { struct S { uint a; address b; } }")
        structs = [p for p in contract.parts if isinstance(p, ast.StructDefinition)]
        assert [m.name for m in structs[0].members] == ["a", "b"]

    def test_enum_definition(self):
        contract = single_contract("contract C { enum State { Created, Locked, Inactive } }")
        enums = [p for p in contract.parts if isinstance(p, ast.EnumDefinition)]
        assert enums[0].members == ["Created", "Locked", "Inactive"]

    def test_using_for_directive(self):
        contract = single_contract("contract C { using SafeMath for uint256; }")
        usings = [p for p in contract.parts if isinstance(p, ast.UsingForDirective)]
        assert usings[0].library_name == "SafeMath"

    def test_nested_contract_parsing_does_not_crash(self):
        unit = parse("contract A { uint x; } contract B is A { function f() public {} }")
        assert len(unit.contracts()) == 2


class TestStatements:
    def parse_body(self, body):
        contract = single_contract("contract C { function f(uint amount) public { %s } }" % body)
        return contract.functions()[0].body.statements

    def test_if_else(self):
        statements = self.parse_body("if (amount > 0) { x = 1; } else { x = 2; }")
        assert isinstance(statements[0], ast.IfStatement)
        assert statements[0].false_body is not None

    def test_while_loop(self):
        statements = self.parse_body("while (amount > 0) { amount--; }")
        assert isinstance(statements[0], ast.WhileStatement)

    def test_do_while_loop(self):
        statements = self.parse_body("do { amount--; } while (amount > 0);")
        assert isinstance(statements[0], ast.DoWhileStatement)

    def test_for_loop(self):
        statements = self.parse_body("for (uint i = 0; i < amount; i++) { total += i; }")
        loop = statements[0]
        assert isinstance(loop, ast.ForStatement)
        assert isinstance(loop.init, ast.VariableDeclarationStatement)
        assert loop.condition is not None and loop.update is not None

    def test_return_statement(self):
        statements = self.parse_body("return amount + 1;")
        assert isinstance(statements[0], ast.ReturnStatement)

    def test_return_without_value(self):
        statements = self.parse_body("return;")
        assert statements[0].expression is None

    def test_emit_statement(self):
        statements = self.parse_body("emit Transfer(msg.sender, amount);")
        assert isinstance(statements[0], ast.EmitStatement)
        assert isinstance(statements[0].call, ast.FunctionCall)

    def test_revert_statement(self):
        statements = self.parse_body('revert("nope");')
        assert isinstance(statements[0], ast.RevertStatement)

    def test_throw_statement(self):
        statements = self.parse_body("throw;")
        assert isinstance(statements[0], ast.ThrowStatement)

    def test_break_and_continue(self):
        statements = self.parse_body("while (true) { break; } while (true) { continue; }")
        assert isinstance(statements[0].body.statements[0], ast.BreakStatement)
        assert isinstance(statements[1].body.statements[0], ast.ContinueStatement)

    def test_variable_declaration_with_initializer(self):
        statements = self.parse_body("uint fee = amount / 100;")
        declaration = statements[0]
        assert isinstance(declaration, ast.VariableDeclarationStatement)
        assert declaration.declarations[0].name == "fee"
        assert declaration.initial_value is not None

    def test_var_declaration(self):
        statements = self.parse_body("var x = 1;")
        assert statements[0].declarations[0].type_name.name == "var"

    def test_storage_local_declaration(self):
        statements = self.parse_body("Registration storage reg = registry[msg.sender];")
        assert statements[0].declarations[0].storage_location == "storage"

    def test_inline_assembly_is_opaque(self):
        statements = self.parse_body("assembly { let x := mload(0x40) }")
        assert isinstance(statements[0], ast.InlineAssemblyStatement)

    def test_unchecked_block(self):
        statements = self.parse_body("unchecked { amount += 1; }")
        assert isinstance(statements[0], ast.Block) and statements[0].unchecked

    def test_placeholder_statement_in_modifier(self):
        contract = single_contract("contract C { modifier m() { require(true); _; } }")
        modifier = contract.modifiers()[0]
        assert any(isinstance(s, ast.PlaceholderStatement) for s in modifier.body.statements)


class TestExpressions:
    def parse_expression(self, expression):
        contract = single_contract("contract C { function f(uint amount) public { x = %s; } }" % expression)
        statement = contract.functions()[0].body.statements[0]
        return statement.expression.right

    def test_binary_precedence(self):
        expr = self.parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOperation) and expr.operator == "+"
        assert isinstance(expr.right, ast.BinaryOperation) and expr.right.operator == "*"

    def test_comparison_and_logical(self):
        expr = self.parse_expression("a > 1 && b < 2")
        assert expr.operator == "&&"

    def test_member_access_chain(self):
        expr = self.parse_expression("msg.sender")
        assert isinstance(expr, ast.MemberAccess) and expr.member == "sender"

    def test_index_access(self):
        expr = self.parse_expression("balances[msg.sender]")
        assert isinstance(expr, ast.IndexAccess)

    def test_function_call_with_arguments(self):
        expr = self.parse_expression("add(1, 2)")
        assert isinstance(expr, ast.FunctionCall) and len(expr.arguments) == 2

    def test_call_with_value_options(self):
        expr = self.parse_expression('recipient.call{value: amount, gas: 2300}("")')
        assert isinstance(expr, ast.FunctionCall)
        assert set(expr.call_options) == {"value", "gas"}

    def test_old_style_call_value(self):
        expr = self.parse_expression("recipient.call.value(amount)()")
        assert isinstance(expr, ast.FunctionCall)
        inner = expr.callee
        assert isinstance(inner, ast.FunctionCall)

    def test_new_expression(self):
        expr = self.parse_expression("new Token()")
        assert isinstance(expr, ast.FunctionCall)
        assert isinstance(expr.callee, ast.NewExpression)

    def test_ternary_conditional(self):
        expr = self.parse_expression("a > b ? a : b")
        assert isinstance(expr, ast.Conditional)

    def test_unary_not(self):
        expr = self.parse_expression("!approved")
        assert isinstance(expr, ast.UnaryOperation) and expr.operator == "!"

    def test_number_with_unit(self):
        expr = self.parse_expression("1 ether")
        assert isinstance(expr, ast.NumberLiteral) and expr.unit == "ether"

    def test_bool_literal(self):
        expr = self.parse_expression("true")
        assert isinstance(expr, ast.BoolLiteral) and expr.value is True

    def test_string_literal(self):
        expr = self.parse_expression('"hello"')
        assert isinstance(expr, ast.StringLiteral) and expr.value == "hello"

    def test_type_cast(self):
        expr = self.parse_expression("address(this)")
        assert isinstance(expr, ast.FunctionCall)

    def test_tuple_expression(self):
        contract = single_contract(
            "contract C { function f() public { (bool ok, ) = addr.call(\"\"); } }")
        assert contract.functions()[0].body.statements


class TestNodeUtilities:
    def test_walk_visits_descendants(self):
        unit = parse("contract C { function f() public { x = 1 + 2; } }")
        node_types = {node.node_type for node in unit.walk()}
        assert {"SourceUnit", "ContractDefinition", "FunctionDefinition",
                "BinaryOperation", "NumberLiteral"} <= node_types

    def test_source_locations_recorded(self):
        unit = parse("contract C {\n    uint x;\n}")
        variable = unit.contracts()[0].state_variables()[0]
        assert variable.line == 2

    def test_code_excerpt_recorded(self):
        contract = single_contract("contract C { function f() public { msg.sender.transfer(1); } }")
        function = contract.functions()[0]
        assert "transfer" in function.code
