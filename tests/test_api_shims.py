"""Tests for the deprecated legacy batch entry points (session shims).

The old ``CloneDetector.find_clones_many`` / ``ContractChecker.analyze_many``
/ ``ContractValidator.validate_many`` entry points survive as thin shims
that delegate to :class:`repro.api.AnalysisSession`.  They must emit
``DeprecationWarning`` and produce results identical to the session path,
including under the thread and process executor backends.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import AnalysisSession
from repro.ccc.checker import ContractChecker
from repro.ccd.detector import CloneDetector
from repro.core.artifacts import ArtifactStore
from repro.core.executor import BACKENDS, Executor
from repro.pipeline.validation import ContractValidator, ValidationCandidate

WALLET = """
contract Wallet {
    mapping(address => uint) balances;
    function withdraw() public {
        uint amount = balances[msg.sender];
        msg.sender.call{value: amount}("");
        balances[msg.sender] = 0;
    }
}
"""

LOTTERY = """
contract Lottery {
    function draw() public {
        if (block.timestamp % 2 == 0) {
            msg.sender.transfer(address(this).balance);
        }
    }
}
"""

COUNTER = """
contract Counter {
    uint total;
    function add(uint value) public {
        total = total + value;
    }
}
"""

UNPARSABLE = "}}} %%% {{{"

SOURCES = [WALLET, LOTTERY, WALLET, COUNTER, UNPARSABLE]


def make_executor(backend):
    return Executor.create(backend, max_workers=2, chunk_size=2)


def ccc_fields(result):
    """The comparable (timing-free) fields of a ccc AnalysisResult."""
    return (tuple(result.findings), result.timed_out, result.parse_error,
            result.graph_nodes)


def outcome_fields(outcome):
    """The comparable (timing-free) fields of a ValidationOutcome."""
    return (outcome.address, outcome.snippet_id, outcome.expected_queries,
            outcome.vulnerable, outcome.confirmed_queries, outcome.timed_out,
            outcome.analysis_error, outcome.phase)


class TestDeprecationWarnings:
    def test_analyze_many_warns(self):
        with pytest.warns(DeprecationWarning, match="analyze_many is deprecated"):
            ContractChecker().analyze_many([COUNTER])

    def test_find_clones_many_warns(self):
        detector = CloneDetector()
        detector.add_corpus([("w", WALLET)])
        with pytest.warns(DeprecationWarning, match="find_clones_many is deprecated"):
            detector.find_clones_many([("q", WALLET)])

    def test_validate_many_warns(self):
        validator = ContractValidator(timeout_seconds=10.0)
        candidate = ValidationCandidate(address="0xa", source=COUNTER, snippet_id="s")
        with pytest.warns(DeprecationWarning, match="validate_many is deprecated"):
            validator.validate_many([candidate])

    def test_single_item_entry_points_do_not_warn(self):
        detector = CloneDetector()
        detector.add_corpus([("w", WALLET)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ContractChecker().analyze(COUNTER)
            detector.find_clones(WALLET)
            ContractValidator(timeout_seconds=10.0).validate_candidate(
                ValidationCandidate(address="0xa", source=COUNTER, snippet_id="s"))


class TestShimSessionParity:
    """Shim results must be identical to the direct session path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_analyze_many_matches_session(self, backend):
        store = ArtifactStore()
        checker = ContractChecker(timeout=10.0, store=store)
        with make_executor(backend) as executor:
            with pytest.warns(DeprecationWarning):
                legacy = checker.analyze_many(SOURCES, executor=executor)
            with AnalysisSession(store=store, executor=executor) as session:
                envelopes = session.run(SOURCES, analyses=["ccc"],
                                        options={"ccc": {"checker": checker}})
        assert [ccc_fields(r) for r in legacy] == \
            [ccc_fields(e.payload) for e in envelopes]
        assert any(result.findings for result in legacy)
        assert legacy[-1].parse_error is not None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_find_clones_many_matches_session(self, backend):
        store = ArtifactStore()
        detector = CloneDetector(similarity_threshold=0.7, store=store)
        detector.add_corpus([("wallet", WALLET), ("counter", COUNTER)])
        queries = [("q1", WALLET), ("q2", LOTTERY), ("q3", UNPARSABLE)]
        with make_executor(backend) as executor:
            with pytest.warns(DeprecationWarning):
                legacy = detector.find_clones_many(queries, executor=executor)
            with AnalysisSession(store=store, executor=executor) as session:
                envelopes = session.run(queries, analyses=["ccd"],
                                        options={"ccd": {"detector": detector}})
        assert legacy == [(query_id, envelope.payload)
                          for (query_id, _), envelope in zip(queries, envelopes)]
        assert legacy[0][1] and legacy[0][1][0].document_id == "wallet"
        assert legacy[2][1] is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_validate_many_matches_session(self, backend):
        store = ArtifactStore()
        validator = ContractValidator(
            timeout_seconds=10.0, checker=ContractChecker(store=store))
        candidates = [
            ValidationCandidate(address="0xa", source=WALLET, snippet_id="s1",
                                query_ids=("reentrancy-call-before-write",)),
            ValidationCandidate(address="0xb", source=LOTTERY, snippet_id="s2",
                                query_ids=("time-manipulation-timestamp",)),
            ValidationCandidate(address="0xc", source=COUNTER, snippet_id="s3",
                                query_ids=("reentrancy-call-before-write",)),
        ]
        with make_executor(backend) as executor:
            with pytest.warns(DeprecationWarning):
                legacy = validator.validate_many(candidates, executor=executor)
            with AnalysisSession(store=store, executor=executor) as session:
                envelopes = session.run(candidates, analyses=["validate"],
                                        options={"validate": {"validator": validator}})
        assert [outcome_fields(o) for o in legacy] == \
            [outcome_fields(e.payload) for e in envelopes]
        assert legacy[0].vulnerable and legacy[1].vulnerable
        assert not legacy[2].vulnerable

    def test_shims_do_not_close_the_callers_executor(self):
        executor = make_executor("thread")
        checker = ContractChecker()
        with pytest.warns(DeprecationWarning):
            checker.analyze_many([COUNTER], executor=executor)
        # still usable: the ephemeral shim session adopted, not owned, it
        assert executor.map(len, ["abc"]) == [3]
        executor.close()
