"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.ccd.fuzzyhash import BASE64_ALPHABET, fuzzy_hash_tokens
from repro.ccd.ngram_index import NGramIndex, ngrams
from repro.ccd.similarity import edit_distance, order_independent_similarity, sub_fingerprint_similarity
from repro.cpg import build_cpg
from repro.cpg.graph import EdgeLabel
from repro.metrics import ConfusionCounts, spearman_rho
from repro.solidity.errors import SolidityParseError
from repro.solidity.lexer import tokenize, TokenType
from repro.solidity.parser import parse_snippet

short_text = st.text(alphabet=string.ascii_letters + string.digits, max_size=24)
tokens_strategy = st.lists(st.text(alphabet=string.ascii_letters + "._();=", min_size=1, max_size=10),
                           max_size=60)


class TestEditDistanceProperties:
    @given(short_text, short_text)
    def test_symmetry(self, first, second):
        assert edit_distance(first, second) == edit_distance(second, first)

    @given(short_text)
    def test_identity(self, text):
        assert edit_distance(text, text) == 0

    @given(short_text, short_text)
    def test_bounded_by_longest(self, first, second):
        assert edit_distance(first, second) <= max(len(first), len(second))

    @given(short_text, short_text)
    def test_at_least_length_difference(self, first, second):
        assert edit_distance(first, second) >= abs(len(first) - len(second))

    @settings(max_examples=30)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestSimilarityProperties:
    @given(short_text, short_text)
    def test_sub_similarity_bounded(self, first, second):
        score = sub_fingerprint_similarity(first, second)
        assert 0.0 <= score <= 100.0

    @given(st.lists(short_text.filter(bool), min_size=1, max_size=5))
    def test_identical_fingerprints_score_100(self, subs):
        assert order_independent_similarity(subs, subs) == 100.0

    @given(st.lists(short_text.filter(bool), min_size=1, max_size=4),
           st.lists(short_text.filter(bool), min_size=1, max_size=4))
    def test_order_independent_score_bounded(self, first, second):
        score = order_independent_similarity(first, second)
        assert 0.0 <= score <= 100.0

    @given(st.lists(short_text.filter(bool), min_size=1, max_size=4))
    def test_permutation_invariance_of_second_argument(self, subs):
        reordered = list(reversed(subs))
        assert order_independent_similarity(subs, reordered) == 100.0


class TestFuzzyHashProperties:
    @given(tokens_strategy)
    def test_deterministic(self, tokens):
        assert fuzzy_hash_tokens(tokens) == fuzzy_hash_tokens(tokens)

    @given(tokens_strategy)
    def test_alphabet(self, tokens):
        assert set(fuzzy_hash_tokens(tokens)) <= set(BASE64_ALPHABET)

    @given(tokens_strategy)
    def test_digest_not_longer_than_input(self, tokens):
        assert len(fuzzy_hash_tokens(tokens)) <= max(1, len(tokens)) if tokens else True

    @given(tokens_strategy, tokens_strategy)
    def test_concatenation_starts_with_common_prefix(self, head, tail):
        first = fuzzy_hash_tokens(head + tail)
        second = fuzzy_hash_tokens(head + tail)
        assert first == second


class TestNGramIndexProperties:
    @given(st.text(alphabet=BASE64_ALPHABET, min_size=1, max_size=40), st.integers(1, 5))
    def test_every_indexed_document_is_its_own_candidate(self, fingerprint, size):
        index = NGramIndex(ngram_size=size)
        index.add("doc", fingerprint)
        assert "doc" in index.candidates(fingerprint, 1.0)

    @given(st.text(alphabet=BASE64_ALPHABET, max_size=40), st.integers(1, 5))
    def test_ngrams_no_longer_than_text(self, text, size):
        grams = ngrams(text, size)
        assert all(len(gram) <= max(size, len(text)) for gram in grams)

    @given(st.text(alphabet=BASE64_ALPHABET, min_size=1, max_size=40))
    def test_overlap_of_self_is_one(self, fingerprint):
        index = NGramIndex(ngram_size=3)
        index.add("doc", fingerprint)
        assert index.overlap(fingerprint, "doc") == 1.0


class TestMetricsProperties:
    @given(st.lists(st.integers(0, 1000), min_size=3, max_size=50),
           st.lists(st.integers(0, 1000), min_size=3, max_size=50))
    def test_spearman_bounded(self, first, second):
        size = min(len(first), len(second))
        rho, p_value = spearman_rho(first[:size], second[:size])
        assert -1.0 <= rho <= 1.0
        assert 0.0 <= p_value <= 1.0

    @given(st.integers(0, 500), st.integers(0, 500), st.integers(0, 500))
    def test_confusion_metrics_bounded(self, tp, fp, fn):
        counts = ConfusionCounts(true_positives=tp, false_positives=fp, false_negatives=fn)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f1 <= 1.0


solidity_fragments = st.sampled_from([
    "uint x = 1;",
    "msg.sender.transfer(amount);",
    "function f(uint a) public { total += a; }",
    "require(balances[msg.sender] >= amount);",
    "if (now > deadline) { winner = msg.sender; }",
    "for (uint i = 0; i < n; i++) { sum += i; }",
    "contract C { uint x; }",
    "emit Transfer(msg.sender, to, value);",
])


class TestParserRobustness:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(solidity_fragments, min_size=1, max_size=6))
    def test_concatenated_fragments_parse(self, fragments):
        unit = parse_snippet("\n".join(fragments))
        assert unit.items

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=200))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_snippet(text)
        except SolidityParseError:
            pass  # rejection is fine; crashes are not

    @settings(max_examples=40, deadline=None)
    @given(st.text(max_size=120))
    def test_lexer_always_terminates_with_eof(self, text):
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.EOF

    @settings(max_examples=20, deadline=None)
    @given(st.lists(solidity_fragments, min_size=1, max_size=4))
    def test_cpg_construction_never_crashes_on_valid_fragments(self, fragments):
        graph = build_cpg("\n".join(fragments))
        assert len(graph) > 0
        # EOG never leaves a Rollback node
        for rollback in graph.nodes_by_label("Rollback"):
            assert not graph.out_edges(rollback, EdgeLabel.EOG)
