"""Cluster tests: sharded scatter-gather serving with byte parity.

The headline claim of `repro.service.coordinator` is that a cluster is
*invisible in the bytes*: a coordinator fronting N workers answers every
job byte-identically to one daemon holding the whole corpus.  These
tests assert that claim across shard counts and detector thresholds,
plus the operational half of the story — consistent-hash ingest
routing, rebalancing that touches only moved keys, kill-and-restart
durability for workers and the coordinator, and explicit degraded-mode
reporting when a shard stays down (via ``tests/cluster_harness.py``,
which spawns real subprocesses).
"""

from __future__ import annotations

import json
import random
import time
from contextlib import contextmanager

import pytest

import cluster_harness
from repro.api.envelope import canonical_json
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline.collection import SnippetCollector
from repro.service import (
    AnalysisService,
    ClusterCoordinator,
    CoordinatorConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.coordinator import (
    CorpusJournal,
    canonical_match_key,
    default_shard_names,
    merge_shard_results,
)
from repro.service.hashring import HashRing, partition
from repro.service.jobstore import JobStore


@pytest.fixture(scope="module")
def corpora():
    """Deterministic synthetic corpus: contracts to ingest, snippets to query."""
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 4, "ethereum.stackexchange": 8})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=4)
    contracts = [(contract.address, contract.source)
                 for contract in sanctuary.contracts]
    snippets = [(snippet.snippet_id, snippet.text)
                for snippet in SnippetCollector().collect(qa_corpus).snippets]
    return contracts, snippets


def worker_config(tmp_path, name, **overrides) -> ServiceConfig:
    options = dict(data_dir=str(tmp_path / name), port=0, backend="serial")
    options.update(overrides)
    return ServiceConfig(**options)


@contextmanager
def in_process_cluster(tmp_path, shard_count, tag="", **worker_overrides):
    """N in-process worker daemons plus an in-process coordinator."""
    workers = []
    coordinator = None
    try:
        for index in range(shard_count):
            service = AnalysisService(
                worker_config(tmp_path, f"{tag}worker-{index}",
                              **worker_overrides))
            service.start()
            workers.append(service)
        coordinator = ClusterCoordinator(CoordinatorConfig(
            data_dir=str(tmp_path / f"{tag}coordinator"), port=0,
            workers=tuple(worker.url for worker in workers),
            connect_timeout=5.0, shard_timeout=60.0))
        coordinator.start()
        yield coordinator, workers
    finally:
        if coordinator is not None:
            coordinator.stop()
        for worker in workers:
            worker.stop()


def run_job_bytes(url, sources, analyses, options=None, timeout=180.0):
    """Submit and wait; returns the canonical bytes of every envelope."""
    client = ServiceClient(url, connect_timeout=5.0)
    job = client.submit(sources, analyses=analyses, options=options)
    finished = client.wait(job["id"], timeout=timeout)
    return [canonical_json(envelope) for envelope in finished["results"]], \
        finished["job"]


def single_node_bytes(tmp_path, tag, contracts, sources, analyses,
                      options=None, **overrides):
    """Reference run: one daemon holding the whole corpus."""
    with AnalysisService(worker_config(tmp_path, tag, **overrides)) as service:
        ServiceClient(service.url).ingest(contracts)
        lines, _job = run_job_bytes(service.url, sources, analyses, options)
        return lines


# ---------------------------------------------------------------------------
# the hash ring
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"0x{i:040x}" for i in range(200)] + list(range(50))
        first = HashRing(["shard-0", "shard-1", "shard-2"])
        second = HashRing(["shard-2", "shard-0", "shard-1"])  # order-free
        assert first.assignments(keys) == second.assignments(keys)

    def test_every_key_owned_and_distribution_reasonable(self):
        ring = HashRing(default_shard_names(4))
        keys = [f"doc-{i}" for i in range(2000)]
        assignments = ring.assignments(keys)
        counts = {name: 0 for name in ring.nodes}
        for owner in assignments.values():
            counts[owner] += 1
        assert sum(counts.values()) == len(keys)
        # 64 virtual points per node keep the imbalance moderate
        assert min(counts.values()) > len(keys) / 4 / 3

    def test_adding_a_node_moves_keys_only_to_it(self):
        keys = [f"doc-{i}" for i in range(1500)]
        before = HashRing(default_shard_names(3))
        after = HashRing(default_shard_names(4))
        moved = before.moved_keys(keys, after)
        assert 0 < len(moved) < len(keys) / 2  # roughly 1/4 moves
        for key in moved:
            assert after.owner(key) == "shard-3"
        for key in set(keys) - set(moved):
            assert before.owner(key) == after.owner(key)

    def test_remove_is_inverse_of_add(self):
        ring = HashRing(default_shard_names(3))
        ring.add("shard-3")
        ring.remove("shard-3")
        reference = HashRing(default_shard_names(3))
        keys = [f"doc-{i}" for i in range(300)]
        assert ring.assignments(keys) == reference.assignments(keys)
        assert "shard-3" not in ring

    def test_empty_ring_refuses_ownership(self):
        with pytest.raises(ValueError):
            HashRing().owner("doc")

    def test_str_and_int_ids_do_not_collide(self):
        ring = HashRing(default_shard_names(5))
        # repr-hashing means "7" and 7 are distinct keys (they may land
        # anywhere, but they are hashed as different strings)
        assert ring.owner("7") == ring.owner("7")
        assert ring.owner(7) == ring.owner(7)

    def test_partition_preserves_batch_order(self):
        ring = HashRing(default_shard_names(2))
        documents = [(f"doc-{i}", f"source {i}") for i in range(40)]
        batches = partition(documents, ring)
        assert sorted(sum(batches.values(), [])) == sorted(documents)
        for name, batch in batches.items():
            assert all(ring.owner(document_id) == name
                       for document_id, _source in batch)
            indexes = [documents.index(pair) for pair in batch]
            assert indexes == sorted(indexes)


# ---------------------------------------------------------------------------
# canonical envelope merge ordering (property-based)
# ---------------------------------------------------------------------------
def _random_payload(rng, size):
    """A random ccd payload in canonical order, with similarity ties."""
    similarities = [rng.random() for _ in range(max(1, size // 2))]
    matches = [
        {"document_id": f"0x{rng.randrange(16 ** 8):08x}-{index}",
         "similarity": rng.choice(similarities)}
        for index in range(size)
    ]
    matches.sort(key=canonical_match_key)
    return matches


def _random_stream(rng):
    """A full result stream mixing ccd, ccc-style, and null payloads."""
    envelopes = []
    for position in range(rng.randrange(1, 8)):
        kind = rng.choice(["ccd", "ccd", "ccd-null", "ccc"])
        if kind == "ccd":
            payload = _random_payload(rng, rng.randrange(0, 12))
            envelopes.append({"analyzer": "ccd",
                              "contract_id": f"q{position}",
                              "payload": payload})
        elif kind == "ccd-null":
            envelopes.append({"analyzer": "ccd",
                              "contract_id": f"q{position}",
                              "payload": None})
        else:
            envelopes.append({"analyzer": "ccc",
                              "contract_id": f"q{position}",
                              "payload": {"findings": [], "vulnerable": False}})
    return envelopes


class TestMergeOrdering:
    @pytest.mark.parametrize("seed", range(12))
    def test_any_partition_in_any_arrival_order_reproduces_the_bytes(self, seed):
        rng = random.Random(seed)
        envelopes = _random_stream(rng)
        expected = [canonical_json(envelope) for envelope in envelopes]
        shard_count = rng.randrange(1, 6)
        # partition every ccd payload match-by-match across the shards;
        # corpus-independent envelopes appear identically on every shard
        shard_streams = [[] for _ in range(shard_count)]
        for envelope in envelopes:
            if envelope["analyzer"] == "ccd" and envelope["payload"] is not None:
                slices = [[] for _ in range(shard_count)]
                for match in envelope["payload"]:
                    slices[rng.randrange(shard_count)].append(match)
                for stream, piece in zip(shard_streams, slices):
                    # each shard emits its slice canonically sorted, the
                    # way a real worker does
                    piece.sort(key=canonical_match_key)
                    stream.append(canonical_json(
                        {**envelope, "payload": piece}))
            else:
                for stream in shard_streams:
                    stream.append(canonical_json(envelope))
        rng.shuffle(shard_streams)  # arrival order across shards is free too
        assert merge_shard_results(shard_streams) == expected

    def test_single_shard_stream_passes_through_verbatim(self):
        lines = [canonical_json({"analyzer": "ccd", "contract_id": "q",
                                 "payload": []})]
        assert merge_shard_results([lines]) == lines

    def test_misaligned_streams_are_refused(self):
        first = [canonical_json({"analyzer": "ccd", "contract_id": "a",
                                 "payload": []})]
        second = [canonical_json({"analyzer": "ccd", "contract_id": "b",
                                  "payload": []})]
        with pytest.raises(ValueError):
            merge_shard_results([first, second])
        with pytest.raises(ValueError):
            merge_shard_results([first, first + second])

    def test_non_scatter_analyses_pass_through_from_first_shard(self):
        envelope = {"analyzer": "ccc", "contract_id": "q",
                    "payload": {"findings": ["f"], "vulnerable": True}}
        line = canonical_json(envelope)
        assert merge_shard_results([[line], [line], [line]]) == [line]


# ---------------------------------------------------------------------------
# fan-out bookkeeping in the job store
# ---------------------------------------------------------------------------
class TestFanoutBookkeeping:
    def test_fanout_round_trips_and_recover_clears_it(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        job = store.submit([["q", "x = 1"]], ["ccd"])
        claimed = store.claim_next()
        fanout = {"shards": {"shard-0": 7, "shard-1": 9}, "degraded": ["shard-2"]}
        store.set_fanout(claimed.job_id, fanout)
        assert store.get(job.job_id).fanout == fanout
        assert store.get(job.job_id).as_dict()["fanout"] == fanout
        # a killed coordinator requeues the job with the fan-out wiped:
        # the rerun dispatches fresh sub-jobs, never trusts stale ids
        assert store.recover() == 1
        recovered = store.get(job.job_id)
        assert recovered.state == "queued"
        assert recovered.fanout is None
        assert "fanout" not in recovered.as_dict()
        store.close()

    def test_pre_fanout_databases_are_migrated(self, tmp_path):
        import sqlite3

        path = tmp_path / "jobs.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript("""
            CREATE TABLE jobs (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                state TEXT NOT NULL DEFAULT 'queued',
                analyses TEXT NOT NULL, corpus TEXT NOT NULL,
                options TEXT NOT NULL DEFAULT '{}', error TEXT,
                submitted REAL NOT NULL, started REAL, finished REAL);
            CREATE TABLE job_results (
                job_id INTEGER NOT NULL, seq INTEGER NOT NULL,
                envelope TEXT NOT NULL, PRIMARY KEY (job_id, seq));
            INSERT INTO jobs (state, analyses, corpus, options, submitted)
            VALUES ('queued', '["ccd"]', '[["q", "x = 1"]]', '{}', 1.0);
        """)
        connection.commit()
        connection.close()
        store = JobStore(path)
        job = store.get(1)
        assert job.state == "queued" and job.fanout is None
        store.set_fanout(1, {"shards": {}, "degraded": []})
        assert store.get(1).fanout == {"shards": {}, "degraded": []}
        store.close()


class TestCorpusJournal:
    def test_round_trip_reassign_and_forget(self, tmp_path):
        journal = CorpusJournal(tmp_path / "corpus.sqlite")
        journal.record("0xabc", "contract A { }", "shard-0")
        journal.record(7, "contract B { }", "shard-1")
        journal.record("7", "contract C { }", "shard-0")  # int/str distinct
        assert journal.count() == 3
        assert journal.assignments() == {"0xabc": "shard-0", 7: "shard-1",
                                         "7": "shard-0"}
        assert journal.sources([7]) == [(7, "contract B { }")]
        journal.reassign(7, "shard-0")
        assert journal.assignments()[7] == "shard-0"
        assert journal.per_shard_counts() == {"shard-0": 3}
        journal.forget("7")
        assert journal.count() == 2
        journal.close()
        # durable across a close/reopen, like every other daemon store
        reopened = CorpusJournal(tmp_path / "corpus.sqlite")
        assert reopened.assignments() == {"0xabc": "shard-0", 7: "shard-0"}
        reopened.close()


# ---------------------------------------------------------------------------
# cross-shard byte parity (in-process daemons over real HTTP)
# ---------------------------------------------------------------------------
class TestClusterParity:
    #: the η (ngram prefilter) / ε (similarity) grid of the parity sweep
    GRID = ((0.5, 0.7), (0.35, 0.85))

    @pytest.mark.parametrize("shard_count", (1, 2, 4))
    @pytest.mark.parametrize("eta,epsilon", GRID)
    def test_merged_bytes_equal_single_node(self, tmp_path, corpora,
                                            shard_count, eta, epsilon):
        contracts, snippets = corpora
        sources = snippets[:8]
        thresholds = dict(ngram_threshold=eta, similarity_threshold=epsilon)
        expected = single_node_bytes(
            tmp_path, "single", contracts, sources, ["ccd", "ccc"],
            **thresholds)
        with in_process_cluster(tmp_path, shard_count, **thresholds) as (
                coordinator, _workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            summary = client.ingest(contracts)
            assert summary["documents"] == len(contracts)
            merged, job = run_job_bytes(
                coordinator.url, sources, ["ccd", "ccc"])
        assert merged == expected
        assert job["fanout"]["degraded"] == []
        assert len(job["fanout"]["shards"]) == shard_count

    def test_non_resident_ccd_is_passed_through_not_merged(self, tmp_path,
                                                           corpora):
        contracts, snippets = corpora
        sources = snippets[:6]
        options = {"ccd": {"resident": False}}
        expected = single_node_bytes(
            tmp_path, "single-nr", contracts, sources, ["ccd"], options)
        with in_process_cluster(tmp_path, 2) as (coordinator, _workers):
            ServiceClient(coordinator.url, connect_timeout=5.0).ingest(contracts)
            merged, _job = run_job_bytes(
                coordinator.url, sources, ["ccd"], options)
        # self-indexing jobs are corpus-independent: every shard computes
        # the identical payload and the coordinator must not union-merge
        # N copies of it
        assert merged == expected

    def test_ingest_routes_by_ring_and_corpus_endpoint_agrees(self, tmp_path,
                                                              corpora):
        contracts, _snippets = corpora
        with in_process_cluster(tmp_path, 3) as (coordinator, workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            client.ingest(contracts)
            ring = HashRing(default_shard_names(3))
            expected = {name: sorted(
                (document_id for document_id, _source in contracts
                 if ring.owner(document_id) == name), key=str)
                for name in ring.nodes}
            routed = client.corpus()
            assert routed["shards"] == expected
            for name, worker in zip(default_shard_names(3), workers):
                held = ServiceClient(worker.url).corpus()["documents"]
                assert held == expected[name]

    def test_submit_validation_fails_fast_without_touching_workers(
            self, tmp_path):
        with in_process_cluster(tmp_path, 2) as (coordinator, workers):
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            with pytest.raises(ServiceError) as excinfo:
                client.submit([["q", "x = 1"]], analyses=["nope"])
            assert excinfo.value.status == 400
            for worker in workers:
                assert ServiceClient(worker.url).jobs() == []


class TestDegradedMode:
    def test_dead_worker_degrades_health_stats_and_jobs(self, tmp_path,
                                                        corpora):
        contracts, snippets = corpora
        workers = []
        coordinator = None
        try:
            for index in range(2):
                service = AnalysisService(
                    worker_config(tmp_path, f"dm-worker-{index}"))
                service.start()
                workers.append(service)
            coordinator = ClusterCoordinator(CoordinatorConfig(
                data_dir=str(tmp_path / "dm-coordinator"), port=0,
                workers=tuple(worker.url for worker in workers),
                connect_timeout=0.5, shard_timeout=5.0))
            coordinator.start()
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            client.ingest(contracts)
            survivors = ServiceClient(workers[0].url).corpus()["documents"]
            workers[1].stop()  # shard-1 goes dark and stays dark

            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degraded"] == ["shard-1"]
            assert health["shards"]["shard-0"]["status"] == "ok"
            stats = client.stats()
            assert "error" in stats["shards"]["shard-1"]
            cluster = client.cluster()
            assert cluster["status"] == "degraded"
            assert cluster["workers"]["shard-1"]["status"] == "unreachable"

            # the job COMPLETES, with an explicit degraded-shards report —
            # not a hang, not a silent partial result
            merged, job = run_job_bytes(
                coordinator.url, snippets[:4], ["ccd", "ccc"], timeout=60.0)
            assert job["state"] == "done"
            assert job["fanout"]["degraded"] == ["shard-1"]
            for line in merged:
                envelope = json.loads(line)
                if envelope["analyzer"] == "ccd" and envelope["payload"]:
                    assert all(match["document_id"] in survivors
                               for match in envelope["payload"])
        finally:
            if coordinator is not None:
                coordinator.stop()
            for worker in workers:
                worker.stop()

    def test_all_shards_down_fails_the_job_explicitly(self, tmp_path):
        worker = AnalysisService(worker_config(tmp_path, "ad-worker"))
        worker.start()
        coordinator = ClusterCoordinator(CoordinatorConfig(
            data_dir=str(tmp_path / "ad-coordinator"), port=0,
            workers=(worker.url,), connect_timeout=0.3, shard_timeout=2.0))
        coordinator.start()
        try:
            worker.stop()
            client = ServiceClient(coordinator.url, connect_timeout=5.0)
            job = client.submit([["q", "x = 1"]], analyses=["ccd"])
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                state = client.job(job["id"], results=False)["job"]
                if state["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert state["state"] == "failed"
            assert "unreachable" in state["error"]
            assert state["fanout"]["degraded"] == ["shard-0"]
        finally:
            coordinator.stop()
            worker.stop()


# ---------------------------------------------------------------------------
# real subprocesses: kills, restarts, rebalancing (the cluster harness)
# ---------------------------------------------------------------------------
class TestClusterSubprocess:
    #: ``repro serve`` defaults ε to 0.9 (the paper's clone threshold)
    #: while ServiceConfig defaults to 0.7 — the in-process reference
    #: runs must match what the spawned CLI daemons actually use
    CLI_THRESHOLDS = dict(ngram_threshold=0.5, similarity_threshold=0.9)

    @pytest.fixture()
    def cluster(self, tmp_path):
        handle = cluster_harness.spawn_cluster(
            tmp_path / "cluster", 2,
            coordinator_extra=("--connect-timeout", "15",
                               "--shard-timeout", "120"))
        yield handle
        handle.stop()

    def test_subprocess_parity_with_single_node(self, tmp_path, corpora,
                                                cluster):
        contracts, snippets = corpora
        sources = snippets[:6]
        expected = single_node_bytes(
            tmp_path, "sp-single", contracts, sources, ["ccd", "ccc"],
            **self.CLI_THRESHOLDS)
        client = cluster.client()
        client.ingest(contracts)
        merged, job = run_job_bytes(
            cluster.coordinator.url, sources, ["ccd", "ccc"])
        assert merged == expected
        assert job["fanout"]["degraded"] == []

    def test_worker_killed_mid_job_and_restarted_still_byte_identical(
            self, tmp_path, corpora, cluster):
        contracts, snippets = corpora
        expected = single_node_bytes(
            tmp_path, "wk-single", contracts, snippets, ["ccd", "ccc"],
            **self.CLI_THRESHOLDS)
        client = cluster.client()
        client.ingest(contracts)
        job = client.submit(snippets, analyses=["ccd", "ccc"])
        # SIGKILL one worker while the fan-out is (very likely) in
        # flight; its own job store requeues the sub-job on restart
        time.sleep(0.3)
        cluster.workers[1].kill()
        time.sleep(0.5)
        cluster.restart_worker(1)
        finished = client.wait(job["id"], timeout=180.0)
        merged = [canonical_json(envelope)
                  for envelope in finished["results"]]
        assert merged == expected
        assert finished["job"]["fanout"]["degraded"] == []

    def test_coordinator_killed_mid_fanout_recovers_and_reruns(
            self, tmp_path, corpora, cluster):
        contracts, snippets = corpora
        expected = single_node_bytes(
            tmp_path, "ck-single", contracts, snippets, ["ccd", "ccc"],
            **self.CLI_THRESHOLDS)
        client = cluster.client()
        client.ingest(contracts)
        job = client.submit(snippets, analyses=["ccd", "ccc"])
        time.sleep(0.3)
        cluster.coordinator.kill()  # SIGKILL mid-fan-out
        cluster.restart_coordinator()
        client = cluster.client()
        finished = client.wait(job["id"], timeout=180.0)
        merged = [canonical_json(envelope)
                  for envelope in finished["results"]]
        assert merged == expected
        assert finished["job"]["state"] == "done"

    def test_worker_that_stays_down_yields_explicit_degraded_report(
            self, tmp_path, corpora):
        contracts, snippets = corpora
        cluster = cluster_harness.spawn_cluster(
            tmp_path / "dg-cluster", 2,
            coordinator_extra=("--connect-timeout", "1",
                               "--shard-timeout", "8"))
        try:
            client = cluster.client()
            client.ingest(contracts)
            cluster.workers[1].kill()
            finished = client.wait(
                client.submit(snippets[:4], analyses=["ccd"])["id"],
                timeout=120.0)
            assert finished["job"]["state"] == "done"
            assert finished["job"]["fanout"]["degraded"] == ["shard-1"]
        finally:
            cluster.stop()

    def test_rebalance_after_adding_a_worker_moves_only_moved_keys(
            self, tmp_path, corpora, cluster):
        contracts, _snippets = corpora
        client = cluster.client()
        client.ingest(contracts)
        ids = [document_id for document_id, _source in contracts]
        before = HashRing(default_shard_names(2))
        after = HashRing(default_shard_names(3))
        predicted_moved = sorted(before.moved_keys(ids, after), key=str)

        cluster.add_worker()
        cluster.coordinator.terminate()
        cluster.restart_coordinator()  # now fronting three workers
        client = cluster.client()
        report = client.rebalance()
        assert report["moved"] == predicted_moved
        # every moved key went to the new shard, nothing else changed
        expected = {name: sorted(
            (document_id for document_id in ids
             if after.owner(document_id) == name), key=str)
            for name in after.nodes}
        for name, worker in zip(default_shard_names(3), cluster.workers):
            held = worker.client().corpus()["documents"]
            assert held == expected[name]
        assert client.corpus()["shards"] == expected
        # a second rebalance is a no-op: owners already match the ring
        assert client.rebalance()["moved"] == []
