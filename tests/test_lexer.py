"""Unit tests for the tolerant Solidity lexer."""

import pytest

from repro.solidity.lexer import Lexer, Token, TokenType, is_elementary_type, tokenize


def token_values(source, token_type=None):
    tokens = tokenize(source)
    if token_type is None:
        return [t.value for t in tokens if t.type is not TokenType.EOF]
    return [t.value for t in tokens if t.type is token_type]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifier(self):
        assert token_values("owner", TokenType.IDENTIFIER) == ["owner"]

    def test_keyword(self):
        assert token_values("contract", TokenType.KEYWORD) == ["contract"]

    def test_number(self):
        assert token_values("42", TokenType.NUMBER) == ["42"]

    def test_decimal_number(self):
        assert token_values("0.5", TokenType.NUMBER) == ["0.5"]

    def test_scientific_number(self):
        assert token_values("1e18", TokenType.NUMBER) == ["1e18"]

    def test_number_with_underscores(self):
        assert token_values("1_000_000", TokenType.NUMBER) == ["1_000_000"]

    def test_hex_literal(self):
        assert token_values("0xABCDEF", TokenType.HEX_LITERAL) == ["0xABCDEF"]

    def test_string_double_quotes(self):
        assert token_values('"hello"', TokenType.STRING) == ["hello"]

    def test_string_single_quotes(self):
        assert token_values("'hi'", TokenType.STRING) == ["hi"]

    def test_string_with_escape(self):
        values = token_values(r'"a\"b"', TokenType.STRING)
        assert len(values) == 1

    def test_unterminated_string_stops_at_newline(self):
        tokens = tokenize('"unterminated\nuint x;')
        assert any(t.type is TokenType.STRING for t in tokens)
        assert any(t.value == "x" for t in tokens)

    def test_punctuation(self):
        assert token_values("(){};,", TokenType.PUNCTUATION) == ["(", ")", "{", "}", ";", ","]

    def test_operators_maximal_munch(self):
        assert token_values("a >= b", TokenType.OPERATOR) == [">="]

    def test_compound_assignment_operator(self):
        assert token_values("x += 1", TokenType.OPERATOR) == ["+="]

    def test_arrow_operator_for_mappings(self):
        assert "=>" in token_values("mapping(address => uint)", TokenType.OPERATOR)

    def test_ellipsis_is_dedicated_token(self):
        assert token_values("...", TokenType.ELLIPSIS) == ["..."]

    def test_increment_operator(self):
        assert token_values("i++", TokenType.OPERATOR) == ["++"]

    def test_power_operator(self):
        assert token_values("2 ** 8", TokenType.OPERATOR) == ["**"]

    def test_logical_operators(self):
        assert token_values("a && b || c", TokenType.OPERATOR) == ["&&", "||"]


class TestCommentsAndNewlines:
    def test_line_comment_is_skipped(self):
        values = token_values("uint x; // the counter")
        assert "counter" not in values

    def test_block_comment_is_skipped(self):
        values = token_values("uint /* comment */ x;")
        assert "comment" not in values

    def test_multiline_block_comment(self):
        values = token_values("uint x;\n/* a\nb\nc */\nuint y;")
        assert "y" in values and "b" not in values

    def test_newline_flag_set_on_following_token(self):
        tokens = tokenize("a = 1\nb = 2")
        b_token = next(t for t in tokens if t.value == "b")
        assert b_token.preceded_by_newline is True

    def test_newline_flag_not_set_within_line(self):
        tokens = tokenize("a = 1; b = 2")
        b_token = next(t for t in tokens if t.value == "b")
        assert b_token.preceded_by_newline is False

    def test_comment_followed_by_newline_preserves_flag(self):
        tokens = tokenize("a = 1 // end\nb = 2")
        b_token = next(t for t in tokens if t.value == "b")
        assert b_token.preceded_by_newline is True


class TestLocations:
    def test_line_numbers(self):
        tokens = tokenize("uint x;\nuint y;")
        y_token = next(t for t in tokens if t.value == "y")
        assert y_token.line == 2

    def test_column_numbers(self):
        tokens = tokenize("uint x;")
        x_token = next(t for t in tokens if t.value == "x")
        assert x_token.column == 6

    def test_unknown_character_becomes_error_token(self):
        tokens = tokenize("uint x; §")
        assert any(t.type is TokenType.ERROR for t in tokens)


class TestTokenHelpers:
    def test_is_punct(self):
        token = Token(TokenType.PUNCTUATION, ";", 1, 1)
        assert token.is_punct(";") and not token.is_punct(",")

    def test_is_keyword(self):
        token = Token(TokenType.KEYWORD, "function", 1, 1)
        assert token.is_keyword("function")

    def test_is_identifier_with_and_without_value(self):
        token = Token(TokenType.IDENTIFIER, "owner", 1, 1)
        assert token.is_identifier() and token.is_identifier("owner") and not token.is_identifier("x")

    def test_repr_contains_value(self):
        token = Token(TokenType.IDENTIFIER, "owner", 3, 7)
        assert "owner" in repr(token)


class TestElementaryTypes:
    @pytest.mark.parametrize("name", ["uint", "uint256", "uint8", "int", "int128",
                                      "address", "bool", "bytes", "bytes32", "string", "var"])
    def test_elementary_type_names(self, name):
        assert is_elementary_type(name) is True

    @pytest.mark.parametrize("name", ["MyToken", "Owned", "balances", "uintx", "bytesY"])
    def test_non_elementary_names(self, name):
        assert is_elementary_type(name) is False

    def test_full_contract_token_count_is_reasonable(self):
        source = "contract C { function f(uint a) public returns (uint) { return a + 1; } }"
        tokens = tokenize(source)
        assert 20 <= len(tokens) <= 40
