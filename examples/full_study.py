"""Run the complete vulnerable-code-reuse study end to end (Figure 6).

Generates a synthetic Q&A corpus and deployed-contract corpus, runs every
pipeline stage (collection, clone mapping, snippet analysis, temporal
filtering, two-phase validation), and prints the funnel (Table 7), the
DASP distribution (Table 6), and the popularity correlations (Table 5).

All stages share a parse-once :class:`~repro.core.artifacts.ArtifactStore`
and run their hot loops through a configurable executor backend.  With a
cache directory, the store is a disk-backed
:class:`~repro.core.persistence.DiskArtifactStore` — run the script twice
with the same directory and the second run performs zero parses.

Run with ``python examples/full_study.py [serial|thread|process] [cache-dir]``.
"""

import sys

from repro.core.persistence import DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy
from repro.pipeline.report import render_cache_stats, render_study_report


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    cache_dir = sys.argv[2] if len(sys.argv) > 2 else None
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 60, "ethereum.stackexchange": 150})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=60)

    configuration = StudyConfiguration(
        ngram_size=3, ngram_threshold=0.5, similarity_threshold=0.9,
        validation_timeout_seconds=30.0, snippet_analysis_timeout_seconds=15.0,
        executor_backend=backend, artifact_cache_dir=cache_dir)
    with VulnerableCodeReuseStudy(configuration) as study:
        result = study.run(qa_corpus, sanctuary.contracts)
        print(render_study_report(result), end="")
        print()
        print(render_cache_stats(study.store.stats,
                                 label=f"artifact cache [{backend}]"))
        if isinstance(study.store, DiskArtifactStore):
            print(f"(rerun with the same cache directory {cache_dir!r} "
                  f"for a zero-parse warm start)")
            study.store.close()


if __name__ == "__main__":
    main()
