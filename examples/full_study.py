"""Run the complete vulnerable-code-reuse study end to end (Figure 6).

Generates a synthetic Q&A corpus and deployed-contract corpus, runs every
pipeline stage (collection, clone mapping, snippet analysis, temporal
filtering, two-phase validation), and prints the funnel (Table 7), the
DASP distribution (Table 6), and the popularity correlations (Table 5).

All stages share a parse-once :class:`~repro.core.artifacts.ArtifactStore`
and run their hot loops through a configurable executor backend.

Run with ``python examples/full_study.py [serial|thread|process]``.
"""

import sys

from repro.core import ArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import StudyConfiguration, VulnerableCodeReuseStudy
from repro.pipeline.report import render_table


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 60, "ethereum.stackexchange": 150})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=60)

    store = ArtifactStore()
    with VulnerableCodeReuseStudy(StudyConfiguration(
            ngram_size=3, ngram_threshold=0.5, similarity_threshold=0.9,
            validation_timeout_seconds=30.0, snippet_analysis_timeout_seconds=15.0,
            executor_backend=backend), store=store) as study:
        result = study.run(qa_corpus, sanctuary.contracts)

    funnel = result.funnel()
    print(render_table(["Stage", "Count"], list(funnel.items()),
                       title="Pipeline funnel (Table 7)"))

    print()
    distribution = result.dasp_distribution()
    print(render_table(["Vulnerability Category", "Snippets", "Contracts"],
                       [[category.value, counts["snippets"], counts["contracts"]]
                        for category, counts in distribution.items()],
                       title="DASP distribution (Table 6)"))

    print()
    print(render_table(["Group", "Sample", "Spearman rho", "p-value"],
                       [[c.category, c.sample_size, round(c.rho, 3), f"{c.p_value:.3g}"]
                        for c in result.correlations],
                       title="Views vs adoption (Table 5)"))

    print()
    print(f"validation: {result.validation.attempted} pairs attempted, "
          f"{result.validation.completed} completed "
          f"({result.validation.completed_phase1} in phase 1), "
          f"{result.validation.vulnerable} confirmed vulnerable")

    stats = store.stats
    print(f"artifact cache [{backend}]: {stats.hits}/{stats.lookups} hits "
          f"({stats.hit_rate:.1%}) — {stats.parse_calls} parses, "
          f"{stats.cpg_builds} CPG builds, {stats.fingerprint_builds} fingerprints")


if __name__ == "__main__":
    main()
