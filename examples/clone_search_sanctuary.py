"""Search deployed contracts for clones of vulnerable snippets.

Reproduces the contract-side half of the study: a Smart-Contract-Sanctuary
style corpus is indexed with CCD, vulnerable snippets are mapped onto it,
and the snippet/contract pairs are categorised temporally (Section 6.2).

Run with ``python examples/clone_search_sanctuary.py``.
"""

from repro.ccc import ContractChecker
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import SnippetCollector, categorize_pairs, correlate_views_with_adoption, map_snippets_to_contracts
from repro.pipeline.report import render_table


def main() -> None:
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 40, "ethereum.stackexchange": 100})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=50)
    print(f"deployed contracts: {len(sanctuary)}")

    collection = SnippetCollector().collect(qa_corpus)
    checker = ContractChecker(timeout=15.0)
    vulnerable_snippets = [snippet for snippet in collection.snippets
                           if checker.analyze(snippet.text).findings]
    print(f"unique snippets: {len(collection.snippets)}, vulnerable: {len(vulnerable_snippets)}")

    mapping = map_snippets_to_contracts(
        vulnerable_snippets, sanctuary.contracts,
        ngram_size=3, ngram_threshold=0.5, similarity_threshold=0.9)
    temporal = categorize_pairs(vulnerable_snippets, sanctuary.contracts, mapping)
    summary = temporal.summary()
    print(render_table(["Group", "Snippets", "Contracts"], [
        ["All", summary["all_snippets"], summary["all_contracts"]],
        ["Disseminator", summary["disseminator_snippets"], summary["disseminator_contracts"]],
        ["Source", summary["source_snippets"], summary["source_contracts"]],
    ], title="Temporal categorisation of vulnerable snippet clones"))

    correlations = correlate_views_with_adoption(vulnerable_snippets, sanctuary.contracts, temporal)
    print(render_table(["Group", "Sample", "Spearman rho", "p-value"],
                       [[c.category, c.sample_size, round(c.rho, 3), f"{c.p_value:.3g}"]
                        for c in correlations],
                       title="Popularity vs adoption"))

    # show a couple of concrete matches
    print("\nExample matches:")
    shown = 0
    for snippet in vulnerable_snippets:
        matches = mapping.matches.get(snippet.snippet_id, [])
        if not matches:
            continue
        address, score = matches[0]
        print(f"  snippet {snippet.snippet_id} ({snippet.site}, {snippet.views} views) -> "
              f"{address[:12]}... similarity {score:.1f}%")
        shown += 1
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
