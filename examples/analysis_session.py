"""Tour of the unified analysis API (``repro.api``).

Builds a synthetic deployed-contract corpus, then runs clone detection
and vulnerability checking through one :class:`~repro.api.AnalysisSession`
— batch first, then streaming — and registers a tiny custom analyzer to
show the registry extension point.  The batch and streaming runs produce
byte-identical canonical envelopes, and every unique source is parsed
exactly once for both analyzers.

Run with ``python examples/analysis_session.py [serial|thread|process]``.
"""

import sys

from repro.api import (
    AnalysisSession,
    Analyzer,
    AnalyzerRegistry,
    SessionConfig,
    register_analyzer,
)
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus

#: a private registry so the example does not pollute the process-wide one
EXAMPLE_REGISTRY = AnalyzerRegistry()


@register_analyzer("loc", registry=EXAMPLE_REGISTRY)
class LineCountAnalyzer(Analyzer):
    """A three-line custom analyzer: lines of code per contract."""

    title = "source line count"

    def analyze(self, session, state, request):
        """Count the request's source lines."""
        return request.source.count("\n") + 1


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 20, "ethereum.stackexchange": 40})
    contracts = generate_sanctuary(qa_corpus, seed=11, independent_contracts=20).contracts

    config = SessionConfig(backend=backend, max_workers=4, checker_timeout=15.0)
    with AnalysisSession(config) as session:
        # batch: materialize every envelope at once
        results = session.run(contracts, analyses=["ccd", "ccc"])
        with_clones = sum(1 for r in results if r.analyzer == "ccd" and r.payload)
        flagged = sum(1 for r in results
                      if r.analyzer == "ccc" and r.payload.findings)
        print(f"batch     [{backend}]: {len(results)} envelopes, "
              f"{with_clones} contracts with clones, {flagged} flagged")

        # streaming: identical canonical output, flat memory
        batch_canonical = [r.as_dict() for r in results]
        stream_canonical = [r.as_dict()
                            for r in session.run_iter(contracts, analyses=["ccd", "ccc"])]
        print(f"streaming [{backend}]: {len(stream_canonical)} envelopes, "
              f"byte-identical to batch: {stream_canonical == batch_canonical}")

        stats = session.stats
        print(f"parse-once: {stats.parse_calls} parses for "
              f"{len(contracts)} contracts across 2 analyzers "
              f"({stats.hits}/{stats.lookups} store hits)")

    # a custom analyzer runs through the same session machinery
    with AnalysisSession(registry=EXAMPLE_REGISTRY) as session:
        sizes = [r.payload for r in session.run(contracts[:5], analyses=["loc"])]
        print(f"custom 'loc' analyzer over 5 contracts: {sizes} lines")


if __name__ == "__main__":
    main()
