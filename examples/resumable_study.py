"""Kill-and-resume demo: a checkpointed study survives its process.

Runs the study with a :class:`~repro.pipeline.checkpoint.StudyCheckpoint`
and simulates a hard kill halfway through the CCC checking stage, then
resumes from the checkpoint directory and verifies the final report is
byte-identical to an uninterrupted reference run.

This is the library-level equivalent of::

    repro study run --checkpoint out/study     # ... killed with ^C ...
    repro study resume --checkpoint out/study

Run with ``python examples/resumable_study.py [checkpoint-dir]``.
"""

import sys
import tempfile

from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import (
    StudyCheckpoint,
    StudyConfiguration,
    VulnerableCodeReuseStudy,
    render_study_report,
)


class SimulatedKill(Exception):
    """Stands in for SIGKILL: aborts the run between two durable chunks."""


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="study-ck-")
    qa_corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 30, "ethereum.stackexchange": 70})
    sanctuary = generate_sanctuary(qa_corpus, seed=11, independent_contracts=30)
    configuration = StudyConfiguration(
        validation_timeout_seconds=15.0, snippet_analysis_timeout_seconds=10.0,
        checkpoint_chunk_size=16)

    def killer(stage: str, done: int, total: int) -> None:
        print(f"  [{stage}] chunk {done}/{total}")
        if stage == "checking" and done == 2:
            raise SimulatedKill()

    print(f"running with checkpoint {directory} (will die mid-checking) ...")
    try:
        with VulnerableCodeReuseStudy(configuration) as study:
            study.run(qa_corpus, sanctuary.contracts,
                      checkpoint=StudyCheckpoint(directory), progress=killer)
    except SimulatedKill:
        states = {row["stage"]: row["state"] for row in StudyCheckpoint(directory).summary()}
        print(f"killed. checkpoint state: {states}")

    print("resuming from the checkpoint directory ...")
    with VulnerableCodeReuseStudy(configuration) as study:
        resumed = study.run(qa_corpus, sanctuary.contracts,
                            checkpoint=StudyCheckpoint(directory))

    print("reference run (uninterrupted, no checkpoint) ...")
    with VulnerableCodeReuseStudy(configuration) as study:
        reference = study.run(qa_corpus, sanctuary.contracts)

    identical = render_study_report(resumed) == render_study_report(reference)
    print(f"resumed report byte-identical to uninterrupted run: {identical}")
    print()
    print(render_study_report(resumed), end="")


if __name__ == "__main__":
    main()
