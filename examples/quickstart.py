"""Quickstart: analyse a Q&A snippet with CCC and find its clones with CCD.

Run with ``python examples/quickstart.py``.
"""

from repro.ccc import ContractChecker
from repro.ccd import CloneDetector

# A code snippet as it might be posted in a Q&A answer: incomplete (no
# contract, no state-variable declarations) and missing a mitigation.
SNIPPET = """
function withdraw(uint amount) public {
    require(balances[msg.sender] >= amount);
    msg.sender.call.value(amount)();
    balances[msg.sender] -= amount;
}
"""

# Two deployed contracts: one copied the snippet verbatim, the other fixed
# the call ordering.
VULNERABLE_CONTRACT = """
pragma solidity ^0.4.24;
contract EtherBank {
    mapping(address => uint) balances;
    function deposit() public payable { balances[msg.sender] += msg.value; }
    function withdraw(uint amount) public {
        require(balances[msg.sender] >= amount);
        msg.sender.call.value(amount)();
        balances[msg.sender] -= amount;
    }
}
"""

FIXED_CONTRACT = VULNERABLE_CONTRACT.replace(
    "msg.sender.call.value(amount)();\n        balances[msg.sender] -= amount;",
    "balances[msg.sender] -= amount;\n        msg.sender.transfer(amount);",
)


def main() -> None:
    # 1. Vulnerability detection on the incomplete snippet (CCC)
    checker = ContractChecker()
    analysis = checker.analyze(SNIPPET)
    print("=== CCC findings for the snippet ===")
    for finding in analysis.findings:
        print(f"  [{finding.category.value}] {finding.title}")
        print(f"      at {finding.location()}: {finding.code}")

    # 2. Clone detection against "deployed" contracts (CCD)
    detector = CloneDetector(ngram_size=3, ngram_threshold=0.5, similarity_threshold=0.7)
    detector.add_corpus([("0xVULNERABLE", VULNERABLE_CONTRACT), ("0xFIXED", FIXED_CONTRACT)])
    print("\n=== CCD clones of the snippet ===")
    for match in detector.find_clones(SNIPPET):
        print(f"  {match.document_id}: similarity {match.similarity:.1f}%")

    # 3. Validate the finding inside each clone (the paper's validation step)
    print("\n=== Validation of the flagged vulnerability in the clones ===")
    for address, source in (("0xVULNERABLE", VULNERABLE_CONTRACT), ("0xFIXED", FIXED_CONTRACT)):
        validation = checker.analyze(source, query_ids=sorted(analysis.query_ids()))
        verdict = "still vulnerable" if validation.findings else "mitigated"
        print(f"  {address}: {verdict}")


if __name__ == "__main__":
    main()
