"""Scan a (synthetic) Q&A corpus for vulnerable Solidity snippets.

Reproduces the snippet-side half of the study (Sections 6.1 and 6.4): the
collection funnel of Table 4 and the per-category counts feeding Table 6.
The vulnerability scan streams through the unified analysis session
(:meth:`~repro.api.AnalysisSession.run_iter`), so per-snippet results are
tallied as they complete and each snippet is parsed exactly once across
the collection filter and the CCC analysis.

Run with ``python examples/scan_qa_snippets.py``.
"""

from collections import Counter

from repro.api import AnalysisSession, SessionConfig
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline import SnippetCollector
from repro.pipeline.report import render_table


def main() -> None:
    corpus = generate_qa_corpus(
        seed=3, posts_per_site={"stackoverflow": 60, "ethereum.stackexchange": 150})

    with AnalysisSession(SessionConfig(checker_timeout=15.0)) as session:
        collection = SnippetCollector(store=session.store).collect(corpus)

        rows = [list(funnel.as_row().values()) for funnel in collection.funnels.values()]
        rows.append(list(collection.total_funnel.as_row().values()))
        print(render_table(["Q&A Website", "Posts", "Snippets", "Solidity", "Parsable", "Unique"],
                           rows, title="Snippet collection funnel"))

        per_category = Counter()
        vulnerable = 0
        for result in session.run_iter(collection.snippets, analyses=["ccc"]):
            if result.payload.findings:
                vulnerable += 1
                for category in result.payload.categories():
                    per_category[category.value] += 1

        print()
        print(render_table(
            ["Vulnerability Category", "Snippets"],
            sorted(per_category.items(), key=lambda item: -item[1]),
            title=f"Vulnerable snippets: {vulnerable} of {len(collection.snippets)} unique snippets"))
        print()
        print(f"parse-once: {session.stats.parse_calls} parses, "
              f"{session.stats.hits}/{session.stats.lookups} store hits")


if __name__ == "__main__":
    main()
