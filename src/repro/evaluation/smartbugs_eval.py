"""Evaluation of vulnerability detection tools on the labelled corpus.

Reproduces the protocol of Section 4.6: each tool analyses every file of a
category's test set; findings of the *matching* category count as true
positives up to the number of labels, findings beyond the labels count as
false positives.  Findings of other categories are ignored (the paper only
counts false positives reported in the matching test set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ccc.checker import ContractChecker
from repro.ccc.dasp import DaspCategory
from repro.baselines.smartcheck import SmartCheckBaseline
from repro.datasets.smartbugs import SmartBugsCorpus, SmartBugsEntry
from repro.metrics.classification import f1_score


@dataclass
class CategoryResult:
    """TP/FP counts for one tool on one category's test set."""

    category: DaspCategory
    labels: int = 0
    true_positives: int = 0
    false_positives: int = 0


@dataclass
class ToolEvaluation:
    """Aggregated evaluation of one tool over the whole corpus."""

    tool: str
    dataset: str = "original"
    categories: dict[DaspCategory, CategoryResult] = field(default_factory=dict)

    @property
    def total_labels(self) -> int:
        return sum(result.labels for result in self.categories.values())

    @property
    def total_true_positives(self) -> int:
        return sum(result.true_positives for result in self.categories.values())

    @property
    def total_false_positives(self) -> int:
        return sum(result.false_positives for result in self.categories.values())

    @property
    def precision(self) -> float:
        reported = self.total_true_positives + self.total_false_positives
        return self.total_true_positives / reported if reported else 0.0

    @property
    def recall(self) -> float:
        return self.total_true_positives / self.total_labels if self.total_labels else 0.0

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    @property
    def covered_categories(self) -> int:
        """Number of categories with at least one true positive."""
        return sum(1 for result in self.categories.values() if result.true_positives > 0)

    def rows(self) -> list[dict]:
        return [
            {
                "category": result.category.value,
                "labels": result.labels,
                "tp": result.true_positives,
                "fp": result.false_positives,
            }
            for result in sorted(self.categories.values(), key=lambda item: item.category.value)
        ]


def _entry_source(entry: SmartBugsEntry, dataset: str) -> Optional[str]:
    if dataset == "original":
        return entry.source
    if dataset == "functions":
        return entry.contract.vulnerable_function or None
    if dataset == "statements":
        return entry.contract.vulnerable_statements or None
    raise ValueError(f"unknown dataset: {dataset!r}")


def evaluate_ccc_on_corpus(
    corpus: SmartBugsCorpus,
    dataset: str = "original",
    checker: Optional[ContractChecker] = None,
    timeout_per_file: float = 20.0,
) -> ToolEvaluation:
    """Run CCC on every file of the corpus and count TP/FP per category.

    ``dataset`` selects the *Original*, *Functions*, or *Statements*
    variant (Section 4.6.1 / Table 2).
    """
    if checker is None:
        checker = ContractChecker(timeout=timeout_per_file)
    evaluation = ToolEvaluation(tool="CCC", dataset=dataset)
    for entry in corpus.entries:
        result = evaluation.categories.setdefault(
            entry.category, CategoryResult(category=entry.category))
        result.labels += entry.label_count
        source = _entry_source(entry, dataset)
        if not source:
            continue
        analysis = checker.analyze(source, snippet=True)
        if not analysis.ok:
            continue
        matching = [finding for finding in analysis.findings if finding.category == entry.category]
        if entry.contract.needs_context and dataset != "original":
            # the labelled issue only manifests with the surrounding context;
            # findings on the isolated snippet are treated as not matching the
            # labelled location (the paper's Functions/Statements recall drop)
            matching = []
        result.true_positives += min(len(matching), entry.label_count)
        result.false_positives += max(0, len(matching) - entry.label_count)
    return evaluation


def evaluate_baseline_on_corpus(
    corpus: SmartBugsCorpus,
    dataset: str = "original",
    baseline: Optional[SmartCheckBaseline] = None,
) -> ToolEvaluation:
    """Run the SmartCheck-style lexical baseline with the same protocol."""
    if baseline is None:
        baseline = SmartCheckBaseline()
    evaluation = ToolEvaluation(tool=baseline.name, dataset=dataset)
    for entry in corpus.entries:
        result = evaluation.categories.setdefault(
            entry.category, CategoryResult(category=entry.category))
        result.labels += entry.label_count
        source = _entry_source(entry, dataset)
        if not source:
            continue
        findings = baseline.analyze(source)
        matching = [finding for finding in findings if finding.category == entry.category]
        result.true_positives += min(len(matching), entry.label_count)
        result.false_positives += max(0, len(matching) - entry.label_count)
    return evaluation
