"""Evaluation of vulnerability detection tools on the labelled corpus.

Reproduces the protocol of Section 4.6: each tool analyses every file of a
category's test set; findings of the *matching* category count as true
positives up to the number of labels, findings beyond the labels count as
false positives.  Findings of other categories are ignored (the paper only
counts false positives reported in the matching test set).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.ccc.checker import ContractChecker
from repro.ccc.dasp import DaspCategory
from repro.baselines.smartcheck import SmartCheckBaseline
from repro.datasets.smartbugs import SmartBugsCorpus, SmartBugsEntry
from repro.metrics.classification import f1_score


@dataclass
class CategoryResult:
    """TP/FP counts for one tool on one category's test set."""

    category: DaspCategory
    labels: int = 0
    true_positives: int = 0
    false_positives: int = 0


@dataclass
class ToolEvaluation:
    """Aggregated evaluation of one tool over the whole corpus."""

    tool: str
    dataset: str = "original"
    categories: dict[DaspCategory, CategoryResult] = field(default_factory=dict)

    @property
    def total_labels(self) -> int:
        return sum(result.labels for result in self.categories.values())

    @property
    def total_true_positives(self) -> int:
        return sum(result.true_positives for result in self.categories.values())

    @property
    def total_false_positives(self) -> int:
        return sum(result.false_positives for result in self.categories.values())

    @property
    def precision(self) -> float:
        reported = self.total_true_positives + self.total_false_positives
        return self.total_true_positives / reported if reported else 0.0

    @property
    def recall(self) -> float:
        return self.total_true_positives / self.total_labels if self.total_labels else 0.0

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    @property
    def covered_categories(self) -> int:
        """Number of categories with at least one true positive."""
        return sum(1 for result in self.categories.values() if result.true_positives > 0)

    def rows(self) -> list[dict]:
        return [
            {
                "category": result.category.value,
                "labels": result.labels,
                "tp": result.true_positives,
                "fp": result.false_positives,
            }
            for result in sorted(self.categories.values(), key=lambda item: item.category.value)
        ]


def _entry_source(entry: SmartBugsEntry, dataset: str) -> Optional[str]:
    if dataset == "original":
        return entry.source
    if dataset == "functions":
        return entry.contract.vulnerable_function or None
    if dataset == "statements":
        return entry.contract.vulnerable_statements or None
    raise ValueError(f"unknown dataset: {dataset!r}")


def _ccc_analyses(
    checker: ContractChecker,
    sources: list[str],
    backend: Optional[str],
    max_workers: Optional[int],
) -> list:
    """Analyse ``sources`` with CCC, optionally fanning out over workers.

    ``backend=None`` keeps the original one-by-one serial loop.  Any
    executor backend (``serial``/``thread``/``process``) routes through
    an :class:`~repro.api.AnalysisSession`, which produces byte-identical
    findings in input order under every backend.
    """
    if backend is None:
        return [checker.analyze(source, snippet=True) for source in sources]
    from repro.core.executor import Executor

    executor = Executor.create(backend, max_workers=max_workers)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return checker.analyze_many(sources, executor=executor)
    finally:
        executor.close()


def evaluate_ccc_on_corpus(
    corpus: SmartBugsCorpus,
    dataset: str = "original",
    checker: Optional[ContractChecker] = None,
    timeout_per_file: float = 20.0,
    backend: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> ToolEvaluation:
    """Run CCC on every file of the corpus and count TP/FP per category.

    ``dataset`` selects the *Original*, *Functions*, or *Statements*
    variant (Section 4.6.1 / Table 2).  ``backend`` optionally fans the
    per-file analyses out over an executor backend
    (``serial``/``thread``/``process``); results are byte-identical to
    the default serial loop (asserted in ``tests/test_evaluation.py``).
    """
    if checker is None:
        checker = ContractChecker(timeout=timeout_per_file)
    evaluation = ToolEvaluation(tool="CCC", dataset=dataset)
    sources = []
    analysed_entries = []
    for entry in corpus.entries:
        result = evaluation.categories.setdefault(
            entry.category, CategoryResult(category=entry.category))
        result.labels += entry.label_count
        source = _entry_source(entry, dataset)
        if not source:
            continue
        sources.append(source)
        analysed_entries.append(entry)
    analyses = _ccc_analyses(checker, sources, backend, max_workers)
    for entry, analysis in zip(analysed_entries, analyses):
        if not analysis.ok:
            continue
        result = evaluation.categories[entry.category]
        matching = [finding for finding in analysis.findings if finding.category == entry.category]
        if entry.contract.needs_context and dataset != "original":
            # the labelled issue only manifests with the surrounding context;
            # findings on the isolated snippet are treated as not matching the
            # labelled location (the paper's Functions/Statements recall drop)
            matching = []
        result.true_positives += min(len(matching), entry.label_count)
        result.false_positives += max(0, len(matching) - entry.label_count)
    return evaluation


def evaluate_baseline_on_corpus(
    corpus: SmartBugsCorpus,
    dataset: str = "original",
    baseline: Optional[SmartCheckBaseline] = None,
    backend: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> ToolEvaluation:
    """Run the SmartCheck-style lexical baseline with the same protocol.

    ``backend`` optionally maps ``baseline.analyze`` over an executor
    backend; counting stays in corpus order either way, so the result is
    identical to the serial loop.
    """
    if baseline is None:
        baseline = SmartCheckBaseline()
    evaluation = ToolEvaluation(tool=baseline.name, dataset=dataset)
    sources = []
    analysed_entries = []
    for entry in corpus.entries:
        result = evaluation.categories.setdefault(
            entry.category, CategoryResult(category=entry.category))
        result.labels += entry.label_count
        source = _entry_source(entry, dataset)
        if not source:
            continue
        sources.append(source)
        analysed_entries.append(entry)
    if backend is None:
        findings_per_source = [baseline.analyze(source) for source in sources]
    else:
        from repro.core.executor import Executor

        executor = Executor.create(backend, max_workers=max_workers)
        try:
            findings_per_source = executor.map(baseline.analyze, sources)
        finally:
            executor.close()
    for entry, findings in zip(analysed_entries, findings_per_source):
        result = evaluation.categories[entry.category]
        matching = [finding for finding in findings if finding.category == entry.category]
        result.true_positives += min(len(matching), entry.label_count)
        result.false_positives += max(0, len(matching) - entry.label_count)
    return evaluation


def evaluation_report(evaluation: ToolEvaluation) -> dict:
    """The canonical report dict of one :class:`ToolEvaluation`.

    Shared by the local evaluation scripts and the service-side
    workload merge, so both paths emit byte-identical
    ``canonical_json`` for the same corpus.
    """
    return {
        "tool": evaluation.tool,
        "dataset": evaluation.dataset,
        "total_labels": evaluation.total_labels,
        "total_true_positives": evaluation.total_true_positives,
        "total_false_positives": evaluation.total_false_positives,
        "precision": evaluation.precision,
        "recall": evaluation.recall,
        "f1": evaluation.f1,
        "covered_categories": evaluation.covered_categories,
        "rows": evaluation.rows(),
    }
