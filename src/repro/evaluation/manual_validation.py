"""Simulated manual validation of snippet/contract pairings (Table 8).

The paper manually reviews 100 snippet/contract pairings flagged by the
pipeline and classifies them along three axes: was the snippet really
vulnerable, was the contract really a clone of the snippet, and was the
contract really vulnerable.  With synthetic corpora the generator's ground
truth plays the role of the human reviewer, so the same 2x2x2 table can be
produced automatically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.datasets.corpus import DeployedContract, Snippet
from repro.pipeline.experiment import StudyResult


@dataclass
class ManualValidationSample:
    """One reviewed snippet/contract pairing."""

    snippet_id: str
    address: str
    snippet_truly_vulnerable: bool
    contract_truly_clone: bool
    contract_truly_vulnerable: bool


@dataclass
class ManualValidationTable:
    """The Table 8 style confusion table."""

    samples: list[ManualValidationSample] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Counts keyed by (clone?, snippet TP?, contract TP?) like Table 8."""
        result = {
            "true_clone_snippet_tp_contract_tp": 0,
            "true_clone_snippet_tp_contract_fp": 0,
            "true_clone_snippet_fp_contract_tp": 0,
            "true_clone_snippet_fp_contract_fp": 0,
            "false_clone_snippet_tp_contract_tp": 0,
            "false_clone_snippet_tp_contract_fp": 0,
            "false_clone_snippet_fp_contract_tp": 0,
            "false_clone_snippet_fp_contract_fp": 0,
        }
        for sample in self.samples:
            clone_key = "true_clone" if sample.contract_truly_clone else "false_clone"
            snippet_key = "snippet_tp" if sample.snippet_truly_vulnerable else "snippet_fp"
            contract_key = "contract_tp" if sample.contract_truly_vulnerable else "contract_fp"
            result[f"{clone_key}_{snippet_key}_{contract_key}"] += 1
        return result

    @property
    def confirmed_pairings(self) -> int:
        """Pairs where snippet and contract are vulnerable and truly clones."""
        return self.counts()["true_clone_snippet_tp_contract_tp"]

    @property
    def sample_size(self) -> int:
        return len(self.samples)


def simulate_manual_validation(
    study: StudyResult,
    snippets: list[Snippet],
    contracts: list[DeployedContract],
    ground_truth_embeddings: dict[str, list[str]],
    sample_size: int = 100,
    seed: int = 99,
    rng: Optional[random.Random] = None,
) -> ManualValidationTable:
    """Sample flagged pairings and judge them against the generator ground truth."""
    if rng is None:
        rng = random.Random(seed)
    snippet_index = {snippet.snippet_id: snippet for snippet in snippets}
    contract_index = {contract.address: contract for contract in contracts}
    flagged_pairs = [
        (outcome.snippet_id, outcome.address)
        for outcome in study.validation.outcomes
        if outcome.vulnerable and outcome.snippet_id in snippet_index
        and outcome.address in contract_index
    ]
    rng.shuffle(flagged_pairs)
    table = ManualValidationTable()
    for snippet_id, address in flagged_pairs[:sample_size]:
        snippet = snippet_index[snippet_id]
        contract = contract_index[address]
        # a pairing counts as a true clone when the contract was generated
        # from this snippet, or when it embeds code of the same vulnerability
        # family (textually near-identical material from another post) — the
        # judgement a human reviewer would make when comparing the sources
        truly_clone = address in ground_truth_embeddings.get(snippet_id, []) \
            or contract.ground_truth_snippet_id == snippet_id \
            or (contract.ground_truth_category is not None
                and contract.ground_truth_category == snippet.ground_truth_category)
        table.samples.append(
            ManualValidationSample(
                snippet_id=snippet_id,
                address=address,
                snippet_truly_vulnerable=snippet.ground_truth_vulnerable,
                contract_truly_clone=truly_clone,
                contract_truly_vulnerable=contract.ground_truth_vulnerable,
            )
        )
    return table
