"""CCD parameter sweep over N-gram size, η, and ε (Table 9 / Figure 9).

The sweep is exposed at three granularities so callers can choose their
execution strategy without changing the numbers:

- :func:`sweep_ccd_parameters` — the original one-call local sweep;
- :func:`sweep_grid` + :func:`evaluate_sweep_cell` — the same grid as an
  explicit list of independent cells (this is what the service-side
  ``parameter_sweep`` workload chunks over, one chunk per cell);
- :func:`sweep_report` — one canonical report dict from the points of a
  sweep, shared by the local path and the workload merge path so both
  produce byte-identical ``canonical_json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.datasets.corpus import HoneypotContract
from repro.evaluation.honeypot_eval import evaluate_ccd_on_honeypots

#: The parameter grid of Table 9.
DEFAULT_NGRAM_SIZES: tuple[int, ...] = (3, 5, 7)
DEFAULT_NGRAM_THRESHOLDS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
DEFAULT_SIMILARITY_THRESHOLDS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class SweepPoint:
    """Precision/recall of one parameter combination."""

    ngram_size: int
    ngram_threshold: float
    similarity_threshold: float
    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int

    def as_row(self) -> dict:
        return {
            "N": self.ngram_size,
            "eta": self.ngram_threshold,
            "epsilon": self.similarity_threshold,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }


def sweep_grid(
    ngram_sizes: Sequence[int] = DEFAULT_NGRAM_SIZES,
    ngram_thresholds: Sequence[float] = DEFAULT_NGRAM_THRESHOLDS,
    similarity_thresholds: Sequence[float] = DEFAULT_SIMILARITY_THRESHOLDS,
) -> list[dict]:
    """The sweep's cells, in the canonical N → η → ε nesting order.

    Each cell is ``{"ngram_size", "ngram_threshold",
    "similarity_threshold"}`` — exactly the keyword arguments of
    :func:`evaluate_sweep_cell`.  The order is load-bearing: it is both
    the point order of :func:`sweep_ccd_parameters` and the chunk order
    of the ``parameter_sweep`` workload, which is what makes the merged
    report byte-identical to a local run.
    """
    return [
        {
            "ngram_size": ngram_size,
            "ngram_threshold": ngram_threshold,
            "similarity_threshold": similarity_threshold,
        }
        for ngram_size in ngram_sizes
        for ngram_threshold in ngram_thresholds
        for similarity_threshold in similarity_thresholds
    ]


def evaluate_sweep_cell(
    contracts: list[HoneypotContract],
    ngram_size: int,
    ngram_threshold: float,
    similarity_threshold: float,
) -> SweepPoint:
    """Evaluate one grid cell — independent of every other cell."""
    evaluation = evaluate_ccd_on_honeypots(
        contracts,
        ngram_size=ngram_size,
        ngram_threshold=ngram_threshold,
        similarity_threshold=similarity_threshold,
    )
    return SweepPoint(
        ngram_size=ngram_size,
        ngram_threshold=ngram_threshold,
        similarity_threshold=similarity_threshold,
        precision=evaluation.precision,
        recall=evaluation.recall,
        f1=evaluation.f1,
        true_positives=evaluation.total_true_positives,
        false_positives=evaluation.total_false_positives,
    )


def sweep_ccd_parameters(
    contracts: list[HoneypotContract],
    ngram_sizes: Sequence[int] = DEFAULT_NGRAM_SIZES,
    ngram_thresholds: Sequence[float] = DEFAULT_NGRAM_THRESHOLDS,
    similarity_thresholds: Sequence[float] = DEFAULT_SIMILARITY_THRESHOLDS,
) -> list[SweepPoint]:
    """Evaluate every parameter combination and return the sweep grid.

    Each cell is a fully independent evaluation, so the sweep is just
    :func:`evaluate_sweep_cell` over :func:`sweep_grid` — the same
    decomposition the service-side workload uses chunk by chunk.
    """
    return [
        evaluate_sweep_cell(contracts, **cell)
        for cell in sweep_grid(ngram_sizes, ngram_thresholds,
                               similarity_thresholds)
    ]


def best_combination(points: Iterable[SweepPoint]) -> SweepPoint:
    """The combination with the best precision/recall balance (highest F1)."""
    return max(points, key=lambda point: (point.f1, point.precision))


def sweep_report(points: Sequence[SweepPoint]) -> dict:
    """The canonical sweep report: every point, plus the best combination.

    Both the local sweep and the workload merge build their final
    answer through this one function, so the two paths cannot drift —
    ``canonical_json(sweep_report(...))`` is the parity contract.
    """
    return {
        "cells": len(points),
        "points": [asdict(point) for point in points],
        "best": asdict(best_combination(points)) if points else None,
    }


__all__ = [
    "DEFAULT_NGRAM_SIZES",
    "DEFAULT_NGRAM_THRESHOLDS",
    "DEFAULT_SIMILARITY_THRESHOLDS",
    "SweepPoint",
    "best_combination",
    "evaluate_sweep_cell",
    "sweep_ccd_parameters",
    "sweep_grid",
    "sweep_report",
]
