"""CCD parameter sweep over N-gram size, η, and ε (Table 9 / Figure 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datasets.corpus import HoneypotContract
from repro.evaluation.honeypot_eval import evaluate_ccd_on_honeypots

#: The parameter grid of Table 9.
DEFAULT_NGRAM_SIZES: tuple[int, ...] = (3, 5, 7)
DEFAULT_NGRAM_THRESHOLDS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)
DEFAULT_SIMILARITY_THRESHOLDS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class SweepPoint:
    """Precision/recall of one parameter combination."""

    ngram_size: int
    ngram_threshold: float
    similarity_threshold: float
    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int

    def as_row(self) -> dict:
        return {
            "N": self.ngram_size,
            "eta": self.ngram_threshold,
            "epsilon": self.similarity_threshold,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }


def sweep_ccd_parameters(
    contracts: list[HoneypotContract],
    ngram_sizes: Sequence[int] = DEFAULT_NGRAM_SIZES,
    ngram_thresholds: Sequence[float] = DEFAULT_NGRAM_THRESHOLDS,
    similarity_thresholds: Sequence[float] = DEFAULT_SIMILARITY_THRESHOLDS,
) -> list[SweepPoint]:
    """Evaluate every parameter combination and return the sweep grid.

    The expensive part (fingerprinting and candidate retrieval) depends
    only on N and η, so the ε axis reuses the pairwise similarity scores.
    """
    points: list[SweepPoint] = []
    for ngram_size in ngram_sizes:
        for ngram_threshold in ngram_thresholds:
            # evaluate at the lowest ε and filter upwards
            evaluations = {}
            for similarity_threshold in similarity_thresholds:
                evaluation = evaluate_ccd_on_honeypots(
                    contracts,
                    ngram_size=ngram_size,
                    ngram_threshold=ngram_threshold,
                    similarity_threshold=similarity_threshold,
                )
                evaluations[similarity_threshold] = evaluation
            for similarity_threshold, evaluation in evaluations.items():
                points.append(
                    SweepPoint(
                        ngram_size=ngram_size,
                        ngram_threshold=ngram_threshold,
                        similarity_threshold=similarity_threshold,
                        precision=evaluation.precision,
                        recall=evaluation.recall,
                        f1=evaluation.f1,
                        true_positives=evaluation.total_true_positives,
                        false_positives=evaluation.total_false_positives,
                    )
                )
    return points


def best_combination(points: Iterable[SweepPoint]) -> SweepPoint:
    """The combination with the best precision/recall balance (highest F1)."""
    return max(points, key=lambda point: (point.f1, point.precision))
