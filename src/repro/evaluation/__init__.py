"""Evaluation harnesses shared by the test suite and the benchmarks.

Each module reproduces the protocol behind one group of tables:

* :mod:`repro.evaluation.smartbugs_eval` — CCC (and the lexical baseline)
  on the labelled corpus and its derived snippet datasets (Tables 1 and 2),
* :mod:`repro.evaluation.honeypot_eval` — CCD vs. the SmartEmbed-style
  baseline on the honeypot clone corpus (Table 3),
* :mod:`repro.evaluation.parameter_sweep` — the N/η/ε parameter sweep
  (Table 9, Figure 9),
* :mod:`repro.evaluation.manual_validation` — sampled ground-truth review
  of snippet/contract pairings (Table 8).
"""

from repro.evaluation.honeypot_eval import (
    HoneypotEvaluation,
    evaluate_ccd_on_honeypots,
    evaluate_exact_hash_on_honeypots,
    evaluate_smartembed_on_honeypots,
    honeypot_report,
)
from repro.evaluation.manual_validation import ManualValidationTable, simulate_manual_validation
from repro.evaluation.parameter_sweep import (
    SweepPoint,
    evaluate_sweep_cell,
    sweep_ccd_parameters,
    sweep_grid,
    sweep_report,
)
from repro.evaluation.smartbugs_eval import (
    CategoryResult,
    ToolEvaluation,
    evaluate_baseline_on_corpus,
    evaluate_ccc_on_corpus,
    evaluation_report,
)

__all__ = [
    "CategoryResult",
    "HoneypotEvaluation",
    "ManualValidationTable",
    "SweepPoint",
    "ToolEvaluation",
    "evaluate_baseline_on_corpus",
    "evaluate_ccc_on_corpus",
    "evaluate_ccd_on_honeypots",
    "evaluate_exact_hash_on_honeypots",
    "evaluate_smartembed_on_honeypots",
    "evaluate_sweep_cell",
    "evaluation_report",
    "honeypot_report",
    "simulate_manual_validation",
    "sweep_ccd_parameters",
    "sweep_grid",
    "sweep_report",
]
