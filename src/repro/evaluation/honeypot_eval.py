"""Clone-detection evaluation on the honeypot corpus (Table 3).

Protocol (Section 5.7.1): every contract is compared against every other
contract in the dataset; a reported clone pair is a true positive when both
contracts belong to the same honeypot family and a false positive
otherwise.  Recall is computed over all same-family pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional

from repro.baselines.exact_hash import ExactHashCloneBaseline
from repro.baselines.smartembed import SmartEmbedBaseline
from repro.ccd.detector import CloneDetector
from repro.datasets.corpus import HoneypotContract
from repro.metrics.classification import f1_score


@dataclass
class HoneypotTypeResult:
    """TP/FP counts for one honeypot family."""

    honeypot_type: str
    true_positives: int = 0
    false_positives: int = 0
    possible_pairs: int = 0


@dataclass
class HoneypotEvaluation:
    """The full Table 3 style evaluation for one tool."""

    tool: str
    per_type: dict[str, HoneypotTypeResult] = field(default_factory=dict)
    unparsable: int = 0

    @property
    def total_true_positives(self) -> int:
        return sum(result.true_positives for result in self.per_type.values())

    @property
    def total_false_positives(self) -> int:
        return sum(result.false_positives for result in self.per_type.values())

    @property
    def total_possible_pairs(self) -> int:
        return sum(result.possible_pairs for result in self.per_type.values())

    @property
    def precision(self) -> float:
        reported = self.total_true_positives + self.total_false_positives
        return self.total_true_positives / reported if reported else 0.0

    @property
    def recall(self) -> float:
        possible = self.total_possible_pairs
        return self.total_true_positives / possible if possible else 0.0

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    def rows(self) -> list[dict]:
        return [
            {
                "type": result.honeypot_type,
                "tp": result.true_positives,
                "fp": result.false_positives,
                "possible": result.possible_pairs,
            }
            for result in sorted(self.per_type.values(), key=lambda item: item.honeypot_type)
        ]


def _possible_pairs(contracts: list[HoneypotContract]) -> dict[str, int]:
    counts: dict[str, int] = {}
    per_type: dict[str, int] = {}
    for contract in contracts:
        per_type[contract.honeypot_type] = per_type.get(contract.honeypot_type, 0) + 1
    for honeypot_type, count in per_type.items():
        counts[honeypot_type] = count * (count - 1)  # ordered pairs, as each side queries
    return counts


def _evaluate_pairs(
    tool_name: str,
    contracts: list[HoneypotContract],
    reported_pairs: dict[str, list[str]],
    unparsable: int,
) -> HoneypotEvaluation:
    type_of = {contract.address: contract.honeypot_type for contract in contracts}
    evaluation = HoneypotEvaluation(tool=tool_name, unparsable=unparsable)
    for honeypot_type, possible in _possible_pairs(contracts).items():
        evaluation.per_type[honeypot_type] = HoneypotTypeResult(
            honeypot_type=honeypot_type, possible_pairs=possible)
    for address, matched_addresses in reported_pairs.items():
        own_type = type_of[address]
        result = evaluation.per_type.setdefault(
            own_type, HoneypotTypeResult(honeypot_type=own_type))
        for matched in matched_addresses:
            if type_of.get(matched) == own_type:
                result.true_positives += 1
            else:
                result.false_positives += 1
    return evaluation


def evaluate_ccd_on_honeypots(
    contracts: list[HoneypotContract],
    ngram_size: int = 3,
    ngram_threshold: float = 0.5,
    similarity_threshold: float = 0.7,
    detector: Optional[CloneDetector] = None,
) -> HoneypotEvaluation:
    """Evaluate CCD with the given parameters on the honeypot corpus."""
    if detector is None:
        detector = CloneDetector(
            ngram_size=ngram_size,
            ngram_threshold=ngram_threshold,
            similarity_threshold=similarity_threshold,
        )
    detector.add_corpus((contract.address, contract.source) for contract in contracts)
    pairwise = detector.pairwise_clones()
    reported = {address: [match.document_id for match in matches]
                for address, matches in pairwise.items()}
    return _evaluate_pairs("CCD", contracts, reported, unparsable=len(detector.parse_failures))


def evaluate_smartembed_on_honeypots(
    contracts: list[HoneypotContract],
    similarity_threshold: float = 0.9,
    baseline: Optional[SmartEmbedBaseline] = None,
) -> HoneypotEvaluation:
    """Evaluate the SmartEmbed-style baseline (0.9 cosine threshold)."""
    if baseline is None:
        baseline = SmartEmbedBaseline(similarity_threshold=similarity_threshold)
    baseline.add_corpus((contract.address, contract.source) for contract in contracts)
    pairwise = baseline.pairwise_clones()
    reported = {address: [match.document_id for match in matches]
                for address, matches in pairwise.items()}
    return _evaluate_pairs(baseline.name, contracts, reported,
                           unparsable=len(baseline.parse_failures))


def evaluate_exact_hash_on_honeypots(
    contracts: list[HoneypotContract],
    baseline: Optional[ExactHashCloneBaseline] = None,
) -> HoneypotEvaluation:
    """Evaluate the exact-hash ablation baseline (Type I/II clones only)."""
    if baseline is None:
        baseline = ExactHashCloneBaseline()
    baseline.add_corpus((contract.address, contract.source) for contract in contracts)
    reported = {
        contract.address: [matched
                           for matched in baseline.find_clones(contract.source)
                           if matched != contract.address]
        for contract in contracts
    }
    return _evaluate_pairs(baseline.name, contracts, reported,
                           unparsable=len(baseline.parse_failures))


def honeypot_report(evaluation: HoneypotEvaluation) -> dict:
    """The canonical report dict of one :class:`HoneypotEvaluation`.

    Shared by the local evaluation scripts and the service-side
    ``honeypot_clones`` workload merge, so both paths emit byte-identical
    ``canonical_json`` for the same corpus.
    """
    return {
        "tool": evaluation.tool,
        "unparsable": evaluation.unparsable,
        "total_true_positives": evaluation.total_true_positives,
        "total_false_positives": evaluation.total_false_positives,
        "total_possible_pairs": evaluation.total_possible_pairs,
        "precision": evaluation.precision,
        "recall": evaluation.recall,
        "f1": evaluation.f1,
        "rows": evaluation.rows(),
    }
