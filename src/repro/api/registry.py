"""The pluggable analyzer registry behind :class:`~repro.api.AnalysisSession`.

This generalizes the pattern the CCC query layer already uses for its 17
DASP queries: instead of a new hand-wired class per workload, a workload
is an :class:`Analyzer` subclass registered under a stable id::

    from repro.api import Analyzer, register_analyzer

    @register_analyzer("loc")
    class LineCountAnalyzer(Analyzer):
        title = "source line count"

        def analyze(self, session, state, request):
            return request.source.count("\\n") + 1

    session.run(corpus, analyses=["loc"])

Contract-scope analyzers implement the per-item hooks (:meth:`Analyzer.analyze`
for the shared-state serial/thread path, :meth:`Analyzer.task` +
:meth:`Analyzer.finish` for the process path); corpus-scope analyzers
implement :meth:`Analyzer.analyze_corpus` and emit a single envelope.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro.api.envelope import AnalysisRequest


class Analyzer:
    """Base class for everything runnable through an analysis session.

    Class attributes
    ----------------
    analyzer_id:
        Stable registry id (set by :func:`register_analyzer`).
    title:
        Human-readable one-liner shown by ``repro analyzers list``.
    dasp_category:
        Optional :class:`~repro.ccc.dasp.DaspCategory` when the analyzer
        maps to one DASP Top-10 category.
    scope:
        ``"contract"`` (one result per corpus item) or ``"corpus"``
        (one result per run).

    Analyzer instances are stateless; per-run state is created by
    :meth:`prepare` and threaded through the per-item hooks, so one
    registered instance can serve concurrent sessions.
    """

    analyzer_id: str = ""
    title: str = ""
    dasp_category = None
    scope: str = "contract"

    # -- lifecycle ------------------------------------------------------------
    def prepare(self, session, requests: Sequence[AnalysisRequest], options: dict) -> Any:
        """Create per-run state (build indexes, wire checkers) in the parent.

        Runs once before any per-item work, with the full request list —
        the clone-detection analyzer uses it to index the corpus.  The
        return value is passed to every other hook as ``state``.
        """
        return None

    # -- contract scope -------------------------------------------------------
    def analyze(self, session, state: Any, request: AnalysisRequest) -> Any:
        """Compute one request's payload with shared in-process state.

        Used by the serial and thread executor backends, which may close
        over ``state`` (stores, indexes, checkers) directly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement contract-scope analysis")

    def task(self, session, state: Any, options: dict) -> Callable[[AnalysisRequest], Any]:
        """A picklable per-request callable for the process backend.

        The returned callable runs inside worker processes, so it must not
        close over unpicklable state — the built-in analyzers ship an
        :class:`~repro.core.artifacts.ArtifactStoreSpec` and rehydrate
        artifacts worker-side.  Its return value is handed to
        :meth:`finish` in the parent process.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the process executor backend")

    def finish(self, session, state: Any, request: AnalysisRequest, intermediate: Any) -> Any:
        """Turn a worker's intermediate value into the final payload.

        Runs in the parent process; the default passes the intermediate
        through unchanged.  The clone-detection analyzer scores the
        worker-computed fingerprint against the parent-side index here.
        """
        return intermediate

    # -- corpus scope ---------------------------------------------------------
    def analyze_corpus(self, session, corpus: Sequence, options: dict) -> Any:
        """Compute the single corpus-scope payload (``scope == "corpus"``).

        ``corpus`` is the caller's original item sequence (typed dataset
        objects survive, unlike in per-item requests), so analyzers like
        the temporal categorizer can read posting dates and view counts.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement corpus-scope analysis")

    def __repr__(self) -> str:
        return f"<Analyzer {self.analyzer_id or type(self).__name__} scope={self.scope}>"


class AnalyzerRegistry:
    """An id -> :class:`Analyzer` instance mapping with decorator registration."""

    def __init__(self):
        self._analyzers: dict[str, Analyzer] = {}

    def register(self, analyzer_id: str, *, replace: bool = False):
        """Class decorator registering an :class:`Analyzer` under ``analyzer_id``.

        Parameters
        ----------
        analyzer_id:
            Stable id used in ``analyses=[...]`` lists and on the CLI.
        replace:
            Allow overwriting an existing registration (off by default so
            accidental id collisions fail loudly).
        """
        if not analyzer_id:
            raise ValueError("analyzer_id must be a non-empty string")

        def decorator(cls):
            if not (isinstance(cls, type) and issubclass(cls, Analyzer)):
                raise TypeError(
                    f"@register_analyzer({analyzer_id!r}) expects an Analyzer "
                    f"subclass, got {cls!r}")
            if not replace and analyzer_id in self._analyzers:
                raise ValueError(f"analyzer id {analyzer_id!r} is already registered")
            cls.analyzer_id = analyzer_id
            self._analyzers[analyzer_id] = cls()
            return cls

        return decorator

    def get(self, analyzer_id: str) -> Analyzer:
        """The registered analyzer for ``analyzer_id`` (KeyError when unknown)."""
        try:
            return self._analyzers[analyzer_id]
        except KeyError:
            known = ", ".join(sorted(self._analyzers)) or "(none)"
            raise KeyError(
                f"unknown analyzer id {analyzer_id!r}; registered: {known}") from None

    def ids(self) -> list[str]:
        """All registered analyzer ids, sorted."""
        return sorted(self._analyzers)

    def __iter__(self) -> Iterator[Analyzer]:
        for analyzer_id in self.ids():
            yield self._analyzers[analyzer_id]

    def __contains__(self, analyzer_id: str) -> bool:
        return analyzer_id in self._analyzers

    def __len__(self) -> int:
        return len(self._analyzers)


#: the default registry every session uses unless given its own
REGISTRY = AnalyzerRegistry()


def register_analyzer(analyzer_id: str, *, registry: Optional[AnalyzerRegistry] = None,
                      replace: bool = False):
    """Register an :class:`Analyzer` subclass in the (default) registry.

    Parameters
    ----------
    analyzer_id:
        Stable id used in ``analyses=[...]`` lists and on the CLI.
    registry:
        Target registry; the module-level :data:`REGISTRY` when omitted.
    replace:
        Allow overwriting an existing registration.
    """
    return (registry if registry is not None else REGISTRY).register(
        analyzer_id, replace=replace)


def get_analyzer(ref: Union[str, Analyzer], registry: Optional[AnalyzerRegistry] = None) -> Analyzer:
    """Resolve an analyzer reference: an id string or an instance passes through."""
    if isinstance(ref, Analyzer):
        return ref
    return (registry if registry is not None else REGISTRY).get(ref)


def all_analyzers(registry: Optional[AnalyzerRegistry] = None) -> list[Analyzer]:
    """Every registered analyzer, sorted by id."""
    return list(registry if registry is not None else REGISTRY)


__all__ = [
    "Analyzer",
    "AnalyzerRegistry",
    "REGISTRY",
    "all_analyzers",
    "get_analyzer",
    "register_analyzer",
]
