"""The uniform request/result envelope shared by every analyzer.

Every analyzer registered with the :class:`~repro.api.registry.AnalyzerRegistry`
consumes :class:`AnalysisRequest` objects — one per contract or snippet —
and emits :class:`AnalysisResult` envelopes.  The envelope separates the
*identity* of a result (which analyzer, which contract), its *payload*
(the analyzer-specific result object: clone matches, CCC findings, a
validation outcome, …), and its *run metadata* (timings and cache
information, which vary between runs and backends by nature).

:func:`canonicalize` converts any payload into a deterministic,
JSON-compatible structure with run-dependent fields (wall-clock timings)
stripped, so two runs over the same corpus — batch vs. streaming, serial
vs. thread vs. process — can be compared byte for byte.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Hashable, Mapping, Optional

#: payload fields that are run metadata, not results — stripped by
#: :func:`canonicalize` so canonical forms are reproducible across runs
TIMING_FIELDS = frozenset({"elapsed_seconds"})


@dataclass(frozen=True)
class AnalysisRequest:
    """One unit of work for an analyzer: a contract (or snippet) source.

    ``options`` carries per-item extras an analyzer may consume — e.g.
    the validation analyzer reads ``query_ids`` and ``snippet_id`` from
    it.  Requests must stay picklable: the process executor backend ships
    them to worker processes verbatim.
    """

    contract_id: Hashable
    source: str
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class AnalysisResult:
    """The uniform result envelope emitted by every analyzer.

    ``payload`` keeps the analyzer's native result object (a list of
    :class:`~repro.ccd.detector.CloneMatch`, a
    :class:`~repro.ccc.checker.AnalysisResult`, a
    :class:`~repro.pipeline.validation.ValidationOutcome`, …) so nothing
    is lost relative to the legacy entry points; :meth:`as_dict` is the
    canonical, timing-free view used for parity comparisons and reports.
    ``contract_id`` is ``None`` for corpus-scope analyzers (temporal,
    correlation), which emit one envelope per run.
    """

    analyzer: str
    contract_id: Optional[Hashable]
    payload: Any
    #: wall-clock seconds spent computing the payload (run metadata)
    elapsed_seconds: float = 0.0
    #: best-effort cache information, e.g. whether the source's artifact
    #: was already materialized in the session store (run metadata)
    cache: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the analyzer produced a payload (``None`` = unanalyzable)."""
        return self.payload is not None

    def as_dict(self) -> dict:
        """Deterministic, JSON-compatible form (timings and cache stripped)."""
        return {
            "analyzer": self.analyzer,
            "contract_id": self.contract_id,
            "payload": canonicalize(self.payload),
        }


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-compatible structure.

    Dataclasses become dicts (timing fields dropped), enums become their
    values, sets become sorted lists, tuples become lists, and mapping
    keys are emitted in sorted order.  The result is identical across
    executor backends and between batch and streaming runs.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in fields(value)
            if f.name not in TIMING_FIELDS
        }
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, Mapping):
        return {str(key): canonicalize(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """One deterministic JSON encoding of a (canonicalized) value.

    This is the wire format of the analysis service: an
    :class:`AnalysisResult` is reduced to :meth:`AnalysisResult.as_dict`
    first, everything else goes through :func:`canonicalize`, and the
    encoding pins key order, separators, and non-ASCII handling — so the
    same envelope serializes to the same bytes on every run, which is
    what makes HTTP-served results comparable byte for byte against a
    local :meth:`~repro.api.session.AnalysisSession.run`.
    """
    if isinstance(value, AnalysisResult):
        value = value.as_dict()
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=False)


__all__ = ["AnalysisRequest", "AnalysisResult", "TIMING_FIELDS",
           "canonical_json", "canonicalize"]
