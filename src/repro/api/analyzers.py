"""The built-in analyzers: CCD, CCC, validation, temporal, correlation.

Each legacy workload is re-registered here as an
:class:`~repro.api.registry.Analyzer` so it runs through the uniform
:class:`~repro.api.session.AnalysisSession` entry points.  The heavy
lifting still lives in the original modules — these classes only adapt
the uniform :class:`~repro.api.envelope.AnalysisRequest` to each layer's
single-item API, reusing the existing picklable process-backend task
machinery (:func:`repro.ccd.detector._fingerprint_task`,
:func:`repro.ccc.checker._analyze_task`,
:func:`repro.pipeline.validation._validate_task`) so every backend
produces results identical to the legacy batch entry points.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.api.envelope import AnalysisRequest
from repro.api.registry import Analyzer, register_analyzer
from repro.ccc.checker import ContractChecker, _analyze_task, _AnalysisTaskSpec
from repro.ccd.detector import CloneDetector, _fingerprint_task
from repro.ccd.score_memo import ScoreMemoTable
from repro.pipeline.correlation import correlate_views_with_adoption
from repro.pipeline.temporal import TemporalCategories, categorize_pairs
from repro.pipeline.validation import (
    ContractValidator,
    ValidationCandidate,
    _validate_task,
    _ValidationTaskSpec,
)
from repro.solidity.splitter import split_source


def _base_source(changed_only, contract_id) -> Optional[str]:
    """The base source recorded for a contract id in a ``changed_only`` map.

    Jobs travel as JSON, whose object keys are strings — integer
    contract ids are looked up under their string form too.
    """
    if not isinstance(changed_only, dict):
        return None
    if contract_id in changed_only:
        return changed_only[contract_id]
    return changed_only.get(str(contract_id))


# ---------------------------------------------------------------------------
# clone detection (CCD)
# ---------------------------------------------------------------------------

@dataclass
class _CloneDetectionState:
    """Per-run state of the CCD analyzer."""

    detector: CloneDetector
    #: drop matches of a contract against itself (self-indexed runs)
    exclude_self: bool
    similarity_threshold: Optional[float] = None
    ngram_threshold: Optional[float] = None
    #: ``{contract_id: base source}`` — report only matches that are new
    #: or changed relative to the base source's matches
    changed_only: Optional[dict] = None


@register_analyzer("ccd")
class CloneDetectionAnalyzer(Analyzer):
    """Find Type I-III clones of every corpus item (Figure 4 of the paper).

    Options: ``detector`` matches items against an existing
    :class:`~repro.ccd.detector.CloneDetector` index (the legacy
    ``find_clones_many`` shape); without it the corpus itself is indexed
    during :meth:`prepare` and each item is matched pairwise against the
    rest (the honeypot protocol of Section 5.7.1).
    ``similarity_threshold`` / ``ngram_threshold`` override the
    detector's thresholds per run; ``similarity_backend`` selects the
    verification backend of a freshly built detector (the session
    config's by default) and ``score_memo_path`` attaches a persistent
    corpus-global score memo to it (the session config's
    ``score_memo_path`` by default).  ``profile_sink``, when given, is a mutable
    list the analyzer appends its detector to, so callers can read the
    per-stage :class:`~repro.ccd.matcher.MatchStats` afterwards (the CLI
    ``--profile`` flag uses this).  The payload is a list of
    :class:`~repro.ccd.matcher.CloneMatch` (sorted by similarity), or
    ``None`` when the item is unparsable.
    """

    title = "CCD clone detection (fingerprint + N-gram pre-filter)"

    def prepare(self, session, requests, options):
        """Adopt the optional prebuilt detector or index the corpus."""
        detector = options.get("detector")
        exclude_self = False
        if detector is None:
            config = session.config
            memo_path = options.get(
                "score_memo_path", getattr(config, "score_memo_path", None))
            detector = CloneDetector(
                ngram_size=config.ngram_size,
                ngram_threshold=config.ngram_threshold,
                similarity_threshold=config.similarity_threshold,
                fingerprint_block_size=config.fingerprint_block_size,
                fingerprint_window=config.fingerprint_window,
                store=session.store,
                similarity_backend=options.get(
                    "similarity_backend", config.similarity_backend),
                score_memo=ScoreMemoTable(memo_path) if memo_path else None,
            )
            detector.add_corpus(
                [(request.contract_id, request.source) for request in requests],
                executor=session.executor)
            exclude_self = True
        sink = options.get("profile_sink")
        if sink is not None:
            sink.append(detector)
        return _CloneDetectionState(
            detector=detector,
            exclude_self=exclude_self,
            similarity_threshold=options.get("similarity_threshold"),
            ngram_threshold=options.get("ngram_threshold"),
            changed_only=options.get("changed_only"),
        )

    def _match(self, state: _CloneDetectionState, request: AnalysisRequest, fingerprint):
        matches = state.detector.find_clones(
            fingerprint=fingerprint,
            similarity_threshold=state.similarity_threshold,
            ngram_threshold=state.ngram_threshold,
        )
        if state.exclude_self:
            matches = [match for match in matches
                       if match.document_id != request.contract_id]
        base = _base_source(state.changed_only, request.contract_id)
        if base is None:
            return matches
        return self._changed_matches(state, request, matches, base)

    def _changed_matches(self, state: _CloneDetectionState,
                         request: AnalysisRequest, matches, base: str):
        """Only the matches that differ from the base source's matches.

        A match survives when its document is new, or its similarity
        changed, relative to matching ``base`` against the same index.
        An unparsable base keeps every match (nothing to diff against).
        """
        try:
            base_fingerprint = state.detector.fingerprint_source(base)
        except Exception:
            return matches
        baseline = state.detector.find_clones(
            fingerprint=base_fingerprint,
            similarity_threshold=state.similarity_threshold,
            ngram_threshold=state.ngram_threshold,
        )
        if state.exclude_self:
            baseline = [match for match in baseline
                        if match.document_id != request.contract_id]
        before = {match.document_id: match.similarity for match in baseline}
        return [match for match in matches
                if before.get(match.document_id) != match.similarity]

    def analyze(self, session, state, request):
        """Fingerprint and match one item against the index (shared state)."""
        try:
            fingerprint = state.detector.fingerprint_source(request.source)
        except Exception:
            # pathological query snippets count as unparsable rather than
            # aborting the batch (long-standing pipeline behavior)
            return None
        return self._match(state, request, fingerprint)

    def task(self, session, state, options):
        """Worker task: fingerprint only (the index stays in the parent)."""
        return _CcdTask(spec=state.detector._store_spec())

    def finish(self, session, state, request, intermediate):
        """Score the worker-computed fingerprint against the parent index."""
        if intermediate is None:
            return None
        return self._match(state, request, intermediate)


@dataclass(frozen=True)
class _CcdTask:
    """Picklable per-request fingerprint task for the process backend."""

    spec: Any

    def __call__(self, request: AnalysisRequest):
        """Fingerprint the request source inside the worker (tolerantly)."""
        return _fingerprint_task(self.spec, request.source, strict=False)


# ---------------------------------------------------------------------------
# vulnerability checking (CCC)
# ---------------------------------------------------------------------------

@dataclass
class _VulnerabilityState:
    """Per-run state of the CCC analyzer."""

    checker: ContractChecker
    snippet: bool = True
    categories: Optional[tuple] = None
    query_ids: Optional[tuple] = None
    timeout: Optional[float] = None
    max_flow_depth: Optional[int] = None
    #: ``{contract_id: base source}`` — keep only findings in functions
    #: the edit touched (line-range filter over the function splitter)
    changed_only: Optional[dict] = None


@dataclass(frozen=True)
class _CccTask:
    """Picklable per-request CCC task for the process backend."""

    spec: _AnalysisTaskSpec

    def __call__(self, request: AnalysisRequest):
        """Analyse the request source inside the worker."""
        spec = self.spec
        query_ids = request.options.get("query_ids")
        if query_ids:
            spec = dataclasses.replace(spec, query_ids=tuple(query_ids))
        return _analyze_task(spec, request.source)


@register_analyzer("ccc")
class VulnerabilityAnalyzer(Analyzer):
    """Run the 17 DASP vulnerability queries against every corpus item.

    Options: ``checker`` adopts an existing
    :class:`~repro.ccc.checker.ContractChecker` (the legacy
    ``analyze_many`` shape); ``snippet``, ``categories``, ``query_ids``,
    ``timeout``, and ``max_flow_depth`` mirror
    :meth:`~repro.ccc.checker.ContractChecker.analyze`.  A per-request
    ``query_ids`` entry in :attr:`AnalysisRequest.options` overrides the
    run-level selection.  The payload is a
    :class:`~repro.ccc.checker.AnalysisResult`.
    """

    title = "CCC vulnerability checking (17 DASP queries on the CPG)"

    def prepare(self, session, requests, options):
        """Adopt the optional prebuilt checker or build one on the store."""
        checker = options.get("checker")
        if checker is None:
            checker = ContractChecker(
                timeout=options.get("timeout", session.config.checker_timeout),
                max_flow_depth=options.get("max_flow_depth"),
                store=session.store,
            )
        categories = options.get("categories")
        query_ids = options.get("query_ids")
        return _VulnerabilityState(
            checker=checker,
            snippet=options.get("snippet", True),
            categories=tuple(categories) if categories is not None else None,
            query_ids=tuple(query_ids) if query_ids is not None else None,
            timeout=options.get("timeout"),
            max_flow_depth=options.get("max_flow_depth"),
            changed_only=options.get("changed_only"),
        )

    def analyze(self, session, state, request):
        """Analyse one item through the shared checker (serial/thread path)."""
        query_ids = request.options.get("query_ids") or state.query_ids
        result = state.checker.analyze(
            request.source,
            snippet=state.snippet,
            categories=state.categories,
            query_ids=query_ids,
            timeout=state.timeout,
            max_flow_depth=state.max_flow_depth,
        )
        return self._filter_changed(state, request, result)

    def finish(self, session, state, request, intermediate):
        """Apply the ``changed_only`` filter to worker-computed results."""
        return self._filter_changed(state, request, intermediate)

    @staticmethod
    def _filter_changed(state: _VulnerabilityState, request: AnalysisRequest,
                        result):
        """Drop findings whose function the edit did not touch.

        Both sources are split into function spans; a finding inside a
        span whose content key also appears in the base source is
        unchanged and dropped.  Findings outside any span (headers,
        state variables), or any source the splitter cannot model, are
        kept — the filter only ever *narrows* when it is provably safe.
        """
        base = _base_source(state.changed_only, request.contract_id)
        if base is None or result is None or not result.ok:
            return result
        base_split = split_source(base)
        new_split = split_source(request.source)
        if base_split is None or new_split is None:
            return result
        base_keys = {span.key for span in base_split.spans}
        spans = [(span.start_line, span.end_line, span.key in base_keys)
                 for span in new_split.spans]

        def changed(finding) -> bool:
            for start, end, in_base in spans:
                if start <= finding.line <= end:
                    return not in_base
            return True

        return dataclasses.replace(
            result,
            findings=[finding for finding in result.findings
                      if changed(finding)])

    def task(self, session, state, options):
        """Worker task: full analysis worker-side via a rehydrated store."""
        checker = state.checker
        return _CccTask(_AnalysisTaskSpec(
            store_spec=checker.store.spec if checker.store is not None else None,
            snippet=state.snippet,
            categories=state.categories,
            query_ids=state.query_ids,
            timeout=state.timeout if state.timeout is not None else checker.timeout,
            max_flow_depth=state.max_flow_depth if state.max_flow_depth is not None
            else checker.max_flow_depth,
        ))


# ---------------------------------------------------------------------------
# two-phase validation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ValidateTask:
    """Picklable per-request validation task for the process backend."""

    spec: _ValidationTaskSpec

    def __call__(self, request: AnalysisRequest):
        """Validate the request's candidate inside the worker."""
        return _validate_task(self.spec, _request_candidate(request))


def _request_candidate(request: AnalysisRequest) -> ValidationCandidate:
    """Rebuild the :class:`ValidationCandidate` a request was adapted from."""
    return ValidationCandidate(
        address=request.contract_id,
        source=request.source,
        snippet_id=request.options.get("snippet_id", ""),
        query_ids=tuple(request.options.get("query_ids", ()) or ()),
    )


@register_analyzer("validate")
class ValidationAnalyzer(Analyzer):
    """Two-phase CCC validation of candidate contracts (Sections 6.3/6.4).

    Options: ``validator`` adopts an existing
    :class:`~repro.pipeline.validation.ContractValidator`;
    ``timeout_seconds`` / ``reduced_flow_depths`` configure a fresh one.
    Each request's ``snippet_id`` and ``query_ids`` options restrict the
    validation to the queries that flagged the snippet (an empty
    selection validates against every query).  The payload is a
    :class:`~repro.pipeline.validation.ValidationOutcome`.
    """

    title = "two-phase CCC validation (timeout + path reduction)"

    def prepare(self, session, requests, options):
        """Adopt the optional prebuilt validator or build one on the store."""
        validator = options.get("validator")
        if validator is None:
            config = session.config
            validator = ContractValidator(
                timeout_seconds=options.get(
                    "timeout_seconds", config.validation_timeout_seconds),
                reduced_flow_depths=options.get(
                    "reduced_flow_depths", config.reduced_flow_depths),
                checker=ContractChecker(store=session.store),
            )
        return validator

    def analyze(self, session, state, request):
        """Validate one candidate through the shared validator."""
        return state.validate_candidate(_request_candidate(request))

    def task(self, session, state, options):
        """Worker task: rebuild an equivalent validator inside the worker."""
        checker = state.checker
        return _ValidateTask(_ValidationTaskSpec(
            timeout_seconds=state.timeout_seconds,
            reduced_flow_depths=state.reduced_flow_depths,
            store_spec=checker.store.spec if checker.store is not None else None,
        ))


# ---------------------------------------------------------------------------
# temporal categorisation and correlation (corpus scope)
# ---------------------------------------------------------------------------

def _snippet_items(corpus: Sequence) -> list:
    """The :class:`~repro.datasets.corpus.Snippet`-shaped items of a corpus."""
    return [item for item in corpus
            if getattr(item, "snippet_id", None) is not None
            and getattr(item, "text", None) is not None]


def _resolve_temporal(session, corpus, options, analyzer_id: str):
    """Shared input resolution of the temporal/correlation analyzers.

    An empty snippet corpus is legal (it yields empty categories, like
    the legacy ``categorize_pairs`` path); only the deployed contracts
    are strictly required.
    """
    snippets = options.get("snippets") or _snippet_items(corpus)
    contracts = options.get("contracts")
    if contracts is None:
        raise ValueError(
            f"the {analyzer_id!r} analyzer needs a snippet corpus and "
            f"options={{{analyzer_id!r}: {{'contracts': [...]}}}} with the "
            f"deployed contracts to categorize against")
    mapping = options.get("mapping")
    if mapping is None:
        from repro.pipeline.clone_mapping import map_snippets_to_contracts

        config = session.config
        mapping = map_snippets_to_contracts(
            snippets, contracts,
            ngram_size=config.ngram_size,
            ngram_threshold=config.ngram_threshold,
            similarity_threshold=config.similarity_threshold,
            fingerprint_block_size=config.fingerprint_block_size,
            session=session,
        )
    return snippets, contracts, mapping


@register_analyzer("temporal")
class TemporalAnalyzer(Analyzer):
    """All / Disseminator / Source categorisation of clone pairs (Section 6.2).

    Corpus scope: the corpus is the snippet set; ``contracts`` (required
    option) is the deployed-contract corpus, and ``mapping`` optionally
    supplies a precomputed :class:`~repro.pipeline.clone_mapping.CloneMapping`
    (it is computed through the session's CCD analyzer otherwise).  The
    payload is a :class:`~repro.pipeline.temporal.TemporalCategories`.
    """

    title = "temporal clone-pair categorisation (All/Disseminator/Source)"
    scope = "corpus"

    def analyze_corpus(self, session, corpus, options):
        """Categorize every snippet/contract clone pair temporally."""
        snippets, contracts, mapping = _resolve_temporal(
            session, corpus, options, self.analyzer_id)
        return categorize_pairs(snippets, contracts, mapping)


@register_analyzer("correlation")
class CorrelationAnalyzer(Analyzer):
    """Spearman correlation of snippet views vs. adoption (Table 5).

    Corpus scope, same inputs as the temporal analyzer; ``temporal``
    optionally supplies precomputed
    :class:`~repro.pipeline.temporal.TemporalCategories`.  The payload is
    a list of :class:`~repro.pipeline.correlation.CorrelationResult`.
    """

    title = "popularity vs. adoption correlation (Spearman rho)"
    scope = "corpus"

    def analyze_corpus(self, session, corpus, options):
        """Correlate snippet view counts with containing-contract counts."""
        temporal = options.get("temporal")
        if isinstance(temporal, TemporalCategories):
            snippets = options.get("snippets") or _snippet_items(corpus)
            contracts = options.get("contracts")
            if contracts is None:
                raise ValueError(
                    "the 'correlation' analyzer needs "
                    "options={'correlation': {'contracts': [...]}} even when "
                    "'temporal' categories are supplied")
        else:
            snippets, contracts, mapping = _resolve_temporal(
                session, corpus, options, self.analyzer_id)
            temporal = categorize_pairs(snippets, contracts, mapping)
        return correlate_views_with_adoption(snippets, contracts, temporal)


__all__ = [
    "CloneDetectionAnalyzer",
    "CorrelationAnalyzer",
    "TemporalAnalyzer",
    "ValidationAnalyzer",
    "VulnerabilityAnalyzer",
]
