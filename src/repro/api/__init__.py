"""``repro.api`` — the unified analysis API.

One façade over every workload of the reproduction.  An
:class:`AnalysisSession` owns exactly one parse-once
:class:`~repro.core.artifacts.ArtifactStore` (memory tier plus optional
SQLite disk tier) and one :class:`~repro.core.executor.Executor`, wired
from a typed :class:`SessionConfig`.  Workloads are :class:`Analyzer`
implementations in an :class:`AnalyzerRegistry` — clone detection
(``ccd``), vulnerability checking (``ccc``), two-phase validation
(``validate``), temporal categorisation (``temporal``), and correlation
(``correlation``) ship built in, and new workloads register with the
:func:`register_analyzer` decorator instead of hand-wiring another
store/executor/cache combination.

Every analyzer consumes uniform :class:`AnalysisRequest` objects and
emits uniform :class:`AnalysisResult` envelopes (analyzer id, contract
id, payload, timings, cache info).  ``session.run`` returns the whole
batch; ``session.run_iter`` streams per-contract envelopes as they
complete under all three executor backends with byte-identical canonical
output — see :doc:`docs/api.md </docs/api>` for the full tour and the
migration table from the legacy entry points.
"""

from repro.api.envelope import (
    AnalysisRequest,
    AnalysisResult,
    canonical_json,
    canonicalize,
)
from repro.api.registry import (
    REGISTRY,
    Analyzer,
    AnalyzerRegistry,
    all_analyzers,
    get_analyzer,
    register_analyzer,
)
from repro.api.session import AnalysisSession, SessionConfig, as_request

# importing the module registers the built-in analyzers in REGISTRY
from repro.api import analyzers as _builtin_analyzers  # noqa: F401  (side effect)

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "Analyzer",
    "AnalyzerRegistry",
    "REGISTRY",
    "SessionConfig",
    "all_analyzers",
    "as_request",
    "canonical_json",
    "canonicalize",
    "get_analyzer",
    "register_analyzer",
]
