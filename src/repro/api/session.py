"""`AnalysisSession` — one façade over CCD, CCC, validation, and the pipeline.

A session owns exactly one :class:`~repro.core.artifacts.ArtifactStore`
(in-memory, with an optional SQLite disk tier) and one
:class:`~repro.core.executor.Executor`, wired from a typed
:class:`SessionConfig`.  Every workload — clone detection, vulnerability
checking, two-phase validation, temporal categorisation, correlation, or
anything user-registered — runs through the same two entry points::

    from repro.api import AnalysisSession, SessionConfig

    with AnalysisSession(SessionConfig(backend="thread")) as session:
        results = session.run(contracts, analyses=["ccd", "ccc"])     # batch
        for result in session.run_iter(contracts, analyses=["ccc"]):  # streaming
            print(result.contract_id, result.payload)

Both entry points share parses: each unique source is parsed at most once
per session, no matter how many analyzers consume it.  ``run_iter``
additionally bounds memory — per-contract envelopes are yielded as their
chunks complete instead of being accumulated, which is what makes
million-contract corpora tractable.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from functools import partial
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Union

from repro.api.envelope import AnalysisRequest, AnalysisResult
from repro.api.registry import REGISTRY, Analyzer, AnalyzerRegistry, get_analyzer
from repro.core.artifacts import ArtifactStore
from repro.core.executor import Executor
from repro.core.persistence import DiskArtifactStore

#: analyzer references accepted by :meth:`AnalysisSession.run`
AnalyzerRef = Union[str, Analyzer]


@dataclass(frozen=True)
class SessionConfig:
    """Typed configuration for an :class:`AnalysisSession`.

    One object replaces the divergent constructor wiring the legacy entry
    points each carried: executor backend and fan-out, artifact-store
    sizing and disk tier, the shared CCD parameters (which the store and
    every detector must agree on), and the analyzer defaults.
    """

    #: executor backend: ``"serial"``, ``"thread"``, or ``"process"``
    backend: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: int = 8
    #: LRU bound of the in-memory artifact tier
    cache_size: int = 8192
    #: directory of the optional SQLite disk tier (warm restarts)
    cache_dir: Optional[str] = None
    #: CCD configuration shared by the store and session-built detectors
    ngram_size: int = 3
    fingerprint_block_size: int = 2
    fingerprint_window: int = 4
    ngram_threshold: float = 0.5
    similarity_threshold: float = 0.7
    #: CCD verification backend: ``"bounded"`` (pruned, byte-identical
    #: results), ``"myers"`` (same pruning, bit-parallel distance
    #: kernel), or ``"exact"`` (the naive reference)
    similarity_backend: str = "bounded"
    #: SQLite file of the corpus-global (sub₁, sub₂) score memo; ``None``
    #: keeps pair scores in memory only (still shared across the
    #: session's queries, but cold after a restart)
    score_memo_path: Optional[str] = None
    #: default CCC per-unit timeout (seconds; ``None`` = unbounded)
    checker_timeout: Optional[float] = None
    #: defaults of the two-phase validation analyzer
    validation_timeout_seconds: float = 1800.0
    reduced_flow_depths: tuple = (24, 12, 6)
    #: in-flight chunk window of :meth:`AnalysisSession.run_iter`
    stream_window: int = 4

    def as_dict(self) -> dict:
        """JSON-serializable form (for manifests and reports)."""
        return asdict(self)

    def build_store(self) -> ArtifactStore:
        """The artifact store this configuration describes."""
        kwargs = dict(
            max_entries=self.cache_size,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.fingerprint_block_size,
            fingerprint_window=self.fingerprint_window,
        )
        if self.cache_dir is not None:
            return DiskArtifactStore(self.cache_dir, **kwargs)
        return ArtifactStore(**kwargs)

    def build_executor(self) -> Executor:
        """The executor this configuration describes."""
        return Executor.create(
            self.backend, max_workers=self.max_workers, chunk_size=self.chunk_size)


def as_request(item: Any, index: int) -> AnalysisRequest:
    """Adapt one corpus item to an :class:`AnalysisRequest`.

    Accepted shapes: a ready request, an ``(id, source)`` pair, a plain
    source string (the position becomes the id), and the dataset types by
    duck-typing — :class:`~repro.datasets.corpus.DeployedContract`
    (``address``/``source``), :class:`~repro.datasets.corpus.Snippet`
    (``snippet_id``/``text``), and
    :class:`~repro.pipeline.validation.ValidationCandidate` (whose
    ``snippet_id``/``query_ids`` ride along in the request options).
    """
    if isinstance(item, AnalysisRequest):
        return item
    if isinstance(item, str):
        return AnalysisRequest(contract_id=index, source=item)
    if isinstance(item, (tuple, list)) and len(item) == 2:
        return AnalysisRequest(contract_id=item[0], source=item[1])
    address = getattr(item, "address", None)
    source = getattr(item, "source", None)
    if address is not None and source is not None:
        options: dict = {}
        snippet_id = getattr(item, "snippet_id", None)
        if snippet_id is not None:  # a ValidationCandidate-shaped item
            options["snippet_id"] = snippet_id
            options["query_ids"] = tuple(getattr(item, "query_ids", ()) or ())
        return AnalysisRequest(contract_id=address, source=source, options=options)
    snippet_id = getattr(item, "snippet_id", None)
    text = getattr(item, "text", None)
    if snippet_id is not None and text is not None:
        return AnalysisRequest(contract_id=snippet_id, source=text)
    raise TypeError(
        f"cannot adapt corpus item of type {type(item).__name__} to an "
        f"AnalysisRequest; pass (id, source) pairs, AnalysisRequest objects, "
        f"or dataset contract/snippet/candidate objects")


def _timed_task(task, request: AnalysisRequest) -> tuple:
    """Run a worker-side analyzer task with timing (module-level: picklable)."""
    started = time.perf_counter()
    value = task(request)
    return value, time.perf_counter() - started


class AnalysisSession:
    """Run registered analyzers over a contract corpus with shared parses.

    Parameters
    ----------
    config:
        The :class:`SessionConfig`; defaults throughout when omitted.
    store / executor:
        Pre-built components to adopt instead of building them from the
        configuration — the session then does *not* own them and will not
        close them.  This is how the legacy shims and the study wrap
        their existing wiring in a session.
    registry:
        The analyzer registry to resolve ids against; the process-wide
        default registry (with the built-in analyzers) when omitted.
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        *,
        store: Optional[ArtifactStore] = None,
        executor: Optional[Executor] = None,
        registry: Optional[AnalyzerRegistry] = None,
    ):
        self.config = config if config is not None else SessionConfig()
        self._owns_store = store is None
        self._owns_executor = executor is None
        self.store = store if store is not None else self.config.build_store()
        self.executor = executor if executor is not None else self.config.build_executor()
        self.registry = registry if registry is not None else REGISTRY

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Release the executor and disk store, if this session built them."""
        if self._owns_executor:
            self.executor.close()
        if self._owns_store and isinstance(self.store, DiskArtifactStore):
            self.store.close()

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"AnalysisSession(backend={self.executor.backend!r}, "
                f"store={type(self.store).__name__}, "
                f"analyzers={self.registry.ids()})")

    @property
    def stats(self):
        """The artifact-store statistics (parse-once counters, hit rates)."""
        return self.store.stats

    # -- running analyses -----------------------------------------------------
    def requests(self, corpus: Iterable[Any]) -> List[AnalysisRequest]:
        """Adapt a corpus to the uniform request list (see :func:`as_request`)."""
        return [as_request(item, index) for index, item in enumerate(corpus)]

    def run(
        self,
        corpus: Iterable[Any],
        analyses: Sequence[AnalyzerRef],
        options: Optional[dict] = None,
    ) -> List[AnalysisResult]:
        """Run the named analyses over the corpus and return all envelopes.

        Results are ordered analysis-major: every envelope of the first
        analysis (in corpus order), then the second, and so on.  The
        whole result list is materialized — use :meth:`run_iter` when the
        corpus is large enough that holding every payload hurts.
        """
        return list(self._execute(corpus, analyses, options, stream=False))

    def run_iter(
        self,
        corpus: Iterable[Any],
        analyses: Sequence[AnalyzerRef],
        options: Optional[dict] = None,
    ) -> Iterator[AnalysisResult]:
        """Stream per-contract envelopes as they complete.

        Same ordering and byte-identical canonical envelopes as
        :meth:`run` under every executor backend, but only
        ``stream_window * chunk_size`` results are in flight at any
        moment, so peak memory stays flat in the corpus size.
        """
        return self._execute(corpus, analyses, options, stream=True)

    def _execute(self, corpus, analyses, options, stream: bool) -> Iterator[AnalysisResult]:
        corpus = list(corpus)
        all_options = options or {}
        resolved = [get_analyzer(ref, self.registry) for ref in analyses]

        def generate():
            requests: Optional[List[AnalysisRequest]] = None
            for analyzer in resolved:
                opts = dict(all_options.get(analyzer.analyzer_id, {}))
                if analyzer.scope == "corpus":
                    yield self._run_corpus_analysis(analyzer, corpus, opts)
                    continue
                if requests is None:
                    requests = self.requests(corpus)
                yield from self._run_contract_analysis(analyzer, requests, opts, stream)

        return generate()

    def _run_corpus_analysis(self, analyzer: Analyzer, corpus: list, opts: dict) -> AnalysisResult:
        """One corpus-scope analysis -> one envelope with ``contract_id=None``."""
        started = time.perf_counter()
        payload = analyzer.analyze_corpus(self, corpus, opts)
        return AnalysisResult(
            analyzer=analyzer.analyzer_id,
            contract_id=None,
            payload=payload,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _run_contract_analysis(
        self,
        analyzer: Analyzer,
        requests: List[AnalysisRequest],
        opts: dict,
        stream: bool,
    ) -> Iterator[AnalysisResult]:
        """Fan one contract-scope analysis out over the session executor."""
        state = analyzer.prepare(self, requests, opts)
        window = max(1, self.config.stream_window)
        if self.executor.supports_shared_state:
            store = self.store

            def shared_task(request: AnalysisRequest) -> tuple:
                cached = request.source in store
                started = time.perf_counter()
                payload = analyzer.analyze(self, state, request)
                return payload, time.perf_counter() - started, cached

            if stream:
                outputs = self.executor.imap_batches(shared_task, requests, window=window)
            else:
                outputs = iter(self.executor.map_batches(shared_task, requests))
            for request, (payload, elapsed, cached) in zip(requests, outputs):
                yield AnalysisResult(
                    analyzer=analyzer.analyzer_id,
                    contract_id=request.contract_id,
                    payload=payload,
                    elapsed_seconds=elapsed,
                    cache={"artifact_cached": cached},
                )
            return
        task = partial(_timed_task, analyzer.task(self, state, opts))
        if stream:
            outputs = self.executor.imap_batches(task, requests, window=window)
        else:
            outputs = iter(self.executor.map_batches(task, requests))
        for request, (intermediate, elapsed) in zip(requests, outputs):
            yield AnalysisResult(
                analyzer=analyzer.analyzer_id,
                contract_id=request.contract_id,
                payload=analyzer.finish(self, state, request, intermediate),
                elapsed_seconds=elapsed,
            )


__all__ = ["AnalysisSession", "AnalyzerRef", "SessionConfig", "as_request"]
