"""The measurement pipeline combining CCC and CCD (Sections 3 and 6).

Modules:

* :mod:`repro.pipeline.collection` — snippet collection and filtering
  (Solidity keyword filter, parsability filter, deduplication; Table 4),
* :mod:`repro.pipeline.clone_mapping` — mapping snippets to deployed
  contracts with CCD,
* :mod:`repro.pipeline.temporal` — All / Disseminator / Source snippet
  categorisation (Section 6.2),
* :mod:`repro.pipeline.correlation` — popularity vs. adoption Spearman
  analysis (Table 5),
* :mod:`repro.pipeline.validation` — two-phase CCC validation of candidate
  contracts with timeouts and path reduction (Section 6.3),
* :mod:`repro.pipeline.checkpoint` — durable, resumable study progress
  (manifest + per-stage/per-chunk payloads),
* :mod:`repro.pipeline.experiment` — the end-to-end study orchestration
  (Figure 6, Tables 6 and 7), checkpointable and incremental,
* :mod:`repro.pipeline.report` — plain-text table and report rendering.
"""

from repro.pipeline.checkpoint import StudyCheckpoint, StudyCheckpointError
from repro.pipeline.clone_mapping import CloneMapping, map_snippets_to_contracts
from repro.pipeline.collection import CollectionFunnel, CollectionResult, SnippetCollector
from repro.pipeline.correlation import CorrelationResult, correlate_views_with_adoption
from repro.pipeline.experiment import StudyConfiguration, StudyResult, VulnerableCodeReuseStudy
from repro.pipeline.report import render_study_report
from repro.pipeline.temporal import TemporalCategories, categorize_pairs
from repro.pipeline.validation import (
    ContractValidator,
    ValidationCandidate,
    ValidationOutcome,
    ValidationSummary,
)

__all__ = [
    "CloneMapping",
    "CollectionFunnel",
    "CollectionResult",
    "ContractValidator",
    "CorrelationResult",
    "SnippetCollector",
    "StudyCheckpoint",
    "StudyCheckpointError",
    "StudyConfiguration",
    "StudyResult",
    "TemporalCategories",
    "ValidationCandidate",
    "ValidationOutcome",
    "ValidationSummary",
    "VulnerableCodeReuseStudy",
    "categorize_pairs",
    "correlate_views_with_adoption",
    "map_snippets_to_contracts",
    "render_study_report",
]
