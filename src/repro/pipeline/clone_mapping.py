"""Mapping snippets to deployed contracts with CCD (Figure 6, step 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ccd.detector import CloneDetector
from repro.core.artifacts import ArtifactStore
from repro.core.executor import Executor
from repro.datasets.corpus import DeployedContract, Snippet


@dataclass
class CloneMapping:
    """The snippet -> contract clone map produced by CCD."""

    #: snippet_id -> list of (contract address, similarity score)
    matches: dict[str, list[tuple[str, float]]] = field(default_factory=dict)
    indexed_contracts: int = 0
    unparsable_contracts: int = 0
    unparsable_snippets: int = 0

    def contracts_for(self, snippet_id: str) -> list[str]:
        """Addresses of the contracts containing a clone of the snippet."""
        return [address for address, _score in self.matches.get(snippet_id, [])]

    def snippets_with_clones(self) -> list[str]:
        """Ids of the snippets with at least one containing contract."""
        return [snippet_id for snippet_id, matches in self.matches.items() if matches]

    @property
    def total_pairs(self) -> int:
        """Total number of snippet/contract clone pairs."""
        return sum(len(matches) for matches in self.matches.values())


def map_snippets_to_contracts(
    snippets: list[Snippet],
    contracts: list[DeployedContract],
    *,
    ngram_size: int = 3,
    ngram_threshold: float = 0.5,
    similarity_threshold: float = 0.9,
    fingerprint_block_size: int = 2,
    similarity_backend: Optional[str] = None,
    detector: Optional[CloneDetector] = None,
    store: Optional[ArtifactStore] = None,
    executor: Optional[Executor] = None,
    session=None,
) -> CloneMapping:
    """Index the deployed contracts and find clones of every snippet.

    The default thresholds are the conservative configuration of the
    large-scale study (N=3, η=0.5, ε=0.9; Section 6.3).
    ``similarity_backend`` selects the verification backend of the
    internally built detector (``"bounded"`` by default — see
    :mod:`repro.ccd.matcher`; every backend maps identically).
    ``session`` supplies the shared :class:`~repro.api.AnalysisSession`
    whose store and executor the mapping runs through (the study passes
    its own); ``store``/``executor`` remain as direct overrides, and
    without either a throwaway serial session is wired up internally.
    """
    from repro.api import AnalysisSession

    if session is not None:
        store = store if store is not None else session.store
        executor = executor if executor is not None else session.executor
    if detector is None:
        detector = CloneDetector(
            ngram_size=ngram_size,
            ngram_threshold=ngram_threshold,
            similarity_threshold=similarity_threshold,
            fingerprint_block_size=fingerprint_block_size,
            store=store,
            similarity_backend=similarity_backend,
        )
    mapping = CloneMapping()
    indexed = detector.add_corpus(
        [(contract.address, contract.source) for contract in contracts], executor=executor)
    mapping.indexed_contracts = indexed
    mapping.unparsable_contracts = len(contracts) - indexed
    owns_session = session is None
    if session is None:
        session = AnalysisSession(store=store, executor=executor)
    try:
        envelopes = session.run(
            [(snippet.snippet_id, snippet.text) for snippet in snippets],
            analyses=["ccd"], options={"ccd": {"detector": detector}})
    finally:
        if owns_session:
            session.close()
    for snippet, envelope in zip(snippets, envelopes):
        if envelope.payload is None:
            mapping.unparsable_snippets += 1
            mapping.matches[snippet.snippet_id] = []
            continue
        mapping.matches[snippet.snippet_id] = [
            (match.document_id, match.similarity) for match in envelope.payload
        ]
    return mapping
