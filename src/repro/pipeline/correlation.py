"""Popularity vs. adoption correlation analysis (Section 6.2, Table 5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.corpus import DeployedContract, Snippet
from repro.metrics.correlation import spearman_rho
from repro.pipeline.collection import canonical_text
from repro.pipeline.temporal import TemporalCategories


@dataclass
class CorrelationResult:
    """Spearman ρ between snippet views and number of containing contracts."""

    category: str
    sample_size: int
    rho: float
    p_value: float

    def as_row(self) -> dict:
        """The correlation as one Table 5 row dict (ρ rounded to 3 digits)."""
        return {
            "category": self.category,
            "sample_size": self.sample_size,
            "rho": round(self.rho, 3),
            "p_value": self.p_value,
        }


def _unique_contract_count(addresses: list[str], contract_index: dict[str, DeployedContract]) -> int:
    """Count contracts with unique source code (duplicates collapse to one)."""
    unique_sources = {canonical_text(contract_index[address].source)
                      for address in addresses if address in contract_index}
    return len(unique_sources)


def correlate_views_with_adoption(
    snippets: list[Snippet],
    contracts: list[DeployedContract],
    categories: TemporalCategories,
) -> list[CorrelationResult]:
    """Compute Table 5: ρ(views, containing contracts) per temporal category.

    Only snippets with at least one containing contract are included (the
    paper restricts to ``nr > 0`` to keep the three groups comparable).
    """
    snippet_index = {snippet.snippet_id: snippet for snippet in snippets}
    contract_index = {contract.address: contract for contract in contracts}
    results: list[CorrelationResult] = []
    for name, group in (
        ("All Snippets", categories.all_snippets),
        ("Disseminator", categories.disseminator),
        ("Source", categories.source),
    ):
        views: list[float] = []
        adoption: list[float] = []
        for snippet_id, addresses in group.items():
            snippet = snippet_index.get(snippet_id)
            if snippet is None or not addresses:
                continue
            count = _unique_contract_count(addresses, contract_index)
            if count == 0:
                continue
            views.append(float(snippet.views))
            adoption.append(float(count))
        if len(views) >= 3:
            rho, p_value = spearman_rho(views, adoption)
        else:
            rho, p_value = 0.0, 1.0
        results.append(CorrelationResult(category=name, sample_size=len(views),
                                         rho=rho, p_value=p_value))
    return results
