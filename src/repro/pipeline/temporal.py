"""Temporal categorisation of snippet/contract clone pairs (Section 6.2).

Three nested groups of snippets are distinguished:

* **All Snippets** — every snippet with at least one containing contract,
  regardless of deployment dates,
* **Disseminator** — snippets for which at least one containing contract
  was deployed *after* the snippet was posted; only those later contracts
  are counted,
* **Source** — disseminator snippets with *no* containing contract deployed
  before the posting; these are the most likely origins of copy-and-paste.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.corpus import DeployedContract, Snippet
from repro.pipeline.clone_mapping import CloneMapping


@dataclass
class TemporalCategories:
    """Snippet ids and their counted contracts per temporal category."""

    #: snippet_id -> contract addresses (any deployment date)
    all_snippets: dict[str, list[str]] = field(default_factory=dict)
    #: snippet_id -> contract addresses deployed after the snippet was posted
    disseminator: dict[str, list[str]] = field(default_factory=dict)
    #: subset of disseminator with no earlier containing contract
    source: dict[str, list[str]] = field(default_factory=dict)

    @property
    def all_contract_addresses(self) -> set[str]:
        """Every containing-contract address, regardless of deployment date."""
        return {address for addresses in self.all_snippets.values() for address in addresses}

    @property
    def disseminator_contract_addresses(self) -> set[str]:
        """Containing-contract addresses deployed after their snippet."""
        return {address for addresses in self.disseminator.values() for address in addresses}

    @property
    def source_contract_addresses(self) -> set[str]:
        """Containing-contract addresses counted for Source snippets."""
        return {address for addresses in self.source.values() for address in addresses}

    def summary(self) -> dict[str, int]:
        """Snippet and contract counts per temporal category."""
        return {
            "all_snippets": len(self.all_snippets),
            "disseminator_snippets": len(self.disseminator),
            "source_snippets": len(self.source),
            "all_contracts": len(self.all_contract_addresses),
            "disseminator_contracts": len(self.disseminator_contract_addresses),
            "source_contracts": len(self.source_contract_addresses),
        }


def categorize_pairs(
    snippets: list[Snippet],
    contracts: list[DeployedContract],
    mapping: CloneMapping,
) -> TemporalCategories:
    """Split the clone map into the All/Disseminator/Source categories."""
    contract_index = {contract.address: contract for contract in contracts}
    snippet_index = {snippet.snippet_id: snippet for snippet in snippets}
    categories = TemporalCategories()
    for snippet_id, matches in mapping.matches.items():
        snippet = snippet_index.get(snippet_id)
        if snippet is None or not matches:
            continue
        addresses = [address for address, _score in matches if address in contract_index]
        if not addresses:
            continue
        categories.all_snippets[snippet_id] = addresses
        later = [address for address in addresses
                 if contract_index[address].deployed > snippet.created]
        earlier = [address for address in addresses
                   if contract_index[address].deployed <= snippet.created]
        if later:
            categories.disseminator[snippet_id] = later
            if not earlier:
                categories.source[snippet_id] = later
    return categories
