"""Resumable study checkpoints: manifest + per-stage payloads on disk.

A :class:`StudyCheckpoint` turns a directory into durable progress state
for :class:`~repro.pipeline.experiment.VulnerableCodeReuseStudy`.  Each
pipeline stage (``collection``, ``clone_mapping``, ``checking``,
``validation``) records its results as it goes:

* whole-stage payloads (``stage-<name>.pkl``) for the cheap stages,
* numbered chunk payloads (``stage-<name>.chunk-0007.pkl``) for the two
  expensive, embarrassingly-parallel stages (CCC snippet checking and
  candidate validation), written after every completed chunk.

``manifest.json`` tracks the state of every stage plus free-form metadata
(the study configuration and, for the CLI, the corpus generation
parameters needed to rebuild identical inputs on ``repro study resume``).

All writes are atomic (:mod:`repro.core.persistence`), so a run killed at
any instant leaves either the previous or the new state on disk — never a
torn file.  A resumed run replays completed stages/chunks from disk and
recomputes only the remainder; because every stage is deterministic, the
resumed results are byte-identical to an uninterrupted run.

Thread-safety: a checkpoint instance is driven by the study's main thread
only (worker fan-out happens *inside* a chunk); it is not itself
thread-safe and does not need to be.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.fileio import dump_json, dump_pickle, try_load_json, try_load_pickle

#: bump when the manifest layout or any stage payload format changes
CHECKPOINT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: the stages a study records, in pipeline order
STAGES = ("collection", "clone_mapping", "checking", "validation")


class StudyCheckpointError(RuntimeError):
    """A checkpoint directory is incompatible with the resuming study."""


class StudyCheckpoint:
    """Durable, resumable progress state for one study run.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on demand).  An existing manifest
        is loaded and validated; an empty or missing directory starts a
        fresh checkpoint.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        manifest = try_load_json(self.directory / MANIFEST_NAME)
        if manifest is None:
            manifest = {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "stages": {},
                "metadata": {},
            }
        if not isinstance(manifest, dict) or \
                manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise StudyCheckpointError(
                f"checkpoint at {self.directory} has format version "
                f"{manifest.get('format_version') if isinstance(manifest, dict) else '?'}, "
                f"expected {CHECKPOINT_FORMAT_VERSION}")
        self._manifest = manifest

    # -- manifest -------------------------------------------------------------
    @property
    def metadata(self) -> dict:
        """Free-form JSON metadata (configuration, corpus parameters)."""
        return dict(self._manifest.get("metadata", {}))

    def update_metadata(self, **values) -> None:
        """Merge ``values`` into the manifest metadata and persist it."""
        self._manifest.setdefault("metadata", {}).update(values)
        self._write_manifest()

    def stage_state(self, name: str) -> Optional[dict]:
        """The recorded state of a stage, or ``None`` when never started."""
        state = self._manifest.get("stages", {}).get(name)
        return dict(state) if state is not None else None

    def is_complete(self, name: str) -> bool:
        """Whether a stage finished (all chunks written, payload durable)."""
        state = self.stage_state(name)
        return state is not None and state.get("state") == "complete"

    def summary(self) -> list[dict]:
        """Per-stage progress rows for status output (``repro study resume``)."""
        rows = []
        for name in STAGES:
            state = self.stage_state(name) or {"state": "pending"}
            rows.append({"stage": name, **state})
        return rows

    def _write_manifest(self) -> None:
        dump_json(self.directory / MANIFEST_NAME, self._manifest)

    def _set_stage(self, name: str, **state) -> None:
        self._manifest.setdefault("stages", {})[name] = state
        self._write_manifest()

    # -- whole-stage payloads -------------------------------------------------
    def _stage_path(self, name: str) -> Path:
        return self.directory / f"stage-{name}.pkl"

    def save_stage(self, name: str, payload: object) -> None:
        """Persist a completed stage's payload and mark the stage complete."""
        dump_pickle(self._stage_path(name), payload)
        self._set_stage(name, state="complete")

    def load_stage(self, name: str) -> Optional[object]:
        """A completed stage's payload, or ``None`` to recompute.

        A corrupt payload demotes the stage to pending (counted once, then
        recomputed) rather than failing the resume.
        """
        if not self.is_complete(name):
            return None
        payload = try_load_pickle(self._stage_path(name))
        if payload is None:
            self._set_stage(name, state="pending")
        return payload

    # -- chunked payloads -----------------------------------------------------
    def _chunk_path(self, name: str, index: int) -> Path:
        return self.directory / f"stage-{name}.chunk-{index:04d}.pkl"

    def save_chunk(self, name: str, index: int, payload: object, total: int) -> None:
        """Persist chunk ``index`` of ``total`` and update the stage state.

        Chunks are written strictly in order by the study loop; the last
        chunk flips the stage to ``complete``.
        """
        dump_pickle(self._chunk_path(name, index), payload)
        done = index + 1
        if done >= total:
            self._set_stage(name, state="complete", chunks=done, total=total)
        else:
            self._set_stage(name, state="partial", chunks=done, total=total)

    def load_chunks(self, name: str) -> list:
        """Payloads of the contiguous prefix of completed chunks.

        Stops at the first missing or unreadable chunk file — everything
        after it is recomputed by the resuming run.
        """
        state = self.stage_state(name)
        if state is None or "chunks" not in state:
            return []
        payloads = []
        for index in range(int(state["chunks"])):
            payload = try_load_pickle(self._chunk_path(name, index))
            if payload is None:
                break
            payloads.append(payload)
        return payloads

    def mark_stage_complete(self, name: str, total: int = 0) -> None:
        """Mark a chunked stage with zero pending chunks as complete."""
        self._set_stage(name, state="complete", chunks=total, total=total)


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "STAGES",
    "StudyCheckpoint",
    "StudyCheckpointError",
]
