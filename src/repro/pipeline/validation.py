"""Two-phase validation of candidate contracts with CCC (Sections 6.3/6.4).

Contracts identified by CCD as containing a vulnerable snippet are
re-analysed with CCC, restricted to the vulnerability (query) that was
found in the snippet.  Phase 1 runs with a per-contract timeout; contracts
that time out are retried in phase 2 with iteratively reduced data-flow
path lengths ("path reduction"), which avoids path explosion without
affecting negated mitigation sub-queries (the bound is only applied to the
positive part of the search).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ccc.checker import AnalysisResult, ContractChecker
from repro.ccc.dasp import DaspCategory
from repro.core.artifacts import ArtifactStore, ArtifactStoreSpec, process_local_store
from repro.core.executor import Executor


@dataclass(frozen=True)
class ValidationCandidate:
    """One snippet/contract pair queued for validation (picklable)."""

    address: str
    source: str
    snippet_id: str
    query_ids: tuple[str, ...] = ()


@dataclass
class ValidationOutcome:
    """The validation result for one candidate contract."""

    address: str
    snippet_id: str
    expected_queries: tuple[str, ...]
    vulnerable: bool = False
    confirmed_queries: tuple[str, ...] = ()
    timed_out: bool = False
    analysis_error: Optional[str] = None
    phase: int = 1
    elapsed_seconds: float = 0.0


@dataclass
class ValidationSummary:
    """Aggregate statistics over all validated contracts (Table 7 rows)."""

    outcomes: list[ValidationOutcome] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        """Number of snippet/contract pairs that entered validation."""
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        """Pairs whose analysis finished (no timeout, no parse error)."""
        return sum(1 for outcome in self.outcomes if not outcome.timed_out and outcome.analysis_error is None)

    @property
    def completed_phase1(self) -> int:
        """Pairs that completed without needing phase-2 path reduction."""
        return sum(1 for outcome in self.outcomes
                   if outcome.phase == 1 and not outcome.timed_out and outcome.analysis_error is None)

    @property
    def vulnerable(self) -> int:
        """Pairs whose contract confirmed at least one expected query."""
        return sum(1 for outcome in self.outcomes if outcome.vulnerable)

    @property
    def vulnerable_addresses(self) -> set[str]:
        """Addresses of the contracts confirmed vulnerable."""
        return {outcome.address for outcome in self.outcomes if outcome.vulnerable}

    @property
    def vulnerable_snippet_ids(self) -> set[str]:
        """Ids of the snippets confirmed in at least one contract."""
        return {outcome.snippet_id for outcome in self.outcomes if outcome.vulnerable}


class ContractValidator:
    """Run the two-phase CCC validation on snippet/contract candidate pairs."""

    def __init__(
        self,
        timeout_seconds: float = 1800.0,
        reduced_flow_depths: Sequence[int] = (24, 12, 6),
        checker: Optional[ContractChecker] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.timeout_seconds = timeout_seconds
        self.reduced_flow_depths = tuple(reduced_flow_depths)
        self.checker = checker if checker is not None else ContractChecker(store=store)

    def validate(
        self,
        address: str,
        source: str,
        snippet_id: str,
        query_ids: Sequence[str],
        categories: Optional[Sequence[DaspCategory]] = None,
    ) -> ValidationOutcome:
        """Validate one contract against the queries that flagged its snippet."""
        outcome = ValidationOutcome(address=address, snippet_id=snippet_id,
                                    expected_queries=tuple(query_ids))
        result = self._run(source, query_ids, categories, max_flow_depth=None)
        outcome.elapsed_seconds = result.elapsed_seconds
        if result.parse_error is not None:
            outcome.analysis_error = result.parse_error
            return outcome
        if not result.timed_out:
            self._apply(outcome, result, phase=1)
            return outcome
        # phase 2: iteratively reduce the explored data-flow path length
        for depth in self.reduced_flow_depths:
            result = self._run(source, query_ids, categories, max_flow_depth=depth)
            outcome.elapsed_seconds += result.elapsed_seconds
            if result.parse_error is not None:
                outcome.analysis_error = result.parse_error
                return outcome
            if not result.timed_out:
                self._apply(outcome, result, phase=2)
                return outcome
        outcome.timed_out = True
        outcome.phase = 2
        return outcome

    def validate_candidate(self, candidate: ValidationCandidate) -> ValidationOutcome:
        """Validate one queued :class:`ValidationCandidate`."""
        return self.validate(
            address=candidate.address,
            source=candidate.source,
            snippet_id=candidate.snippet_id,
            query_ids=candidate.query_ids,
        )

    def validate_many(
        self,
        candidates: Sequence[ValidationCandidate],
        executor: Optional[Executor] = None,
    ) -> list[ValidationOutcome]:
        """Validate a batch of candidates, optionally fanning out over workers.

        .. deprecated::
            Use :meth:`repro.api.AnalysisSession.run` (or ``run_iter``
            for streaming) with ``analyses=["validate"]`` instead; this
            shim delegates to a session wrapping this validator and
            unwraps the envelopes back to the legacy
            :class:`ValidationOutcome` list, in input order.
        """
        warnings.warn(
            "ContractValidator.validate_many is deprecated; run the "
            "'validate' analyzer through repro.api.AnalysisSession instead",
            DeprecationWarning, stacklevel=2)
        from repro.api import AnalysisSession

        session = AnalysisSession(store=self.checker.store, executor=executor)
        try:
            envelopes = session.run(
                list(candidates), analyses=["validate"],
                options={"validate": {"validator": self}})
        finally:
            session.close()
        return [envelope.payload for envelope in envelopes]

    # -- helpers -------------------------------------------------------------
    def _run(
        self,
        source: str,
        query_ids: Sequence[str],
        categories: Optional[Sequence[DaspCategory]],
        max_flow_depth: Optional[int],
    ) -> AnalysisResult:
        return self.checker.analyze(
            source,
            snippet=True,
            query_ids=list(query_ids) if query_ids else None,
            categories=list(categories) if categories else None,
            timeout=self.timeout_seconds,
            max_flow_depth=max_flow_depth,
        )

    @staticmethod
    def _apply(outcome: ValidationOutcome, result: AnalysisResult, phase: int) -> None:
        outcome.phase = phase
        confirmed = sorted(result.query_ids())
        outcome.confirmed_queries = tuple(confirmed)
        outcome.vulnerable = bool(confirmed)


@dataclass(frozen=True)
class _ValidationTaskSpec:
    """Picklable description of one validator configuration."""

    timeout_seconds: float
    reduced_flow_depths: tuple[int, ...]
    store_spec: Optional[ArtifactStoreSpec]


def _validate_task(spec: _ValidationTaskSpec, candidate: ValidationCandidate) -> ValidationOutcome:
    """Validate one candidate inside a process-backend worker."""
    store = process_local_store(spec.store_spec) if spec.store_spec is not None else None
    validator = ContractValidator(
        timeout_seconds=spec.timeout_seconds,
        reduced_flow_depths=spec.reduced_flow_depths,
        checker=ContractChecker(store=store),
    )
    return validator.validate_candidate(candidate)
