"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print the same rows as the paper's tables; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    rows = [list(map(_fmt, row)) for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def render_percentage(value: float) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{value * 100:.1f}%"
