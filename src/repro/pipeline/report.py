"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print the same rows as the paper's tables; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    rows = [list(map(_fmt, row)) for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def render_percentage(value: float) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def render_study_report(result) -> str:
    """The canonical plain-text report of a study run (Tables 5–7).

    Contains the pipeline funnel, the DASP category distribution, the
    popularity correlations, and the validation summary.  The rendering is
    a pure function of the study's *semantic* results — per-candidate wall
    -clock timings are deliberately excluded — so an interrupted-and-
    resumed run produces a byte-identical report to an uninterrupted one
    (asserted by ``tests/test_pipeline_checkpoint.py``).

    ``result`` is a :class:`~repro.pipeline.experiment.StudyResult`
    (structurally typed to avoid a circular import).
    """
    sections = []
    funnel = result.funnel()
    sections.append(render_table(
        ["Stage", "Count"], list(funnel.items()), title="Pipeline funnel (Table 7)"))
    distribution = result.dasp_distribution()
    sections.append(render_table(
        ["Vulnerability Category", "Snippets", "Contracts"],
        [[category.value, counts["snippets"], counts["contracts"]]
         for category, counts in distribution.items()],
        title="DASP distribution (Table 6)"))
    sections.append(render_table(
        ["Group", "Sample", "Spearman rho", "p-value"],
        [[c.category, c.sample_size, round(c.rho, 3), f"{c.p_value:.3g}"]
         for c in result.correlations],
        title="Views vs adoption (Table 5)"))
    validation = result.validation
    sections.append(
        f"validation: {validation.attempted} pairs attempted, "
        f"{validation.completed} completed "
        f"({validation.completed_phase1} in phase 1), "
        f"{validation.vulnerable} confirmed vulnerable")
    return "\n\n".join(sections) + "\n"


def render_cache_stats(stats, label: str = "artifact cache") -> str:
    """One-line summary of :class:`~repro.core.artifacts.ArtifactStoreStats`.

    Includes the disk-tier counters when ``stats`` is a
    :class:`~repro.core.persistence.DiskArtifactStoreStats`.
    """
    line = (f"{label}: {stats.hits}/{stats.lookups} hits "
            f"({stats.hit_rate:.1%}) — {stats.parse_calls} parses, "
            f"{stats.cpg_builds} CPG builds, {stats.fingerprint_builds} fingerprints")
    if stats.delta_assemblies or stats.function_hits or stats.function_misses:
        line += (f"; incremental: {stats.delta_assemblies} delta assemblies, "
                 f"{stats.function_hits} function hits, "
                 f"{stats.function_parses} function re-parses")
    if hasattr(stats, "disk_hits"):
        line += (f"; disk tier: {stats.disk_hits}/{stats.disk_lookups} hits "
                 f"({stats.disk_hit_rate:.1%}), {stats.disk_writes} writes")
        if stats.disk_corruptions:
            line += f", {stats.disk_corruptions} corrupt entries discarded"
    return line
