"""Snippet collection and filtering (Section 6.1, Table 4).

Three filter stages are applied per Q&A site:

1. **Solidity keyword filter** — snippets that do not contain at least one
   keyword unique to Solidity (i.e. not shared with JavaScript) are
   dropped,
2. **parsability filter** — snippets that the tolerant grammar still cannot
   parse (prose, logs, pseudo-code) are dropped,
3. **deduplication** — exact duplicates (after whitespace/comment
   normalisation) are removed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from typing import Optional

from repro.core.artifacts import ArtifactStore
from repro.datasets.corpus import Snippet
from repro.datasets.snippets import QACorpus
from repro.solidity.errors import SolidityParseError
from repro.solidity.keywords import looks_like_solidity
from repro.solidity.parser import parse_snippet

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_WHITESPACE_RE = re.compile(r"\s+")


def canonical_text(source: str) -> str:
    """Comment- and whitespace-insensitive canonical form used for dedup."""
    text = _COMMENT_RE.sub(" ", source or "")
    return _WHITESPACE_RE.sub(" ", text).strip()


@dataclass
class CollectionFunnel:
    """Per-site counts for every stage of the collection funnel (Table 4)."""

    site: str
    posts: int = 0
    snippets: int = 0
    solidity: int = 0
    parsable: int = 0
    unique: int = 0

    def as_row(self) -> dict:
        """The funnel counts as one Table 4 row dict."""
        return {
            "site": self.site,
            "posts": self.posts,
            "snippets": self.snippets,
            "solidity": self.solidity,
            "parsable": self.parsable,
            "unique": self.unique,
        }


@dataclass
class CollectionResult:
    """The filtered snippet set plus funnel statistics."""

    snippets: list[Snippet] = field(default_factory=list)
    funnels: dict[str, CollectionFunnel] = field(default_factory=dict)
    shape_distribution: dict[str, int] = field(default_factory=dict)
    line_statistics: dict[str, float] = field(default_factory=dict)

    @property
    def total_funnel(self) -> CollectionFunnel:
        """The per-site funnels summed into one "Total" row."""
        total = CollectionFunnel(site="Total")
        for funnel in self.funnels.values():
            total.posts += funnel.posts
            total.snippets += funnel.snippets
            total.solidity += funnel.solidity
            total.parsable += funnel.parsable
            total.unique += funnel.unique
        return total


class SnippetCollector:
    """Apply the collection filters of Section 6.1 to a Q&A corpus.

    With a shared :class:`~repro.core.artifacts.ArtifactStore`, the
    parsability filter materializes each snippet's AST through the store,
    so the downstream stages (CCD fingerprinting, CCC analysis) reuse the
    parse instead of repeating it.
    """

    def __init__(self, min_unique_keywords: int = 1, store: Optional[ArtifactStore] = None):
        self.min_unique_keywords = min_unique_keywords
        self.store = store

    def collect(self, corpus: QACorpus) -> CollectionResult:
        """Filter the corpus and compute the funnel statistics."""
        result = CollectionResult()
        seen_texts: set[str] = set()
        sites = sorted({post.site for post in corpus.posts})
        for site in sites:
            result.funnels[site] = CollectionFunnel(site=site)
        line_counts: list[int] = []
        for post in corpus.posts:
            funnel = result.funnels[post.site]
            funnel.posts += 1
            for snippet in post.snippets:
                funnel.snippets += 1
                if not looks_like_solidity(snippet.text, self.min_unique_keywords):
                    continue
                funnel.solidity += 1
                shape = self._parse_shape(snippet.text)
                if shape is None:
                    continue
                funnel.parsable += 1
                canonical = canonical_text(snippet.text)
                if canonical in seen_texts:
                    continue
                seen_texts.add(canonical)
                funnel.unique += 1
                result.snippets.append(snippet)
                result.shape_distribution[shape] = result.shape_distribution.get(shape, 0) + 1
                line_counts.append(snippet.lines_of_code)
        if line_counts:
            ordered = sorted(line_counts)
            result.line_statistics = {
                "max": float(ordered[-1]),
                "min": float(ordered[0]),
                "mean": sum(ordered) / len(ordered),
                "median": float(ordered[len(ordered) // 2]),
            }
        return result

    def _parse_shape(self, text: str) -> str | None:
        """Return the snippet shape (contract/function/statements) or ``None``."""
        if self.store is not None:
            unit = self.store.get(text).try_unit()
            return unit.shape if unit is not None else None
        try:
            unit = parse_snippet(text)
        except (SolidityParseError, RecursionError):
            return None
        return unit.shape
