"""End-to-end vulnerable-code-reuse study (Figure 6, Tables 6 and 7).

The study combines every pipeline stage:

1. collect and filter snippets (Table 4),
2. map snippets to deployed contracts with CCD,
3. identify vulnerable snippets with CCC,
4. categorise snippet/contract pairs temporally and restrict to
   disseminator (and source) snippets, deduplicate contracts,
5. validate the flagged vulnerability in every candidate contract with CCC
   (two-phase, query-restricted), and
6. aggregate the DASP category distribution and the pipeline funnel.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from repro.ccc.checker import ContractChecker
from repro.ccc.dasp import DaspCategory
from repro.core.artifacts import ArtifactStore
from repro.core.executor import Executor
from repro.datasets.corpus import DeployedContract, Snippet
from repro.datasets.snippets import QACorpus
from repro.pipeline.checkpoint import StudyCheckpoint, StudyCheckpointError
from repro.pipeline.clone_mapping import CloneMapping, map_snippets_to_contracts
from repro.pipeline.collection import CollectionResult, SnippetCollector, canonical_text
from repro.pipeline.correlation import CorrelationResult
from repro.pipeline.temporal import TemporalCategories
from repro.pipeline.validation import (
    ContractValidator,
    ValidationCandidate,
    ValidationOutcome,
    ValidationSummary,
)

#: signature of the optional study progress callback: ``(stage, done, total)``
ProgressCallback = Callable[[str, int, int], None]


@dataclass
class StudyConfiguration:
    """Tunable parameters of the study (the paper's Section 6.3 settings).

    The ``executor_backend`` / ``max_workers`` / ``chunk_size`` fields
    select how the hot loops (corpus fingerprinting, snippet analysis,
    contract validation) run: ``"serial"`` (default), ``"thread"``, or
    ``"process"`` — see :mod:`repro.core.executor`.  All three backends
    produce identical study results.  ``artifact_cache_size`` bounds the
    shared parse-once :class:`~repro.core.artifacts.ArtifactStore`;
    ``artifact_cache_dir`` makes that store a disk-backed
    :class:`~repro.core.persistence.DiskArtifactStore`, so a rerun over
    the same corpus starts warm (zero parses).
    ``checkpoint_chunk_size`` is the number of snippets/candidates per
    durable checkpoint chunk in the checking and validation stages — a
    killed run resumes from the last completed chunk.
    """

    ngram_size: int = 3
    ngram_threshold: float = 0.5
    similarity_threshold: float = 0.9
    #: CCD verification backend ("bounded" or "exact"; identical results)
    similarity_backend: str = "bounded"
    validation_timeout_seconds: float = 30.0
    snippet_analysis_timeout_seconds: float = 20.0
    restrict_to_source_snippets: bool = False
    executor_backend: str = "serial"
    max_workers: Optional[int] = None
    chunk_size: int = 8
    artifact_cache_size: int = 8192
    fingerprint_block_size: int = 2
    artifact_cache_dir: Optional[str] = None
    checkpoint_chunk_size: int = 32

    def as_dict(self) -> dict:
        """JSON-serializable form (recorded in checkpoint manifests)."""
        return asdict(self)

    def session_config(self):
        """The :class:`~repro.api.SessionConfig` equivalent of this study config."""
        from repro.api.session import SessionConfig

        return SessionConfig(
            backend=self.executor_backend,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            cache_size=self.artifact_cache_size,
            cache_dir=self.artifact_cache_dir,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.fingerprint_block_size,
            ngram_threshold=self.ngram_threshold,
            similarity_threshold=self.similarity_threshold,
            similarity_backend=self.similarity_backend,
            checker_timeout=self.snippet_analysis_timeout_seconds,
            validation_timeout_seconds=self.validation_timeout_seconds,
        )


@dataclass
class StudyResult:
    """Everything the study produces, feeding Tables 4–8."""

    collection: Optional[CollectionResult] = None
    clone_mapping: Optional[CloneMapping] = None
    temporal: Optional[TemporalCategories] = None
    correlations: list[CorrelationResult] = field(default_factory=list)
    #: snippet_id -> query ids found by CCC
    vulnerable_snippets: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: snippet_id -> DASP categories found by CCC
    snippet_categories: dict[str, tuple[DaspCategory, ...]] = field(default_factory=dict)
    snippet_timeouts: int = 0
    validation: ValidationSummary = field(default_factory=ValidationSummary)
    #: address -> canonical source key used for contract deduplication
    unique_contract_keys: dict[str, str] = field(default_factory=dict)

    # -- Table 7 -------------------------------------------------------------
    def funnel(self) -> dict[str, int]:
        """The pipeline funnel of Table 7."""
        unique_snippets = self.collection.total_funnel.unique if self.collection else 0
        contained = [snippet_id for snippet_id in self.vulnerable_snippets
                     if self.clone_mapping and self.clone_mapping.contracts_for(snippet_id)]
        disseminator = [snippet_id for snippet_id in contained
                        if self.temporal and snippet_id in self.temporal.disseminator]
        source = [snippet_id for snippet_id in contained
                  if self.temporal and snippet_id in self.temporal.source]
        candidate_addresses = {
            address
            for snippet_id in disseminator
            for address in (self.temporal.disseminator.get(snippet_id, []) if self.temporal else [])
        }
        unique_candidates = {self.unique_contract_keys.get(address, address)
                             for address in candidate_addresses}
        vulnerable_snippets_in_contracts = {
            outcome.snippet_id for outcome in self.validation.outcomes if outcome.vulnerable
        }
        validated_addresses = {
            outcome.address for outcome in self.validation.outcomes
            if not outcome.timed_out and outcome.analysis_error is None
        }
        vulnerable_addresses = {
            outcome.address for outcome in self.validation.outcomes if outcome.vulnerable
        }
        return {
            "unique_snippets": unique_snippets,
            "vulnerable_snippets": len(self.vulnerable_snippets),
            "vulnerable_snippets_in_contracts": len(contained),
            "disseminator_snippets": len(disseminator),
            "source_snippets": len(source),
            "candidate_contracts": len(candidate_addresses),
            "unique_candidate_contracts": len(unique_candidates),
            "validated_contracts": len(validated_addresses),
            "vulnerable_contracts": len(vulnerable_addresses),
            "vulnerable_snippets_confirmed": len(vulnerable_snippets_in_contracts),
        }

    # -- Table 6 -------------------------------------------------------------
    def dasp_distribution(self) -> dict[DaspCategory, dict[str, int]]:
        """Vulnerable snippet and contract counts per DASP category (Table 6)."""
        distribution: dict[DaspCategory, dict[str, int]] = {
            category: {"snippets": 0, "contracts": 0} for category in DaspCategory
        }
        for snippet_id, categories in self.snippet_categories.items():
            for category in categories:
                distribution[category]["snippets"] += 1
        snippet_category_index = dict(self.snippet_categories)
        for outcome in self.validation.outcomes:
            if not outcome.vulnerable:
                continue
            for category in snippet_category_index.get(outcome.snippet_id, ()):
                distribution[category]["contracts"] += 1
        return distribution


class VulnerableCodeReuseStudy:
    """Orchestrates the full study on a Q&A corpus and a deployed-contract corpus.

    The study is a thin orchestration over one
    :class:`~repro.api.AnalysisSession`: every stage runs through the
    session's registered analyzers (``ccd`` for clone mapping, ``ccc``
    for snippet checking, ``validate`` for two-phase validation,
    ``temporal``/``correlation`` for the categorisation stages), so all
    stages share the session's parse-once
    :class:`~repro.core.artifacts.ArtifactStore` and its executor.  A
    ``session`` argument adopts an existing session; ``store`` /
    ``executor`` override the session components derived from the
    configuration (with ``artifact_cache_dir`` set, the derived store is
    a disk-backed :class:`~repro.core.persistence.DiskArtifactStore`).

    Pass a :class:`~repro.pipeline.checkpoint.StudyCheckpoint` to
    :meth:`run` to make the run durable: completed stages and chunks are
    replayed from disk, so a killed run resumed with the same inputs and
    configuration produces byte-identical results.
    """

    def __init__(
        self,
        configuration: Optional[StudyConfiguration] = None,
        store: Optional[ArtifactStore] = None,
        executor: Optional[Executor] = None,
        session=None,
    ):
        from repro.api.session import AnalysisSession

        self.configuration = configuration if configuration is not None else StudyConfiguration()
        if session is not None:
            self.session = session
        else:
            self.session = AnalysisSession(
                self.configuration.session_config(), store=store, executor=executor)
        self._owns_session = session is None
        self.store = self.session.store
        self.executor = self.session.executor
        self.checker = ContractChecker(
            timeout=self.configuration.snippet_analysis_timeout_seconds, store=self.store)
        self.validator = ContractValidator(
            timeout_seconds=self.configuration.validation_timeout_seconds,
            checker=ContractChecker(store=self.store),
        )

    # -- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        """Release the analysis session (only when this study created it)."""
        if self._owns_session:
            self.session.close()

    def __enter__(self) -> "VulnerableCodeReuseStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pipeline stages -----------------------------------------------------------
    def run(
        self,
        qa_corpus: QACorpus,
        contracts: list[DeployedContract],
        checkpoint: Optional[StudyCheckpoint] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> StudyResult:
        """Run every stage of Figure 6 and return the aggregated results.

        Parameters
        ----------
        qa_corpus / contracts:
            The two input corpora (Q&A snippets, deployed contracts).
        checkpoint:
            Optional :class:`~repro.pipeline.checkpoint.StudyCheckpoint`.
            Completed stages and chunks recorded there are replayed
            instead of recomputed; new progress is written through after
            every stage/chunk, so the run can be killed and resumed at any
            point with byte-identical final results.
        progress:
            Optional ``callback(stage, done, total)`` invoked after every
            completed (or replayed) stage and chunk.
        """
        if checkpoint is not None:
            self._bind_checkpoint(checkpoint)
        result = StudyResult()
        result.collection = self._run_stage(
            checkpoint, progress, "collection",
            lambda: SnippetCollector(store=self.store).collect(qa_corpus))
        snippets = result.collection.snippets
        result.clone_mapping = self._run_stage(
            checkpoint, progress, "clone_mapping",
            lambda: map_snippets_to_contracts(
                snippets, contracts,
                ngram_size=self.configuration.ngram_size,
                ngram_threshold=self.configuration.ngram_threshold,
                similarity_threshold=self.configuration.similarity_threshold,
                fingerprint_block_size=self.configuration.fingerprint_block_size,
                similarity_backend=self.configuration.similarity_backend,
                session=self.session,
            ))
        # temporal categorisation and the correlation analysis are cheap,
        # deterministic pure functions of the stages above — recomputing
        # them on resume is faster than checkpointing them
        result.temporal = self.session.run(
            snippets, analyses=["temporal"],
            options={"temporal": {"contracts": contracts,
                                  "mapping": result.clone_mapping}})[0].payload
        result.correlations = self.session.run(
            snippets, analyses=["correlation"],
            options={"correlation": {"contracts": contracts,
                                     "temporal": result.temporal}})[0].payload
        self._identify_vulnerable_snippets(snippets, result, checkpoint, progress)
        self._validate_contracts(snippets, contracts, result, checkpoint, progress)
        return result

    def _bind_checkpoint(self, checkpoint: StudyCheckpoint) -> None:
        """Record (or verify) the study configuration in the checkpoint.

        Resuming with a different configuration would silently mix results
        computed under different thresholds/chunk sizes, so it is refused.
        """
        configuration = self.configuration.as_dict()
        recorded = checkpoint.metadata.get("configuration")
        if recorded is None:
            checkpoint.update_metadata(configuration=configuration)
        elif recorded != configuration:
            raise StudyCheckpointError(
                f"checkpoint at {checkpoint.directory} was written with a "
                f"different study configuration; resume with the recorded "
                f"configuration or start a fresh checkpoint directory")

    def _run_stage(self, checkpoint, progress, name: str, compute):
        """Replay stage ``name`` from the checkpoint or compute and record it."""
        payload = checkpoint.load_stage(name) if checkpoint is not None else None
        if payload is None:
            payload = compute()
            if checkpoint is not None:
                checkpoint.save_stage(name, payload)
        if progress is not None:
            progress(name, 1, 1)
        return payload

    def _chunks(self, items: list) -> list[list]:
        size = max(1, self.configuration.checkpoint_chunk_size)
        return [items[start:start + size] for start in range(0, len(items), size)]

    def _identify_vulnerable_snippets(
        self,
        snippets: list[Snippet],
        result: StudyResult,
        checkpoint: Optional[StudyCheckpoint] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        """CCC analysis of every snippet (the ``checking`` stage), chunked.

        Each chunk's reduced records — ``(snippet_id, timed_out,
        query_ids, categories)`` tuples, all picklable — are checkpointed
        as they complete; a resumed run replays them and analyses only the
        remaining chunks.
        """
        chunks = self._chunks(snippets)
        replayed = checkpoint.load_chunks("checking") if checkpoint is not None else []
        if checkpoint is not None and not chunks:
            checkpoint.mark_stage_complete("checking")
        for index, chunk in enumerate(chunks):
            if index < len(replayed):
                records = replayed[index]
            else:
                envelopes = self.session.run(
                    chunk, analyses=["ccc"],
                    options={"ccc": {"checker": self.checker}})
                records = [self._checking_record(snippet, envelope.payload)
                           for snippet, envelope in zip(chunk, envelopes)]
                if checkpoint is not None:
                    checkpoint.save_chunk("checking", index, records, total=len(chunks))
            for record in records:
                self._apply_checking_record(result, record)
            if progress is not None:
                progress("checking", index + 1, len(chunks))

    @staticmethod
    def _checking_record(snippet: Snippet, analysis) -> tuple:
        if analysis.findings:
            query_ids = tuple(sorted(analysis.query_ids()))
            categories = tuple(sorted(
                analysis.categories(), key=lambda category: category.value))
        else:
            query_ids = categories = None
        return (snippet.snippet_id, analysis.timed_out, query_ids, categories)

    @staticmethod
    def _apply_checking_record(result: StudyResult, record: tuple) -> None:
        snippet_id, timed_out, query_ids, categories = record
        if timed_out:
            result.snippet_timeouts += 1
        if query_ids is None:
            return
        result.vulnerable_snippets[snippet_id] = query_ids
        result.snippet_categories[snippet_id] = categories

    def _validate_contracts(
        self,
        snippets: list[Snippet],
        contracts: list[DeployedContract],
        result: StudyResult,
        checkpoint: Optional[StudyCheckpoint] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        """Two-phase CCC validation (the ``validation`` stage), chunked.

        The candidate list is a deterministic function of the earlier
        stages, so a resumed run rebuilds it identically and replays the
        checkpointed :class:`ValidationOutcome` chunks in order.
        """
        contract_index = {contract.address: contract for contract in contracts}
        assert result.temporal is not None and result.clone_mapping is not None
        group = result.temporal.source if self.configuration.restrict_to_source_snippets \
            else result.temporal.disseminator
        # deduplicate contracts by comment-insensitive source
        seen_sources: dict[str, str] = {}
        for address, contract in contract_index.items():
            key = canonical_text(contract.source)
            seen_sources.setdefault(key, address)
            result.unique_contract_keys[address] = key
        validated_pairs: set[tuple[str, str]] = set()
        candidates: list[ValidationCandidate] = []
        for snippet_id, query_ids in result.vulnerable_snippets.items():
            addresses = group.get(snippet_id, [])
            for address in addresses:
                key = result.unique_contract_keys.get(address, address)
                representative = seen_sources.get(key, address)
                pair = (snippet_id, representative)
                if pair in validated_pairs:
                    continue
                validated_pairs.add(pair)
                candidates.append(ValidationCandidate(
                    address=representative,
                    source=contract_index[representative].source,
                    snippet_id=snippet_id,
                    query_ids=tuple(query_ids),
                ))
        chunks = self._chunks(candidates)
        replayed = checkpoint.load_chunks("validation") if checkpoint is not None else []
        if checkpoint is not None and not chunks:
            checkpoint.mark_stage_complete("validation")
        for index, chunk in enumerate(chunks):
            if index < len(replayed):
                outcomes = replayed[index]
            else:
                outcomes = [envelope.payload for envelope in self.session.run(
                    chunk, analyses=["validate"],
                    options={"validate": {"validator": self.validator}})]
                if checkpoint is not None:
                    checkpoint.save_chunk("validation", index, outcomes, total=len(chunks))
            result.validation.outcomes.extend(outcomes)
            if progress is not None:
                progress("validation", index + 1, len(chunks))
