"""Execution backends for batch analysis: serial, thread, and process.

The hot loops of the reproduction — corpus fingerprinting, snippet
analysis, candidate-contract validation — are embarrassingly parallel
maps over independent sources.  :class:`Executor` abstracts how such a
map runs:

* ``serial`` — a plain loop; the default and the reference for parity,
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; workers
  share one :class:`~repro.core.artifacts.ArtifactStore`, so the
  parse-once guarantee holds process-wide,
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  graphs and ASTs are not picklable/worth shipping, so callers submit
  module-level task functions that *rehydrate* artifacts from source in
  the worker (see :func:`repro.core.artifacts.process_local_store`).
  :attr:`Executor.supports_shared_state` is ``False`` for this backend —
  callers use it to decide between closures over shared state and
  picklable task payloads.

All backends preserve input order and support chunked dispatch
(:meth:`Executor.map_batches`) to amortize scheduling/IPC overhead, plus
a streaming variant (:meth:`Executor.imap_batches`) that yields per-item
results as chunks complete with a bounded in-flight window — the seam
behind :meth:`repro.api.AnalysisSession.run_iter`.  Pools are created
lazily on first use; call :meth:`Executor.close` (or use the executor as
a context manager) to release workers.
"""

from __future__ import annotations

import concurrent.futures
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: backend names accepted by :meth:`Executor.create`
BACKENDS = ("serial", "thread", "process")


def _run_chunk(fn: Callable, chunk: Sequence) -> list:
    """Apply ``fn`` to every item of ``chunk`` (module-level: picklable)."""
    return [fn(item) for item in chunk]


def _chunked(items: Sequence, chunk_size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), chunk_size):
        yield items[start:start + chunk_size]


class Executor:
    """Base class and factory for the execution backends."""

    backend = "serial"
    #: whether mapped callables may close over shared in-process state
    supports_shared_state = True

    def __init__(self, max_workers: Optional[int] = None, chunk_size: int = 8):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self._closed = False

    @staticmethod
    def create(
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunk_size: int = 8,
    ) -> "Executor":
        """Instantiate the executor named by ``backend``."""
        if backend == "serial":
            return SerialExecutor(max_workers=max_workers, chunk_size=chunk_size)
        if backend == "thread":
            return ThreadExecutor(max_workers=max_workers, chunk_size=chunk_size)
        if backend == "process":
            return ProcessExecutor(max_workers=max_workers, chunk_size=chunk_size)
        raise ValueError(f"unknown executor backend {backend!r}; expected one of {BACKENDS}")

    # -- mapping --------------------------------------------------------------
    def map(self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]) -> List[ResultT]:
        """Apply ``fn`` to every item, preserving input order."""
        raise NotImplementedError

    def map_batches(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        chunk_size: Optional[int] = None,
    ) -> List[ResultT]:
        """Like :meth:`map`, but dispatches work in chunks.

        Chunking amortizes per-task scheduling (thread backend) and
        pickling/IPC (process backend) overhead; results are still
        returned per item, flattened in input order.
        """
        raise NotImplementedError

    def imap_batches(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        chunk_size: Optional[int] = None,
        window: int = 4,
    ) -> Iterator[ResultT]:
        """Like :meth:`map_batches`, but yields results as chunks complete.

        Results are still yielded in input order; ``window`` bounds how
        many chunks are in flight at once, so the peak number of results
        held in memory is ``window * chunk_size`` instead of the whole
        batch.  This is the streaming seam behind
        :meth:`repro.api.AnalysisSession.run_iter`.
        """
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed executor refuses new work."""
        return self._closed

    def _check_open(self) -> None:
        """Fail fast instead of hanging on a shut-down worker pool."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; create a new executor "
                f"(or a new session) instead of reusing a shut-down one")

    def close(self) -> None:
        """Release pooled workers; idempotent, and a barrier for in-flight work.

        After ``close()`` every mapping entry point raises
        :exc:`RuntimeError` — long-lived callers (the analysis service
        daemon tears executors down on shutdown) get a crisp error
        instead of work silently queued on a dead pool.
        """
        self._closed = True

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"{self.__class__.__name__}(backend={self.backend!r}, "
                f"max_workers={self.max_workers}, chunk_size={self.chunk_size})")


class SerialExecutor(Executor):
    """The reference backend: a plain in-order loop."""

    backend = "serial"
    supports_shared_state = True

    def map(self, fn, items):
        """Apply ``fn`` to every item with a plain loop."""
        self._check_open()
        return [fn(item) for item in items]

    def map_batches(self, fn, items, chunk_size=None):
        """Same as :meth:`map`; chunking is meaningless without workers."""
        return self.map(fn, items)

    def imap_batches(self, fn, items, chunk_size=None, window=4):
        """Yield ``fn(item)`` lazily, one item at a time."""
        self._check_open()
        for item in items:
            yield fn(item)


class _PooledExecutor(Executor):
    """Shared machinery for the thread and process backends."""

    _pool_factory = None  # set by subclasses

    def __init__(self, max_workers: Optional[int] = None, chunk_size: int = 8):
        super().__init__(max_workers=max_workers, chunk_size=chunk_size)
        self._pool = None

    def _ensure_pool(self):
        self._check_open()
        if self._pool is None:
            self._pool = self._pool_factory(max_workers=self.max_workers)
        return self._pool

    def map(self, fn, items):
        """Apply ``fn`` per item across the pool (one task per item)."""
        return self.map_batches(fn, items, chunk_size=1)

    def map_batches(self, fn, items, chunk_size=None):
        """Apply ``fn`` across the pool in chunks, flattened in input order."""
        items = list(items)
        if not items:
            return []
        size = self.chunk_size if chunk_size is None else max(1, chunk_size)
        pool = self._ensure_pool()
        futures = [pool.submit(_run_chunk, fn, chunk) for chunk in _chunked(items, size)]
        results: list = []
        for future in futures:
            results.extend(future.result())
        return results

    def imap_batches(self, fn, items, chunk_size=None, window=4):
        """Yield per-item results in input order, ``window`` chunks in flight."""
        items = list(items)
        if not items:
            return
        size = self.chunk_size if chunk_size is None else max(1, chunk_size)
        window = max(1, window)
        pool = self._ensure_pool()
        pending: deque = deque()
        for chunk in _chunked(items, size):
            pending.append(pool.submit(_run_chunk, fn, chunk))
            if len(pending) >= window:
                yield from pending.popleft().result()
        while pending:
            yield from pending.popleft().result()

    def close(self):
        """Shut the pool down and wait for workers to exit (idempotent)."""
        super().close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend; shares the artifact store across workers."""

    backend = "thread"
    supports_shared_state = True
    _pool_factory = staticmethod(concurrent.futures.ThreadPoolExecutor)


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend; tasks must be picklable module-level callables.

    Callers detect this backend via :attr:`supports_shared_state` and
    submit payload-style tasks that rehydrate artifacts from source inside
    the worker instead of closing over non-picklable shared state.
    """

    backend = "process"
    supports_shared_state = False
    _pool_factory = staticmethod(concurrent.futures.ProcessPoolExecutor)


__all__ = [
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
]
