"""Disk persistence for the analysis core: caches that outlive the process.

PR 1 made a single run parse-once; this module makes the *next* run
parse-once too.  :class:`DiskArtifactStore` extends the in-memory
:class:`~repro.core.artifacts.ArtifactStore` with a SQLite-backed disk
tier: every derived artifact (AST, CPG, fingerprint, N-gram set — and
cached parse *failures*) is written through to disk the moment it is
materialized, keyed by the source's content hash.  A warm rerun over the
same corpus therefore performs **zero** parses: artifacts hydrate from
disk into the LRU memory tier in front.

The module re-exports the atomic-file helpers of
:mod:`repro.core.fileio` (:func:`atomic_write_bytes`, :func:`dump_pickle`,
:func:`try_load_pickle`, :func:`dump_json`, :func:`try_load_json`) shared
by the CCD index serialization (:mod:`repro.ccd.index_io`) and the study
checkpoints (:mod:`repro.pipeline.checkpoint`): payloads are written to a
temporary sibling and moved into place with :func:`os.replace`, so a
killed run never leaves a half-written file behind.

Thread-safety and pickling
--------------------------
:class:`DiskArtifactStore` is thread-safe (one connection guarded by a
lock, ``check_same_thread=False``) and multi-process friendly (WAL
journal, busy timeout): process-backend executor workers rebuild the
store from its :class:`~repro.core.artifacts.ArtifactStoreSpec` — whose
``path`` field round-trips the cache directory — and share the same
on-disk tier.  The store itself is *not* picklable; ship the spec.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.artifacts import (
    ArtifactStore,
    ArtifactStoreSpec,
    ArtifactStoreStats,
    SourceArtifact,
)
from repro.core.fileio import (
    atomic_write_bytes,
    dump_json,
    dump_pickle,
    try_load_json,
    try_load_pickle,
)

#: bump when the pickled payload layout changes; mismatched caches are rejected
FORMAT_VERSION = 1

#: file name of the SQLite database inside a cache directory
DATABASE_NAME = "artifacts.sqlite"

#: default SQLite busy timeout (seconds) for every connection this module
#: (and the service :class:`~repro.service.jobstore.JobStore`) opens
DEFAULT_BUSY_TIMEOUT_SECONDS = 30.0


def is_busy_error(error: sqlite3.OperationalError) -> bool:
    """Whether an :class:`sqlite3.OperationalError` is SQLITE_BUSY/LOCKED.

    The stdlib driver surfaces both as ``OperationalError`` with a
    message, not a code, so the message is what can be matched.
    """
    message = str(error).lower()
    return "database is locked" in message or "database table is locked" in message


def retry_on_busy(operation, attempts: int = 6, base_delay: float = 0.02):
    """Run ``operation()`` retrying on SQLITE_BUSY with linear backoff.

    The busy timeout already makes SQLite wait *inside* one call, but a
    writer can still lose the race the moment the timeout elapses (WAL
    checkpoints, many processes hammering one cache).  This wrapper is
    the second line of defense shared by :class:`DiskArtifactStore` and
    the service job store: up to ``attempts`` tries, sleeping
    ``base_delay * try`` between them, re-raising the final error.
    """
    for attempt in range(1, attempts + 1):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not is_busy_error(error) or attempt == attempts:
                raise
            time.sleep(base_delay * attempt)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    key       TEXT NOT NULL,
    field     TEXT NOT NULL,
    payload   BLOB NOT NULL,
    size      INTEGER NOT NULL,
    created   REAL NOT NULL,
    last_used REAL NOT NULL,
    PRIMARY KEY (key, field)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS functions (
    key     TEXT PRIMARY KEY,
    digest  TEXT NOT NULL,
    created REAL NOT NULL
);
"""


def _evict(connection: sqlite3.Connection, max_entries: Optional[int],
           max_age_seconds: Optional[float]) -> int:
    """Shared eviction policy of :meth:`DiskArtifactStore.gc` and the CLI.

    Entries (= distinct content keys; all their field rows go together)
    are dropped by recency first, then trimmed to ``max_entries`` most
    recently used.  Returns the number of entries deleted.
    """
    doomed: set = set()
    if max_age_seconds is not None:
        cutoff = time.time() - max_age_seconds
        doomed.update(key for (key,) in connection.execute(
            "SELECT key FROM artifacts GROUP BY key HAVING MAX(last_used) < ?",
            (cutoff,)))
    if max_entries is not None:
        doomed.update(key for (key,) in connection.execute(
            "SELECT key FROM artifacts GROUP BY key "
            "ORDER BY MAX(last_used) DESC LIMIT -1 OFFSET ?",
            (max(0, max_entries),)))
    for key in doomed:
        connection.execute("DELETE FROM artifacts WHERE key = ?", (key,))
    return len(doomed)


class CacheConfigurationError(ValueError):
    """An on-disk cache was created with an incompatible CCD configuration."""


# ---------------------------------------------------------------------------
# the disk-backed artifact store
# ---------------------------------------------------------------------------

@dataclass
class DiskArtifactStoreStats(ArtifactStoreStats):
    """In-memory tier counters plus the disk-tier counters.

    ``hits``/``misses`` keep their memory-tier meaning, so the parse-once
    invariant of a *cold* run is still ``parse_calls == misses -
    disk_hits``; on a fully warm run ``parse_calls == 0``.
    """

    #: memory-tier misses answered from the SQLite tier (no recompute)
    disk_hits: int = 0
    #: lookups that missed both tiers and had to compute from source
    disk_misses: int = 0
    #: field write-throughs (one row per newly materialized derived value —
    #: already-persisted values are never re-serialized)
    disk_writes: int = 0
    #: corrupt rows or databases detected (and discarded) while reading
    disk_corruptions: int = 0
    #: failed writes (e.g. a locked database under heavy contention)
    disk_errors: int = 0

    def as_dict(self) -> dict:
        """All memory- and disk-tier counters as a plain dict."""
        data = super().as_dict()
        data.update({
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_writes": self.disk_writes,
            "disk_corruptions": self.disk_corruptions,
            "disk_errors": self.disk_errors,
        })
        return data

    @property
    def disk_lookups(self) -> int:
        """Total disk-tier lookups (memory-tier misses that reached SQLite)."""
        return self.disk_hits + self.disk_misses

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of memory-tier misses answered from disk."""
        return self.disk_hits / self.disk_lookups if self.disk_lookups else 0.0


class DiskArtifactStore(ArtifactStore):
    """A content-hash-addressed artifact cache that survives the process.

    Layout: ``directory/artifacts.sqlite`` holds one pickled value per
    ``(content hash, derived field)`` pair — a field (AST, CPG,
    fingerprint, N-gram set, or cached error) is serialized exactly once,
    when it first materializes, and never rewritten.  A ``meta`` table
    records the format version and the CCD configuration the cache was
    created with; opening a cache with a mismatched configuration raises
    :class:`CacheConfigurationError` — cached fingerprints and N-gram
    sets are only valid for one configuration.

    The in-memory LRU tier of the base class sits in front: a repeated
    ``get`` within one process never touches SQLite.  Corrupt rows (or a
    corrupt database file) are detected, counted in
    ``stats.disk_corruptions``, and silently recomputed — a damaged cache
    degrades to a cold one instead of failing the run.

    Parameters
    ----------
    directory:
        Cache directory (created on demand).
    max_entries / ngram_size / fingerprint_block_size / fingerprint_window:
        As for :class:`~repro.core.artifacts.ArtifactStore`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: int = 8192,
        ngram_size: int = 3,
        fingerprint_block_size: int = 2,
        fingerprint_window: int = 4,
        busy_timeout_seconds: float = DEFAULT_BUSY_TIMEOUT_SECONDS,
    ):
        super().__init__(
            max_entries=max_entries,
            ngram_size=ngram_size,
            fingerprint_block_size=fingerprint_block_size,
            fingerprint_window=fingerprint_window,
        )
        self.stats = DiskArtifactStoreStats()
        self.busy_timeout_seconds = busy_timeout_seconds
        self.directory = Path(directory)
        self.database_path = self.directory / DATABASE_NAME
        self._db_lock = threading.Lock()
        self._connection: Optional[sqlite3.Connection] = None
        self._open()
        self.function_digests.attach(
            fetch=self._fetch_function_digest,
            persist=self._persist_function_digest)

    # -- connection management ------------------------------------------------
    def _configuration(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "ngram_size": self.ngram_size,
            "fingerprint_block_size": self.generator.hasher.block_size,
            "fingerprint_window": self.generator.hasher.window,
        }

    def _connect(self) -> sqlite3.Connection:
        self.directory.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            str(self.database_path), check_same_thread=False, isolation_level=None)
        connection.executescript(_SCHEMA)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute(
            f"PRAGMA busy_timeout={int(self.busy_timeout_seconds * 1000)}")
        return connection

    def _open(self) -> None:
        try:
            self._connection = self._connect()
        except sqlite3.DatabaseError:
            # unreadable database file: quarantine and start over
            self.stats.increment("disk_corruptions")
            self._quarantine_database()
            self._connection = self._connect()
        recorded = self._read_meta("configuration")
        configuration = self._configuration()
        if recorded is None:
            self._write_meta("configuration", configuration)
        elif recorded != configuration:
            self.close()
            raise CacheConfigurationError(
                f"artifact cache at {self.directory} was created with "
                f"{recorded}, which does not match {configuration}; use a "
                f"separate cache directory per CCD configuration")

    def _quarantine_database(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            stale = Path(str(self.database_path) + suffix)
            if stale.exists():
                try:
                    os.replace(stale, str(stale) + ".corrupt")
                except OSError:
                    stale.unlink(missing_ok=True)

    def _read_meta(self, key: str) -> Optional[dict]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError:
            return None

    def _write_meta(self, key: str, value: dict) -> None:
        self._connection.execute(
            "REPLACE INTO meta (key, value) VALUES (?, ?)", (key, json.dumps(value)))

    def close(self) -> None:
        """Close the SQLite connection (cached lookups keep working in-memory)."""
        with self._db_lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "DiskArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the disk tier --------------------------------------------------------
    def _create_artifact(self, source: str, key: str) -> SourceArtifact:
        artifact = SourceArtifact(
            source, key, self.stats, self.generator, self.ngram_size,
            on_materialize=self._persist,
            function_digests=self.function_digests)
        payload = self._load_payload(key)
        if payload is not None:
            self.stats.increment("disk_hits")
            artifact.restore(payload)
        else:
            self.stats.increment("disk_misses")
        return artifact

    def _load_payload(self, key: str) -> Optional[dict]:
        with self._db_lock:
            if self._connection is None:
                return None
            try:
                rows = self._connection.execute(
                    "SELECT field, payload FROM artifacts WHERE key = ?",
                    (key,)).fetchall()
            except sqlite3.DatabaseError:
                self.stats.increment("disk_corruptions")
                return None
            if not rows:
                return None
            payload = {}
            try:
                for field, blob in rows:
                    if field not in SourceArtifact.PAYLOAD_FIELDS:
                        raise ValueError(f"unknown payload field {field!r}")
                    payload[field] = pickle.loads(blob)
            except Exception:
                # a torn or corrupted row: drop the whole entry and recompute
                self.stats.increment("disk_corruptions")
                try:
                    self._connection.execute(
                        "DELETE FROM artifacts WHERE key = ?", (key,))
                except sqlite3.DatabaseError:
                    pass
                return None
            try:
                self._connection.execute(
                    "UPDATE artifacts SET last_used = ? WHERE key = ?",
                    (time.time(), key))
            except sqlite3.DatabaseError:
                pass
            return payload

    def _persist(self, artifact: SourceArtifact, field: str) -> None:
        value = getattr(artifact, "_" + field)
        if value is None:
            return
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        now = time.time()
        with self._db_lock:
            if self._connection is None:
                return
            try:
                retry_on_busy(lambda: self._connection.execute(
                    "REPLACE INTO artifacts (key, field, payload, size, created, "
                    "last_used) VALUES (?, ?, ?, ?, ?, ?)",
                    (artifact.key, field, blob, len(blob), now, now)))
                self.stats.increment("disk_writes")
            except sqlite3.DatabaseError:
                self.stats.increment("disk_errors")

    def _fetch_function_digest(self, key: str) -> Optional[str]:
        with self._db_lock:
            if self._connection is None:
                return None
            try:
                row = self._connection.execute(
                    "SELECT digest FROM functions WHERE key = ?",
                    (key,)).fetchone()
            except sqlite3.DatabaseError:
                self.stats.increment("disk_corruptions")
                return None
        return row[0] if row is not None else None

    def _persist_function_digest(self, key: str, digest: str) -> None:
        now = time.time()
        with self._db_lock:
            if self._connection is None:
                return
            try:
                retry_on_busy(lambda: self._connection.execute(
                    "REPLACE INTO functions (key, digest, created) "
                    "VALUES (?, ?, ?)", (key, digest, now)))
                self.stats.increment("disk_writes")
            except sqlite3.DatabaseError:
                self.stats.increment("disk_errors")

    # -- introspection / maintenance ------------------------------------------
    @property
    def spec(self) -> ArtifactStoreSpec:
        """The picklable recipe (including the cache path) for workers."""
        return ArtifactStoreSpec(
            max_entries=self.max_entries,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.generator.hasher.block_size,
            fingerprint_window=self.generator.hasher.window,
            path=str(self.directory),
        )

    def disk_entries(self) -> int:
        """Number of artifacts (distinct sources) persisted in the disk tier."""
        with self._db_lock:
            if self._connection is None:
                return 0
            return self._connection.execute(
                "SELECT COUNT(DISTINCT key) FROM artifacts").fetchone()[0]

    def disk_usage(self) -> dict:
        """Summary of the disk tier (entry count, payload bytes, age range)."""
        with self._db_lock:
            if self._connection is None:
                return {"entries": 0, "payload_bytes": 0}
            row = self._connection.execute(
                "SELECT COUNT(DISTINCT key), COALESCE(SUM(size), 0), "
                "MIN(created), MAX(last_used) FROM artifacts").fetchone()
        usage = {"entries": row[0], "payload_bytes": row[1]}
        if row[2] is not None:
            usage["oldest_created"] = row[2]
            usage["newest_used"] = row[3]
        return usage

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        vacuum: bool = False,
    ) -> int:
        """Evict disk-tier entries; returns the number of entries deleted.

        ``max_age_seconds`` drops entries not used within that window;
        ``max_entries`` then keeps only the most recently used ones.
        ``vacuum`` reclaims the freed file space.
        """
        with self._db_lock:
            if self._connection is None:
                return 0
            deleted = _evict(self._connection, max_entries, max_age_seconds)
            if vacuum:
                self._connection.execute("VACUUM")
        return deleted

    def clear(self, disk: bool = False) -> None:
        """Drop cached artifacts; with ``disk=True`` also empty the disk tier."""
        super().clear()
        if disk:
            self.function_digests.clear()
            with self._db_lock:
                if self._connection is not None:
                    self._connection.execute("DELETE FROM artifacts")
                    self._connection.execute("DELETE FROM functions")

    # -- CLI entry points (no configuration match required) -------------------
    @classmethod
    def read_usage(cls, directory: Union[str, Path]) -> dict:
        """Disk usage plus recorded configuration for ``repro cache stats``.

        Unlike the constructor this never validates the CCD configuration,
        so any cache directory can be inspected.
        """
        database = Path(directory) / DATABASE_NAME
        if not database.exists():
            return {"entries": 0, "payload_bytes": 0, "configuration": None}
        try:
            connection = sqlite3.connect(str(database))
            try:
                row = connection.execute(
                    "SELECT COUNT(DISTINCT key), COALESCE(SUM(size), 0) "
                    "FROM artifacts").fetchone()
                meta = connection.execute(
                    "SELECT value FROM meta WHERE key = 'configuration'").fetchone()
            finally:
                connection.close()
        except sqlite3.DatabaseError:
            return {"entries": 0, "payload_bytes": 0, "configuration": None,
                    "corrupt": True}
        configuration = None
        if meta is not None:
            try:
                configuration = json.loads(meta[0])
            except json.JSONDecodeError:
                pass
        return {"entries": row[0], "payload_bytes": row[1],
                "file_bytes": database.stat().st_size,
                "configuration": configuration}

    @classmethod
    def collect_garbage(
        cls,
        directory: Union[str, Path],
        max_entries: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        vacuum: bool = True,
    ) -> int:
        """GC a cache directory without opening it as a store (``repro cache gc``)."""
        database = Path(directory) / DATABASE_NAME
        if not database.exists():
            return 0
        try:
            connection = sqlite3.connect(str(database))
        except sqlite3.DatabaseError:
            return 0
        deleted = 0
        try:
            deleted = _evict(connection, max_entries, max_age_seconds)
            connection.commit()
            if vacuum:
                connection.execute("VACUUM")
        except sqlite3.DatabaseError:
            pass
        finally:
            connection.close()
        return deleted


__all__ = [
    "CacheConfigurationError",
    "DATABASE_NAME",
    "DEFAULT_BUSY_TIMEOUT_SECONDS",
    "DiskArtifactStore",
    "DiskArtifactStoreStats",
    "FORMAT_VERSION",
    "is_busy_error",
    "retry_on_busy",
    "atomic_write_bytes",
    "dump_json",
    "dump_pickle",
    "try_load_json",
    "try_load_pickle",
]
