"""Parse-once artifact store shared by CCD, CCC, and the study pipeline.

Every analysis layer of the reproduction consumes the same chain of
derived artifacts: Solidity source → AST (:class:`SourceUnit`) → either a
code property graph (CCC) or a normalized fingerprint and its N-gram set
(CCD).  Before this module existed each layer re-parsed the source
independently — the clone detector, the contract checker, the two-phase
validator, and the collection parsability filter all called the parser on
the same text.

:class:`ArtifactStore` removes that duplication.  It is a content-hash
keyed, LRU-bounded cache of :class:`SourceArtifact` objects; each artifact
lazily materializes its AST, CPG, fingerprint, and N-gram set exactly once
and shares them with every consumer in the process.  The store is
thread-safe, so the thread backend of :mod:`repro.core.executor` can fan
out over a single shared store.  For the process backend — where graphs
and ASTs are not worth pickling — :func:`process_local_store` rehydrates
an equivalent store inside each worker from a small picklable
:class:`ArtifactStoreSpec`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.ccd.fingerprint import Fingerprint, FingerprintGenerator
from repro.ccd.ngram_index import ngrams
from repro.cpg.builder import build_cpg
from repro.cpg.graph import CPGGraph
from repro.solidity import ast_nodes as ast
from repro.solidity.errors import SolidityParseError
from repro.solidity.parser import parse_snippet
from repro.solidity.splitter import FunctionSpan, split_source

_RECURSION_MESSAGE = "recursion limit exceeded while parsing"


def content_key(source: str) -> str:
    """Stable content hash used as the cache key for ``source``."""
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


@dataclass
class ArtifactStoreStats:
    """Counters describing how much work the store performed and saved."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: number of actual ``parse_snippet`` invocations — the headline
    #: "parse once" guarantee is ``parse_calls == misses`` (minus evictions)
    parse_calls: int = 0
    cpg_builds: int = 0
    fingerprint_builds: int = 0
    #: function-digest cache lookups made while attempting a delta
    #: fingerprint (an edited source probing for unchanged functions)
    function_hits: int = 0
    function_misses: int = 0
    #: standalone parses of individual changed functions (the O(change)
    #: work a delta fingerprint performs instead of a whole-source parse)
    function_parses: int = 0
    #: fingerprints assembled from cached function digests without a
    #: whole-source parse
    delta_assemblies: int = 0
    #: delta attempts abandoned back to the whole-source path (a changed
    #: function did not re-parse cleanly in isolation)
    delta_fallbacks: int = 0

    def __post_init__(self):
        # artifacts and the store increment concurrently under the thread
        # backend; a shared lock keeps the read-modify-write atomic
        self._lock = threading.Lock()

    def increment(self, counter: str) -> None:
        """Atomically add one to the named counter (thread-safe)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    @property
    def lookups(self) -> int:
        """Total store lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """All counters (and derived rates) as a plain dict."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "parse_calls": self.parse_calls,
            "cpg_builds": self.cpg_builds,
            "fingerprint_builds": self.fingerprint_builds,
            "function_hits": self.function_hits,
            "function_misses": self.function_misses,
            "function_parses": self.function_parses,
            "delta_assemblies": self.delta_assemblies,
            "delta_fallbacks": self.delta_fallbacks,
        }


class FunctionDigestCache:
    """LRU cache of function-span keys to their sub-fingerprint digests.

    The function-level artifact tier: keys are
    :func:`repro.solidity.splitter.span_key` hashes of one function's
    exact token stream, values are the fuzzy-hash digest that function
    contributes to its source's fingerprint.  Because the key covers the
    whole normalized input, a hit is always safe to reuse — across edits
    of one source *and* across sources that share a function verbatim.

    ``fetch``/``persist`` are the optional disk-tier hooks (wired by
    :class:`~repro.core.persistence.DiskArtifactStore`): ``fetch(key)``
    returns a digest or ``None``, ``persist(key, digest)`` writes one
    through.  A digest may be the empty string (functions too small to
    hash) — only ``None`` means "not cached".
    """

    def __init__(self, max_entries: int = 65536, fetch=None, persist=None):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.RLock()
        self._fetch = fetch
        self._persist = persist

    def attach(self, fetch, persist) -> None:
        """Wire the disk-tier hooks (used by the persistent store)."""
        self._fetch = fetch
        self._persist = persist

    def get(self, key: str) -> Optional[str]:
        """The cached digest for ``key``, or ``None`` when not cached."""
        with self._lock:
            digest = self._entries.get(key)
            if digest is not None:
                self._entries.move_to_end(key)
                return digest
        if self._fetch is not None:
            digest = self._fetch(key)
            if digest is not None:
                self._remember(key, digest)
            return digest
        return None

    def put(self, key: str, digest: str) -> None:
        """Cache ``digest`` for ``key`` (writing through when persistent)."""
        self._remember(key, digest)
        if self._persist is not None:
            self._persist(key, digest)

    def _remember(self, key: str, digest: str) -> None:
        with self._lock:
            self._entries[key] = digest
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop the memory tier (the disk tier, if any, is untouched)."""
        with self._lock:
            self._entries.clear()


class SourceArtifact:
    """Lazily-materialized per-source artifacts (AST, CPG, fingerprint).

    All derived artifacts are computed on first access and cached on the
    instance, so the expensive parse/translate/hash work happens at most
    once per unique source no matter how many layers ask for it.  Parse
    failures are cached too: retrying an unparsable source re-raises the
    recorded :class:`SolidityParseError` without re-running the parser.
    ``RecursionError`` raised anywhere in the chain is converted into a
    :class:`SolidityParseError` with the same message the contract checker
    historically reported, so downstream error handling is uniform.
    """

    __slots__ = ("source", "key", "_stats", "_generator", "_ngram_size", "_lock",
                 "_unit", "_unit_error", "_graph", "_graph_error",
                 "_fingerprint", "_fingerprint_error", "_ngrams", "_on_materialize",
                 "_function_digests")

    #: names of the derived-value slots captured by :meth:`snapshot` /
    #: preloaded by :meth:`restore` (the persistence payload format)
    PAYLOAD_FIELDS = ("unit", "unit_error", "graph", "graph_error",
                      "fingerprint", "fingerprint_error", "ngrams")

    def __init__(
        self,
        source: str,
        key: str,
        stats: ArtifactStoreStats,
        generator: FingerprintGenerator,
        ngram_size: int,
        on_materialize=None,
        function_digests: Optional[FunctionDigestCache] = None,
    ):
        self.source = source
        self.key = key
        self._stats = stats
        self._generator = generator
        self._ngram_size = ngram_size
        self._lock = threading.RLock()
        self._unit: Optional[ast.SourceUnit] = None
        self._unit_error: Optional[str] = None
        self._graph: Optional[CPGGraph] = None
        self._graph_error: Optional[str] = None
        self._fingerprint: Optional[Fingerprint] = None
        self._fingerprint_error: Optional[str] = None
        self._ngrams: Optional[frozenset] = None
        #: optional ``callback(artifact, field)`` invoked (under the artifact
        #: lock) every time the named derived value is computed for the first
        #: time; the disk store uses it to write that value through to disk
        self._on_materialize = on_materialize
        #: optional store-wide function-digest cache enabling the delta
        #: fingerprint path (see :meth:`fingerprint`)
        self._function_digests = function_digests

    def _materialized(self, field: str) -> None:
        if self._on_materialize is not None:
            self._on_materialize(self, field)

    # -- persistence ----------------------------------------------------------
    def snapshot(self) -> dict:
        """The materialized derived values as a picklable payload dict.

        Only values computed so far are included; :meth:`restore` on a
        fresh artifact for the same source is the inverse.  Used by
        :class:`~repro.core.persistence.DiskArtifactStore` to serialize
        artifacts (ASTs, CPGs, fingerprints, and cached parse errors all
        pickle).
        """
        with self._lock:
            payload = {}
            for name in self.PAYLOAD_FIELDS:
                value = getattr(self, "_" + name)
                if value is not None:
                    payload[name] = value
            return payload

    def restore(self, payload: dict) -> None:
        """Preload derived values from a :meth:`snapshot` payload.

        Already-materialized values win over the payload, so restoring is
        safe at any point in the artifact's life.  No statistics counters
        are touched: restored values count as neither parses nor builds.
        """
        with self._lock:
            for name in self.PAYLOAD_FIELDS:
                value = payload.get(name)
                if value is not None and getattr(self, "_" + name) is None:
                    setattr(self, "_" + name, value)

    # -- AST ------------------------------------------------------------------
    @property
    def unit(self) -> ast.SourceUnit:
        """The parsed AST; parses at most once, caching failures."""
        with self._lock:
            if self._unit is not None:
                return self._unit
            if self._unit_error is not None:
                raise SolidityParseError(self._unit_error)
            self._stats.increment("parse_calls")
            try:
                self._unit = parse_snippet(self.source)
            except SolidityParseError as exc:
                self._unit_error = str(exc)
                self._materialized("unit_error")
                raise
            except RecursionError:
                self._unit_error = _RECURSION_MESSAGE
                self._materialized("unit_error")
                raise SolidityParseError(self._unit_error) from None
            self._materialized("unit")
            return self._unit

    def try_unit(self) -> Optional[ast.SourceUnit]:
        """The parsed AST, or ``None`` when the source is unparsable."""
        try:
            return self.unit
        except SolidityParseError:
            return None

    @property
    def parse_error(self) -> Optional[str]:
        """The cached parse error message, materializing the AST if needed."""
        self.try_unit()
        return self._unit_error

    @property
    def parse_ok(self) -> bool:
        """Whether the source parses (materializing the AST if needed)."""
        return self.try_unit() is not None

    # -- CPG ------------------------------------------------------------------
    @property
    def graph(self) -> CPGGraph:
        """The code property graph, built at most once from the shared AST."""
        with self._lock:
            if self._graph is not None:
                return self._graph
            if self._graph_error is not None:
                raise SolidityParseError(self._graph_error)
            unit = self.unit
            self._stats.increment("cpg_builds")
            try:
                self._graph = build_cpg(unit=unit)
            except RecursionError:
                self._graph_error = _RECURSION_MESSAGE
                self._materialized("graph_error")
                raise SolidityParseError(self._graph_error) from None
            self._materialized("graph")
            return self._graph

    # -- fingerprint ----------------------------------------------------------
    @property
    def fingerprint(self) -> Fingerprint:
        """The CCD fingerprint; assembled from cached function digests
        when possible, normalized from the shared AST otherwise.

        The delta path: when the source has not been parsed yet but the
        store's :class:`FunctionDigestCache` already knows some of its
        functions (a re-analysis after an edit), the fingerprint is
        assembled from the cached digests, with only the *changed*
        functions parsed — standalone, in O(change) — instead of the
        whole source.  The assembled fingerprint is byte-identical to the
        whole-source one; any doubt (unsplittable source, a changed
        function that does not re-parse cleanly in isolation) falls back
        to the whole-source path.
        """
        with self._lock:
            if self._fingerprint is not None:
                return self._fingerprint
            if self._fingerprint_error is not None:
                raise SolidityParseError(self._fingerprint_error)
            if self._unit is None and self._function_digests is not None:
                assembled = self._delta_fingerprint()
                if assembled is not None:
                    self._fingerprint = assembled
                    self._materialized("fingerprint")
                    return self._fingerprint
            unit = self.unit
            self._stats.increment("fingerprint_builds")
            try:
                normalized = self._generator.normalizer.normalize_unit(unit)
                self._fingerprint = self._generator.from_normalized(normalized)
            except RecursionError:
                self._fingerprint_error = _RECURSION_MESSAGE
                self._materialized("fingerprint_error")
                raise SolidityParseError(self._fingerprint_error) from None
            self._materialized("fingerprint")
            self._seed_function_digests(normalized)
            return self._fingerprint

    def _delta_fingerprint(self) -> Optional[Fingerprint]:
        """Assemble the fingerprint from cached function digests, or ``None``.

        ``None`` (fall back to the whole-source path) when the source is
        unsplittable, when *no* function is cached yet (a cold source:
        one whole parse beats N standalone parses and seeds the cache),
        or when a changed function fails the strict standalone re-parse.
        """
        split = split_source(self.source)
        if split is None:
            return None
        cache = self._function_digests
        digests = {}
        for span in split.spans:
            if span.key not in digests:
                digests[span.key] = cache.get(span.key)
        if not any(digest is not None for digest in digests.values()):
            return None
        changed = []
        for key, digest in digests.items():
            if digest is None:
                self._stats.increment("function_misses")
                changed.append(key)
            else:
                self._stats.increment("function_hits")
        spans_by_key = {span.key: span for span in split.spans}
        for key in changed:
            digest = self._span_digest(spans_by_key[key])
            if digest is None:
                self._stats.increment("delta_fallbacks")
                return None
            digests[key] = digest
            cache.put(key, digest)
        contracts = []
        for group in split.groups:
            contracts.append(
                [digest for digest in (digests[span.key] for span in group)
                 if digest])
        text = ":".join(".".join(subs) for subs in contracts)
        self._stats.increment("delta_assemblies")
        return Fingerprint(text=text, contracts=contracts)

    def _span_digest(self, span: FunctionSpan) -> Optional[str]:
        """Digest one function span via a strict standalone re-parse.

        The span text is parsed on its own (with a leading newline, so
        its first token carries the same newline flag the key assumed)
        and must yield exactly one warning-free definition of the
        expected kind — anything else returns ``None`` and the caller
        abandons the delta.  Normalization matches the whole-source
        pipeline: contract scope is always empty, and modifiers are
        normalized through the same synthetic function definition.
        """
        self._stats.increment("function_parses")
        try:
            unit = parse_snippet("\n" + span.text)
        except (SolidityParseError, RecursionError):
            return None
        if unit.warnings or len(unit.items) != 1:
            return None
        item = unit.items[0]
        if span.construct == "modifier":
            if not isinstance(item, ast.ModifierDefinition):
                return None
            function = ast.FunctionDefinition(
                name=item.name, parameters=item.parameters, body=item.body,
                code=item.code)
        else:
            if not isinstance(item, ast.FunctionDefinition):
                return None
            function = item
        normalized = self._generator.normalizer._normalize_function(
            function, {}, function_label=span.label)
        return self._generator.hasher.hash_tokens(normalized.tokens)

    def _seed_function_digests(self, normalized) -> None:
        """Record per-function digests after a clean whole-source build.

        Seeding requires a warning-free parse *and* exact alignment
        between the split's spans and the normalized functions (same
        groups, same labels, in order) — any mismatch means the splitter
        modeled this source differently from the parser, so nothing is
        cached for it.
        """
        cache = self._function_digests
        if cache is None or self._unit is None or self._unit.warnings:
            return
        split = split_source(self.source)
        if split is None or len(split.groups) != len(normalized.contracts):
            return
        aligned = []
        for group, contract in zip(split.groups, normalized.contracts):
            functions = [function for function in contract.functions
                         if function.name != "header"]
            if [span.label for span in group] != \
                    [function.name for function in functions]:
                return
            aligned.append((group, functions))
        for group, functions in aligned:
            for span, function in zip(group, functions):
                cache.put(span.key,
                          self._generator.hasher.hash_tokens(function.tokens))

    @property
    def ngrams(self) -> frozenset:
        """The fingerprint's character N-gram set for the store's N."""
        with self._lock:
            if self._ngrams is None:
                self._ngrams = frozenset(ngrams(self.fingerprint.text, self._ngram_size))
                self._materialized("ngrams")
            return self._ngrams


@dataclass(frozen=True)
class ArtifactStoreSpec:
    """Picklable recipe for rebuilding an equivalent :class:`ArtifactStore`.

    Process-backend workers cannot share the parent's store (locks and
    open database handles don't pickle), so they receive this spec and
    rehydrate their own process-local store via
    :func:`process_local_store`.  When ``path`` is set the rebuilt store
    is a :class:`~repro.core.persistence.DiskArtifactStore`, so worker
    processes share the parent's on-disk artifact cache.
    """

    max_entries: int = 8192
    ngram_size: int = 3
    fingerprint_block_size: int = 2
    fingerprint_window: int = 4
    #: cache directory of a :class:`~repro.core.persistence.DiskArtifactStore`,
    #: or ``None`` for a purely in-memory store
    path: Optional[str] = None

    def build(self) -> "ArtifactStore":
        """Instantiate the store this spec describes."""
        if self.path is not None:
            from repro.core.persistence import DiskArtifactStore

            return DiskArtifactStore(
                self.path,
                max_entries=self.max_entries,
                ngram_size=self.ngram_size,
                fingerprint_block_size=self.fingerprint_block_size,
                fingerprint_window=self.fingerprint_window,
            )
        return ArtifactStore(
            max_entries=self.max_entries,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.fingerprint_block_size,
            fingerprint_window=self.fingerprint_window,
        )


class ArtifactStore:
    """Content-hash keyed, LRU-bounded cache of :class:`SourceArtifact`.

    Parameters
    ----------
    max_entries:
        Upper bound on cached artifacts; least-recently-used entries are
        evicted first.  Artifact references held by callers stay valid
        after eviction — only the cache slot is reclaimed.
    ngram_size / fingerprint_block_size / fingerprint_window:
        CCD configuration shared by every artifact in the store.  A
        detector attached to a store must use matching parameters (the
        detector constructor enforces this).
    """

    def __init__(
        self,
        max_entries: int = 8192,
        ngram_size: int = 3,
        fingerprint_block_size: int = 2,
        fingerprint_window: int = 4,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.ngram_size = ngram_size
        self.generator = FingerprintGenerator(
            block_size=fingerprint_block_size, window=fingerprint_window)
        self.stats = ArtifactStoreStats()
        #: store-wide function-level digest tier (content-pure, so safe to
        #: share across every artifact and every edit of a source)
        self.function_digests = FunctionDigestCache()
        self._entries: "OrderedDict[str, SourceArtifact]" = OrderedDict()
        self._lock = threading.RLock()

    @classmethod
    def from_spec(cls, spec: ArtifactStoreSpec) -> "ArtifactStore":
        """Build the store described by a (possibly disk-backed) spec."""
        return spec.build()

    @property
    def spec(self) -> ArtifactStoreSpec:
        """The picklable recipe workers use to rebuild this store."""
        return ArtifactStoreSpec(
            max_entries=self.max_entries,
            ngram_size=self.ngram_size,
            fingerprint_block_size=self.generator.hasher.block_size,
            fingerprint_window=self.generator.hasher.window,
        )

    def get(self, source: str) -> SourceArtifact:
        """The (possibly cached) artifact bundle for ``source``."""
        key = content_key(source)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.stats.increment("hits")
                return artifact
            self.stats.increment("misses")
            artifact = self._create_artifact(source, key)
            self._entries[key] = artifact
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.increment("evictions")
            return artifact

    def _create_artifact(self, source: str, key: str) -> SourceArtifact:
        """Build the artifact for a cache miss (the disk store's tier seam)."""
        return SourceArtifact(source, key, self.stats, self.generator,
                              self.ngram_size,
                              function_digests=self.function_digests)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, source: str) -> bool:
        with self._lock:
            return content_key(source) in self._entries

    def clear(self) -> None:
        """Drop all cached artifacts (statistics are kept)."""
        with self._lock:
            self._entries.clear()


#: per-process cache used by process-backend workers (spec -> store)
_PROCESS_STORES: dict = {}
_PROCESS_STORES_LOCK = threading.Lock()


def process_local_store(spec: ArtifactStoreSpec) -> ArtifactStore:
    """A process-wide store for ``spec``, created on first use.

    Executor worker processes call this to rehydrate artifacts from source
    instead of unpickling them; within one worker process, each unique
    source is still parsed at most once.
    """
    with _PROCESS_STORES_LOCK:
        store = _PROCESS_STORES.get(spec)
        if store is None:
            store = spec.build()
            _PROCESS_STORES[spec] = store
        return store


__all__ = [
    "ArtifactStore",
    "ArtifactStoreSpec",
    "ArtifactStoreStats",
    "FunctionDigestCache",
    "SourceArtifact",
    "content_key",
    "process_local_store",
]
