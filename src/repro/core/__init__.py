"""The shared analysis core: parse-once artifacts, persistence, and batch execution.

This package is the seam between the paper-reproduction layers (solidity,
cpg, ccd, ccc, pipeline) and the scaling work described in ROADMAP.md:

* :mod:`repro.core.artifacts` — a content-hash keyed, LRU-bounded
  :class:`~repro.core.artifacts.ArtifactStore` that materializes each
  source's AST, CPG, fingerprint, and N-gram set at most once per process,
* :mod:`repro.core.persistence` — a SQLite-backed
  :class:`~repro.core.persistence.DiskArtifactStore` that writes artifacts
  through to disk so the *next* run (or another process) starts warm, plus
  the atomic-file helpers behind index serialization and study checkpoints,
* :mod:`repro.core.executor` — serial / thread / process
  :class:`~repro.core.executor.Executor` backends with chunked
  ``map_batches`` (and streaming ``imap_batches``) used by every hot
  loop (corpus indexing, snippet analysis, contract validation) and by
  the :mod:`repro.api` session façade.
"""

from repro.core.artifacts import (
    ArtifactStore,
    ArtifactStoreSpec,
    ArtifactStoreStats,
    SourceArtifact,
    content_key,
    process_local_store,
)
from repro.core.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.core.persistence import (
    CacheConfigurationError,
    DiskArtifactStore,
    DiskArtifactStoreStats,
)

__all__ = [
    "ArtifactStore",
    "ArtifactStoreSpec",
    "ArtifactStoreStats",
    "BACKENDS",
    "CacheConfigurationError",
    "DiskArtifactStore",
    "DiskArtifactStoreStats",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SourceArtifact",
    "ThreadExecutor",
    "content_key",
    "process_local_store",
]
