"""Atomic file primitives shared by every persistence layer.

These helpers are deliberately free of any ``repro`` imports so that low
layers (e.g. :mod:`repro.ccd.index_io`) can use them without pulling in
the artifact store.  All writers go through a temporary sibling file and
:func:`os.replace`, so a reader never observes a half-written file and a
killed process never leaves a torn payload — the invariant the study
checkpoints and index shards are built on.  The ``try_load_*`` readers
return ``None`` on *any* corruption instead of raising: persistent caches
must degrade to recomputation, not fail the run.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp sibling + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent))
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def dump_pickle(path: Union[str, Path], obj: object) -> None:
    """Atomically pickle ``obj`` to ``path``."""
    atomic_write_bytes(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def try_load_pickle(path: Union[str, Path]) -> Optional[object]:
    """Unpickle ``path``, or ``None`` when missing, truncated, or corrupt."""
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None


def dump_json(path: Union[str, Path], obj: object) -> None:
    """Atomically write ``obj`` as pretty-printed JSON to ``path``."""
    atomic_write_bytes(path, (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode("utf-8"))


def try_load_json(path: Union[str, Path]) -> Optional[object]:
    """Parse JSON from ``path``, or ``None`` when missing or corrupt."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


__all__ = [
    "atomic_write_bytes",
    "dump_json",
    "dump_pickle",
    "try_load_json",
    "try_load_pickle",
]
