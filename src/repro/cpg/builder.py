"""High-level CPG construction API.

:func:`build_cpg` is the main entry point used by CCC, the examples, and
the benchmarks: it parses Solidity source (full contract or snippet),
translates the AST through the Solidity frontend, and runs the semantic
passes in order.
"""

from __future__ import annotations

from typing import Optional

from repro.cpg.frontend import SolidityFrontend
from repro.cpg.graph import CPGGraph
from repro.cpg.passes import DataFlowPass, EvaluationOrderPass, ResolutionPass
from repro.solidity import ast_nodes as ast
from repro.solidity.parser import parse, parse_snippet


def build_cpg(
    source: Optional[str] = None,
    *,
    snippet: bool = True,
    unit: Optional[ast.SourceUnit] = None,
) -> CPGGraph:
    """Build a Code Property Graph from Solidity source or a parsed AST.

    Parameters
    ----------
    source:
        Solidity source text.  Ignored when ``unit`` is given.
    snippet:
        Parse in snippet mode (tolerant grammar, hierarchy unnesting).  The
        default is ``True`` because the study operates on Q&A snippets;
        full contracts parse identically in snippet mode.
    unit:
        An already-parsed :class:`~repro.solidity.ast_nodes.SourceUnit`.

    Returns
    -------
    CPGGraph
        The populated graph with AST, EOG, DFG, and resolution edges.
    """
    if unit is None:
        if source is None:
            raise ValueError("either source text or a parsed unit is required")
        unit = parse_snippet(source) if snippet else parse(source)
    graph = CPGGraph()
    frontend = SolidityFrontend(graph)
    frontend.collect_modifiers(unit)
    frontend.translate(unit)
    ResolutionPass(graph).run()
    EvaluationOrderPass(graph).run()
    DataFlowPass(graph).run()
    return graph
