"""Code Property Graph (CPG) substrate.

This sub-package replaces the Fraunhofer AISEC CPG library used by the
paper.  It provides

* node classes whose labels mirror those used by the paper's Cypher
  queries (``FunctionDeclaration``, ``CallExpression``, ``Rollback``, ...),
* a property graph container with labelled edges (``AST``, ``EOG``, ``DFG``,
  ``REFERS_TO``, ``INVOKES``, ``ARGUMENTS``, ...),
* a Solidity frontend that translates the tolerant parser's AST into CPG
  nodes, expands modifiers (Section 4.2.2), creates ``Rollback`` nodes for
  reverting constructs (Section 4.2.1), and infers missing outer
  declarations for snippets, and
* passes that add evaluation-order (EOG) and data-flow (DFG) edges plus
  reference/call/type resolution (Section 4.2.3).
"""

from repro.cpg.builder import build_cpg
from repro.cpg.graph import CPGEdge, CPGGraph, EdgeLabel
from repro.cpg.nodes import (
    BinaryOperator,
    CallExpression,
    CompoundStatement,
    ConstructorDeclaration,
    CPGNode,
    DeclaredReferenceExpression,
    DoStatement,
    EmitStatement,
    FieldDeclaration,
    ForStatement,
    FunctionDeclaration,
    IfStatement,
    KeyValueExpression,
    Literal,
    MemberExpression,
    ModifierDeclaration,
    NewExpression,
    ParamVariableDeclaration,
    RecordDeclaration,
    ReturnStatement,
    Rollback,
    SpecifiedExpression,
    SubscriptExpression,
    TranslationUnit,
    TypeNode,
    UnaryOperator,
    VariableDeclaration,
    WhileStatement,
)

__all__ = [
    "BinaryOperator",
    "CPGEdge",
    "CPGGraph",
    "CPGNode",
    "CallExpression",
    "CompoundStatement",
    "ConstructorDeclaration",
    "DeclaredReferenceExpression",
    "DoStatement",
    "EdgeLabel",
    "EmitStatement",
    "FieldDeclaration",
    "ForStatement",
    "FunctionDeclaration",
    "IfStatement",
    "KeyValueExpression",
    "Literal",
    "MemberExpression",
    "ModifierDeclaration",
    "NewExpression",
    "ParamVariableDeclaration",
    "RecordDeclaration",
    "ReturnStatement",
    "Rollback",
    "SpecifiedExpression",
    "SubscriptExpression",
    "TranslationUnit",
    "TypeNode",
    "UnaryOperator",
    "VariableDeclaration",
    "WhileStatement",
    "build_cpg",
]
