"""Evaluation Order Graph (EOG) pass.

Adds ``EOG`` edges that model control flow and evaluation order within each
function (Figure 2 of the paper): operands are evaluated before their
operator, conditions before the branching statement, and the branching
statement before both branch bodies.  ``Rollback`` nodes and
``ReturnStatement`` nodes terminate a path (no outgoing EOG edges), which
the vulnerability queries rely on when they require a path to end in a node
that "does persist its results".

The FunctionDeclaration node itself is the EOG entry: it has an EOG edge to
the first evaluated node of its body, matching the paper's query patterns
``(f:FunctionDeclaration)-[:EOG*]->(...)``.
"""

from __future__ import annotations

from repro.cpg import nodes as cpg
from repro.cpg.graph import CPGGraph, EdgeLabel


class EvaluationOrderPass:
    """Wire EOG edges for every function in the graph."""

    def __init__(self, graph: CPGGraph):
        self.graph = graph

    def run(self) -> None:
        for function in self.graph.nodes_by_label("FunctionDeclaration"):
            bodies = self.graph.successors(function, EdgeLabel.BODY)
            if not bodies:
                continue
            self._visit(bodies[0], [function])

    # -- helpers ----------------------------------------------------------------
    def _connect(self, predecessors: list[cpg.CPGNode], node: cpg.CPGNode) -> list[cpg.CPGNode]:
        for predecessor in predecessors:
            if predecessor is not node and not self.graph.has_edge(predecessor, node, EdgeLabel.EOG):
                self.graph.add_edge(predecessor, node, EdgeLabel.EOG)
        return [node]

    def _visit(self, node: cpg.CPGNode, predecessors: list[cpg.CPGNode]) -> list[cpg.CPGNode]:
        """Wire EOG edges for ``node`` given its predecessors; return its exits."""
        if node.has_label("CompoundStatement"):
            current = predecessors
            for child in self.graph.ast_children(node):
                current = self._visit(child, current)
            return current
        if node.has_label("IfStatement"):
            return self._visit_if(node, predecessors)
        if node.has_label("WhileStatement") or node.has_label("ForStatement") \
                or node.has_label("DoStatement") or node.has_label("ForEachStatement"):
            return self._visit_loop(node, predecessors)
        if node.has_label("ReturnStatement"):
            current = predecessors
            for child in self.graph.ast_children(node):
                current = self._visit(child, current)
            self._connect(current, node)
            return []  # function exit
        if node.has_label("Rollback"):
            current = predecessors
            for child in self.graph.ast_children(node):
                current = self._visit(child, current)
            self._connect(current, node)
            return []  # transaction rollback terminates the path
        if node.has_label("CallExpression"):
            return self._visit_call(node, predecessors)
        if node.has_label("BinaryOperator"):
            current = predecessors
            for label in (EdgeLabel.LHS, EdgeLabel.RHS):
                for child in self.graph.successors(node, label):
                    current = self._visit(child, current)
            return self._connect(current, node)
        if node.has_label("UnaryOperator"):
            current = predecessors
            for child in self.graph.successors(node, EdgeLabel.INPUT):
                current = self._visit(child, current)
            return self._connect(current, node)
        if node.has_label("ConditionalExpression"):
            current = predecessors
            for child in self.graph.successors(node, EdgeLabel.CONDITION):
                current = self._visit(child, current)
            current = self._connect(current, node)
            exits: list[cpg.CPGNode] = []
            for label in (EdgeLabel.LHS, EdgeLabel.RHS):
                for child in self.graph.successors(node, label):
                    exits.extend(self._visit(child, current))
            return exits or current
        if node.has_label("EmitStatement"):
            current = predecessors
            for child in self.graph.ast_children(node):
                current = self._visit(child, current)
            return self._connect(current, node)
        if node.has_label("VariableDeclaration"):
            current = predecessors
            for child in self.graph.successors(node, EdgeLabel.INITIALIZER):
                current = self._visit(child, current)
            return self._connect(current, node)
        # leaf expressions and opaque statements: children (if any) first
        current = predecessors
        for child in self.graph.ast_children(node):
            current = self._visit(child, current)
        return self._connect(current, node)

    def _visit_if(self, node: cpg.CPGNode, predecessors: list[cpg.CPGNode]) -> list[cpg.CPGNode]:
        current = predecessors
        for condition in self.graph.successors(node, EdgeLabel.CONDITION):
            current = self._visit(condition, current)
        current = self._connect(current, node)
        then_body = None
        else_body = None
        for edge in self.graph.out_edges(node, EdgeLabel.BODY):
            if edge.properties.get("branch") == "else":
                else_body = edge.target
            else:
                then_body = edge.target
        exits: list[cpg.CPGNode] = []
        if then_body is not None:
            exits.extend(self._visit(then_body, current))
        if else_body is not None:
            exits.extend(self._visit(else_body, current))
        else:
            exits.extend(current)  # fallthrough when the condition is false
        if then_body is None and else_body is None:
            exits.extend(current)
        return exits or current

    def _visit_loop(self, node: cpg.CPGNode, predecessors: list[cpg.CPGNode]) -> list[cpg.CPGNode]:
        current = predecessors
        init_children = [
            edge.target for edge in self.graph.out_edges(node, EdgeLabel.AST)
            if edge.properties.get("role") == "init"
        ]
        for init in init_children:
            current = self._visit(init, current)
        conditions = self.graph.successors(node, EdgeLabel.CONDITION)
        for condition in conditions:
            current = self._visit(condition, current)
        current = self._connect(current, node)
        body_exits: list[cpg.CPGNode] = list(current)
        for body in self.graph.successors(node, EdgeLabel.BODY):
            body_exits = self._visit(body, current)
        update_children = [
            edge.target for edge in self.graph.out_edges(node, EdgeLabel.AST)
            if edge.properties.get("role") == "update"
        ]
        for update in update_children:
            body_exits = self._visit(update, body_exits)
        # back edge to the loop header (through the condition when present)
        back_targets = conditions or [node]
        for exit_node in body_exits:
            for target in back_targets:
                first = self._first_evaluated(target)
                if not self.graph.has_edge(exit_node, first, EdgeLabel.EOG):
                    self.graph.add_edge(exit_node, first, EdgeLabel.EOG)
        return [node]

    def _visit_call(self, node: cpg.CPGNode, predecessors: list[cpg.CPGNode]) -> list[cpg.CPGNode]:
        current = predecessors
        for callee in self.graph.successors(node, EdgeLabel.CALLEE):
            current = self._visit(callee, current)
        for argument in self.graph.successors(node, EdgeLabel.ARGUMENTS):
            current = self._visit(argument, current)
        for specifier in self.graph.successors(node, EdgeLabel.SPECIFIERS):
            for pair in self.graph.ast_children(specifier):
                for value in self.graph.successors(pair, EdgeLabel.VALUE):
                    current = self._visit(value, current)
                current = self._connect(current, pair)
            current = self._connect(current, specifier)
        current = self._connect(current, node)
        # require/assert: the failing branch reaches the attached Rollback node
        if node.properties.get("reverting"):
            for edge in self.graph.out_edges(node, EdgeLabel.AST):
                if edge.properties.get("role") == "rollback":
                    self.graph.add_edge(node, edge.target, EdgeLabel.EOG)
        return current

    def _first_evaluated(self, node: cpg.CPGNode) -> cpg.CPGNode:
        """The first node evaluated when (re-)entering ``node`` (loop back edges)."""
        for label in (EdgeLabel.LHS, EdgeLabel.INPUT, EdgeLabel.CONDITION):
            children = self.graph.successors(node, label)
            if children:
                return self._first_evaluated(children[0])
        return node
