"""Data Flow Graph (DFG) pass.

Adds ``DFG`` edges describing how values move through the program
(Section 2.3 / Figure 2 of the paper).  The rules are intentionally
over-approximating — a pattern-based analysis on snippets prefers recall
over soundness (Section 4.5):

* a read reference receives flow from its declaration
  (``declaration -> reference``),
* a written reference (assignment target, ``++``/``--``, ``delete``)
  flows into its declaration (``reference -> declaration``),
* the right-hand side of an assignment flows into the assignment node, the
  target reference, and onwards into the target declaration,
* operands flow into their operator, arguments into their call, members
  from their base, values through key-value specifiers, condition values
  into their branching statement, and returned expressions into the
  ``ReturnStatement`` (and from there to call sites via the resolution
  pass).
"""

from __future__ import annotations

from repro.cpg import nodes as cpg
from repro.cpg.graph import CPGGraph, EdgeLabel

_WRITE_OPERATORS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="}
_INCREMENT_OPERATORS = {"++", "--", "delete"}


class DataFlowPass:
    """Wire DFG edges across the whole graph."""

    def __init__(self, graph: CPGGraph):
        self.graph = graph

    def run(self) -> None:
        for node in self.graph.nodes:
            self._visit(node)

    # -- helpers ----------------------------------------------------------------
    def _add(self, source: cpg.CPGNode, target: cpg.CPGNode, **properties) -> None:
        if source is target:
            return
        if not self.graph.has_edge(source, target, EdgeLabel.DFG):
            self.graph.add_edge(source, target, EdgeLabel.DFG, **properties)

    def _declaration_of(self, reference: cpg.CPGNode):
        targets = self.graph.successors(reference, EdgeLabel.REFERS_TO)
        return targets[0] if targets else None

    def _write_targets(self, expression: cpg.CPGNode) -> list[cpg.CPGNode]:
        """References that are written when ``expression`` is an assignment target.

        For ``balances[msg.sender] = x`` the written reference is ``balances``;
        for ``account.balance = x`` it is the member expression itself plus the
        base reference.
        """
        result: list[cpg.CPGNode] = []
        stack = [expression]
        while stack:
            node = stack.pop()
            if node.has_label("DeclaredReferenceExpression"):
                result.append(node)
            elif node.has_label("SubscriptExpression") or node.has_label("MemberExpression"):
                result.append(node)
                stack.extend(self.graph.successors(node, EdgeLabel.BASE))
            elif node.has_label("TupleExpression"):
                stack.extend(self.graph.ast_children(node))
        return result

    # -- node rules ----------------------------------------------------------------
    def _visit(self, node: cpg.CPGNode) -> None:
        if node.has_label("BinaryOperator"):
            self._visit_binary(node)
        elif node.has_label("UnaryOperator"):
            self._visit_unary(node)
        elif node.has_label("CallExpression") or node.has_label("Rollback"):
            self._visit_call(node)
        elif node.has_label("MemberExpression"):
            self._visit_member(node)
        elif node.has_label("SubscriptExpression"):
            self._visit_subscript(node)
        elif node.has_label("DeclaredReferenceExpression"):
            self._visit_reference(node)
        elif node.has_label("ReturnStatement") or node.has_label("EmitStatement"):
            for child in self.graph.ast_children(node):
                self._add(child, node)
        elif node.has_label("VariableDeclaration") or node.has_label("FieldDeclaration"):
            for initializer in self.graph.successors(node, EdgeLabel.INITIALIZER):
                self._add(initializer, node)
        elif node.has_label("IfStatement") or node.has_label("WhileStatement") \
                or node.has_label("ForStatement") or node.has_label("DoStatement"):
            for condition in self.graph.successors(node, EdgeLabel.CONDITION):
                self._add(condition, node)
        elif node.has_label("ConditionalExpression"):
            for label in (EdgeLabel.LHS, EdgeLabel.RHS):
                for child in self.graph.successors(node, label):
                    self._add(child, node)
        elif node.has_label("KeyValueExpression"):
            for value in self.graph.successors(node, EdgeLabel.VALUE):
                self._add(value, node)
        elif node.has_label("SpecifiedExpression"):
            for pair in self.graph.ast_children(node):
                self._add(pair, node)
        elif node.has_label("CastExpression") or node.has_label("TupleExpression"):
            for child in self.graph.ast_children(node):
                self._add(child, node)

    def _visit_reference(self, node: cpg.CPGNode) -> None:
        declaration = self._declaration_of(node)
        if declaration is not None:
            # read flow; write flow is added by the assignment/unary rules
            self._add(declaration, node, kind="read")

    def _visit_member(self, node: cpg.CPGNode) -> None:
        for base in self.graph.successors(node, EdgeLabel.BASE):
            self._add(base, node)
        declaration = self._declaration_of(node)
        if declaration is not None:
            self._add(declaration, node, kind="read")

    def _visit_subscript(self, node: cpg.CPGNode) -> None:
        for base in self.graph.successors(node, EdgeLabel.BASE):
            self._add(base, node)
        for index in self.graph.successors(node, EdgeLabel.SUBSCRIPT_EXPRESSION):
            self._add(index, node)

    def _visit_binary(self, node: cpg.CPGNode) -> None:
        operator = getattr(node, "operator_code", "")
        lhs = self.graph.successors(node, EdgeLabel.LHS)
        rhs = self.graph.successors(node, EdgeLabel.RHS)
        if operator in _WRITE_OPERATORS:
            for right in rhs:
                self._add(right, node)
                for left in lhs:
                    self._add(right, left)
            for left in lhs:
                self._add(node, left)
                declarations = []
                for target in self._write_targets(left):
                    declaration = self._declaration_of(target)
                    if declaration is not None:
                        declarations.append(declaration)
                        self._add(target, declaration, kind="write")
                for declaration in declarations:
                    # the written value reaches the declaration through the
                    # full left-hand side expression (e.g. ``b[to] += v``)
                    self._add(left, declaration, kind="write")
                    self._add(node, declaration, kind="write")
                if operator != "=":
                    # compound assignment also reads the previous value
                    for target in self._write_targets(left):
                        declaration = self._declaration_of(target)
                        if declaration is not None:
                            self._add(declaration, target, kind="read")
        else:
            for child in lhs + rhs:
                self._add(child, node)

    def _visit_unary(self, node: cpg.CPGNode) -> None:
        operator = getattr(node, "operator_code", "")
        for operand in self.graph.successors(node, EdgeLabel.INPUT):
            self._add(operand, node)
            if operator in _INCREMENT_OPERATORS:
                self._add(node, operand)
                for target in self._write_targets(operand):
                    declaration = self._declaration_of(target)
                    if declaration is not None:
                        self._add(target, declaration, kind="write")

    def _visit_call(self, node: cpg.CPGNode) -> None:
        for argument in self.graph.successors(node, EdgeLabel.ARGUMENTS):
            self._add(argument, node)
        for callee in self.graph.successors(node, EdgeLabel.CALLEE):
            self._add(callee, node)
        for specifier in self.graph.successors(node, EdgeLabel.SPECIFIERS):
            self._add(specifier, node)
        # data flows into parameters of invoked (intra-record) functions
        for target in self.graph.successors(node, EdgeLabel.INVOKES):
            parameters = sorted(
                self.graph.successors(target, EdgeLabel.PARAMETERS),
                key=lambda parameter: getattr(parameter, "index", 0),
            )
            arguments = self.graph.successors(node, EdgeLabel.ARGUMENTS)
            for parameter, argument in zip(parameters, arguments):
                self._add(argument, parameter)
