"""Reference, type, and call resolution pass.

Adds the following edges:

* ``REFERS_TO`` from a :class:`DeclaredReferenceExpression` (or
  ``MemberExpression`` whose base is ``this``) to the declaration it names,
  searching the enclosing function's parameters and locals first and the
  enclosing record's fields second,
* ``TYPE`` from declarations and resolved references to a shared
  :class:`TypeNode` per type name,
* ``INVOKES`` from a :class:`CallExpression` to a same-record
  :class:`FunctionDeclaration` with a matching name, and
* ``RETURNS`` from the return statements of an invoked function back to the
  call site (used by the queries' ``EOG|INVOKES|RETURNS*`` traversals).
"""

from __future__ import annotations

from typing import Optional

from repro.cpg import nodes as cpg
from repro.cpg.graph import CPGGraph, EdgeLabel
from repro.solidity.lexer import is_elementary_type


class ResolutionPass:
    """Resolve names, types and calls within a translation unit."""

    def __init__(self, graph: CPGGraph):
        self.graph = graph
        self._type_nodes: dict[str, cpg.TypeNode] = {}

    # -- entry point --------------------------------------------------------
    def run(self) -> None:
        self._attach_declaration_types()
        for record in self.graph.nodes_by_label("RecordDeclaration"):
            self._resolve_record(record)

    # -- types ----------------------------------------------------------------
    def _type_node(self, type_text: str) -> cpg.TypeNode:
        base = type_text.split("(")[0].strip() if type_text.startswith("mapping") else type_text
        base = base.replace("[]", "").strip() or "uint"
        node = self._type_nodes.get(base)
        if node is None:
            node = cpg.TypeNode(name=base, code=type_text,
                                is_object_type=not is_elementary_type(base) and base != "mapping")
            self.graph.add_node(node)
            self._type_nodes[base] = node
        return node

    def _attach_declaration_types(self) -> None:
        for label in ("FieldDeclaration", "VariableDeclaration", "ParamVariableDeclaration"):
            for declaration in self.graph.nodes_by_label(label):
                type_text = getattr(declaration, "type_name", "") or "uint"
                self.graph.add_edge(declaration, self._type_node(type_text), EdgeLabel.TYPE)
        for cast in self.graph.nodes_by_label("CastExpression"):
            type_text = getattr(cast, "type_name", "") or cast.name
            if type_text:
                self.graph.add_edge(cast, self._type_node(type_text), EdgeLabel.TYPE)

    # -- per-record resolution --------------------------------------------------
    def _resolve_record(self, record: cpg.RecordDeclaration) -> None:
        fields = {field.name: field for field in self.graph.successors(record, EdgeLabel.FIELDS) if field.name}
        functions = [
            node for node in self.graph.ast_children(record)
            if node.has_label("FunctionDeclaration")
        ]
        function_index: dict[str, cpg.FunctionDeclaration] = {
            function.name: function for function in functions if function.name
        }
        for function in functions:
            self._resolve_function(function, fields, function_index)
        self._infer_missing_declarations(record, fields, function_index, functions)

    #: Global objects and common names that must not be inferred as state.
    _BUILTIN_NAMES = frozenset({
        "msg", "tx", "block", "this", "super", "abi", "now", "true", "false",
        "address", "payable", "require", "assert", "revert", "keccak256",
        "sha3", "sha256", "ripemd160", "ecrecover", "selfdestruct", "suicide",
        "gasleft", "blockhash", "type", "uint", "int", "bytes", "string", "bool",
    })

    def _infer_missing_declarations(
        self,
        record: cpg.RecordDeclaration,
        fields: dict[str, cpg.CPGNode],
        function_index: dict[str, cpg.FunctionDeclaration],
        functions: list[cpg.CPGNode],
    ) -> None:
        """Infer state-variable declarations for unresolved references.

        Snippets regularly use state variables whose declaration was not
        pasted; the paper's frontend "complements the translated AST with
        the inferred declarations" (Section 4.2).  Unresolved lower-case
        simple references become inferred ``FieldDeclaration`` nodes so
        that data-flow reasoning about persistent state still works.
        """
        inferred: dict[str, cpg.FieldDeclaration] = {}
        for function in functions:
            for body in self.graph.successors(function, EdgeLabel.BODY):
                for node in self.graph.ast_descendants(body):
                    if not node.has_label("DeclaredReferenceExpression") or node.has_label("MemberExpression"):
                        continue
                    if self.graph.successors(node, EdgeLabel.REFERS_TO):
                        continue
                    name = node.name
                    if not name or name in self._BUILTIN_NAMES or name in function_index:
                        continue
                    if name[0].isupper() or name == "_":
                        continue
                    # call targets are not state variables
                    if any(parent.has_label("CallExpression") and parent.local_name == name
                           for parent in self.graph.predecessors(node, EdgeLabel.CALLEE)):
                        continue
                    field = fields.get(name) or inferred.get(name)
                    if field is None:
                        field = cpg.FieldDeclaration(name=name, code=name, type_name="uint")
                        field.is_inferred = True
                        self.graph.add_node(field)
                        self.graph.add_edge(record, field, EdgeLabel.FIELDS)
                        self.graph.add_edge(record, field, EdgeLabel.AST)
                        self.graph.add_edge(field, self._type_node("uint"), EdgeLabel.TYPE)
                        inferred[name] = field
                    self.graph.add_edge(node, field, EdgeLabel.REFERS_TO)
                    self._copy_type(field, node)

    def _resolve_function(
        self,
        function: cpg.CPGNode,
        fields: dict[str, cpg.CPGNode],
        function_index: dict[str, cpg.FunctionDeclaration],
    ) -> None:
        scope: dict[str, cpg.CPGNode] = dict(fields)
        for parameter in self.graph.successors(function, EdgeLabel.PARAMETERS):
            if parameter.name:
                scope[parameter.name] = parameter
        bodies = self.graph.successors(function, EdgeLabel.BODY)
        if not bodies:
            return
        body = bodies[0]
        # locals are collected in document order so later references resolve
        for node in self.graph.ast_descendants(body):
            if node.has_label("VariableDeclaration") and not node.has_label("ParamVariableDeclaration"):
                if node.name:
                    scope[node.name] = node
        for node in self.graph.ast_descendants(body):
            self._resolve_node(node, scope, function_index)

    def _resolve_node(
        self,
        node: cpg.CPGNode,
        scope: dict[str, cpg.CPGNode],
        function_index: dict[str, cpg.FunctionDeclaration],
    ) -> None:
        if node.has_label("MemberExpression"):
            target = self._resolve_member(node, scope)
            if target is not None:
                self.graph.add_edge(node, target, EdgeLabel.REFERS_TO)
                self._copy_type(target, node)
            return
        if node.has_label("DeclaredReferenceExpression"):
            target = scope.get(node.name)
            if target is not None:
                self.graph.add_edge(node, target, EdgeLabel.REFERS_TO)
                self._copy_type(target, node)
            return
        if node.has_label("CallExpression") and not node.has_label("Rollback"):
            target_function = function_index.get(node.name)
            if target_function is not None and not self.graph.has_edge(node, target_function, EdgeLabel.INVOKES):
                self.graph.add_edge(node, target_function, EdgeLabel.INVOKES)
                for body in self.graph.successors(target_function, EdgeLabel.BODY):
                    for descendant in self.graph.ast_descendants(body):
                        if descendant.has_label("ReturnStatement"):
                            self.graph.add_edge(descendant, node, EdgeLabel.RETURNS)
                            self.graph.add_edge(descendant, node, EdgeLabel.DFG)

    def _resolve_member(self, node: cpg.CPGNode, scope: dict[str, cpg.CPGNode]) -> Optional[cpg.CPGNode]:
        """Resolve ``this.field`` and bare struct-style member reads on fields."""
        bases = self.graph.successors(node, EdgeLabel.BASE)
        if not bases:
            return None
        base = bases[0]
        if base.has_label("DeclaredReferenceExpression") and base.name == "this":
            return scope.get(getattr(node, "member", ""))
        return None

    def _copy_type(self, declaration: cpg.CPGNode, reference: cpg.CPGNode) -> None:
        for type_node in self.graph.successors(declaration, EdgeLabel.TYPE):
            if not self.graph.has_edge(reference, type_node, EdgeLabel.TYPE):
                self.graph.add_edge(reference, type_node, EdgeLabel.TYPE)
