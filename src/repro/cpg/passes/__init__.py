"""CPG passes adding semantic edges on top of the translated AST.

The pass order matters and is orchestrated by :func:`repro.cpg.builder.build_cpg`:

1. :class:`~repro.cpg.passes.resolution.ResolutionPass` — ``REFERS_TO``,
   ``TYPE``, ``INVOKES`` and ``RETURNS`` edges,
2. :class:`~repro.cpg.passes.eog.EvaluationOrderPass` — ``EOG`` edges,
3. :class:`~repro.cpg.passes.dfg.DataFlowPass` — ``DFG`` edges.
"""

from repro.cpg.passes.dfg import DataFlowPass
from repro.cpg.passes.eog import EvaluationOrderPass
from repro.cpg.passes.resolution import ResolutionPass

__all__ = ["DataFlowPass", "EvaluationOrderPass", "ResolutionPass"]
