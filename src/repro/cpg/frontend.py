"""Solidity language frontend: translate the parser's AST into CPG nodes.

This reproduces Section 4.2 of the paper:

* contract and state-variable declarations become ``RecordDeclaration`` and
  ``FieldDeclaration`` nodes,
* new node types are introduced for Solidity-specific constructs —
  ``Rollback`` for reverting operations, ``EmitStatement`` for events, and
  ``SpecifiedExpression``/``KeyValueExpression`` for ``{value: .., gas: ..}``
  call specifiers (Section 4.2.1),
* modifier bodies are expanded around the function body at every ``_;``
  placeholder, one copy per application (Section 4.2.2), and
* missing outer declarations of snippets are inferred (Section 4.2).
"""

from __future__ import annotations

from typing import Optional

import re
from typing import Optional as _Optional

from repro.solidity import ast_nodes as ast
from repro.cpg import nodes as cpg
from repro.cpg.graph import CPGGraph, EdgeLabel

_VERSION_RE = re.compile(r"(\d+)\s*\.\s*(\d+)")


def _parse_pragma_version(value: str) -> _Optional[tuple[int, int]]:
    """Extract the (major, minor) compiler version from a pragma value string."""
    match = _VERSION_RE.search(value or "")
    if not match:
        return None
    return int(match.group(1)), int(match.group(2))


class SolidityFrontend:
    """Translates a parsed :class:`~repro.solidity.ast_nodes.SourceUnit` into a CPG."""

    INFERRED_CONTRACT_NAME = "InferredContract"
    INFERRED_FUNCTION_NAME = "inferredSnippetFunction"

    def __init__(self, graph: Optional[CPGGraph] = None):
        self.graph = graph if graph is not None else CPGGraph()

    # -- public API -----------------------------------------------------------
    def translate(self, unit: ast.SourceUnit) -> cpg.TranslationUnit:
        """Translate a source unit (file or snippet) into the graph."""
        root = cpg.TranslationUnit(code=unit.code, name="translation-unit",
                                   line=unit.line, column=unit.column)
        self.graph.add_node(root)

        contract_items: list[ast.Node] = []
        free_parts: list[ast.Node] = []
        free_statements: list[ast.Statement] = []
        for item in unit.items:
            if isinstance(item, ast.ContractDefinition):
                contract_items.append(item)
            elif isinstance(item, ast.PragmaDirective):
                if item.name == "solidity":
                    version = _parse_pragma_version(item.value)
                    if version is not None:
                        root.properties["solidity_version"] = version
                continue
            elif isinstance(item, ast.ImportDirective):
                continue
            elif isinstance(item, (ast.FunctionDefinition, ast.ModifierDefinition,
                                   ast.StateVariableDeclaration, ast.EventDefinition,
                                   ast.StructDefinition, ast.EnumDefinition,
                                   ast.UsingForDirective, ast.ErrorDefinition)):
                free_parts.append(item)
            elif isinstance(item, ast.Statement):
                free_statements.append(item)

        for contract in contract_items:
            record = self._translate_contract(contract)
            self.graph.add_edge(root, record, EdgeLabel.AST)

        if free_parts or free_statements:
            record = self._inferred_contract(free_parts, free_statements, unit)
            self.graph.add_edge(root, record, EdgeLabel.AST)
        return root

    # -- inference for snippets --------------------------------------------------
    def _inferred_contract(
        self,
        parts: list[ast.Node],
        statements: list[ast.Statement],
        unit: ast.SourceUnit,
    ) -> cpg.RecordDeclaration:
        """Wrap free-floating parts/statements in an inferred contract (Section 4.2)."""
        record = cpg.RecordDeclaration(name=self.INFERRED_CONTRACT_NAME, kind="contract",
                                       code=unit.code)
        record.is_inferred = True
        self.graph.add_node(record)
        for part in parts:
            node = self._translate_contract_part(part, record)
            if node is not None:
                self.graph.add_edge(record, node, EdgeLabel.AST)
        if statements:
            synthetic = ast.FunctionDefinition(
                name=self.INFERRED_FUNCTION_NAME, kind="function",
                body=ast.Block(statements=statements),
                line=statements[0].line, column=statements[0].column,
                code="\n".join(statement.code for statement in statements),
            )
            function = self._translate_function(synthetic, record)
            function.is_inferred = True
            self.graph.add_edge(record, function, EdgeLabel.AST)
        return record

    # -- contracts ------------------------------------------------------------------
    def _translate_contract(self, contract: ast.ContractDefinition) -> cpg.RecordDeclaration:
        record = cpg.RecordDeclaration(name=contract.name or "AnonymousContract",
                                       kind=contract.kind, code=contract.code,
                                       line=contract.line, column=contract.column)
        record.base_names = list(contract.base_contracts)
        self.graph.add_node(record)
        for part in contract.parts:
            node = self._translate_contract_part(part, record)
            if node is not None:
                self.graph.add_edge(record, node, EdgeLabel.AST)
        return record

    def _translate_contract_part(self, part: ast.Node, record: cpg.RecordDeclaration) -> Optional[cpg.CPGNode]:
        if isinstance(part, ast.StateVariableDeclaration):
            return self._translate_field(part, record)
        if isinstance(part, ast.FunctionDefinition):
            modifiers = self._modifier_definitions(record, part)
            return self._translate_function(part, record, modifier_definitions=modifiers)
        if isinstance(part, ast.ModifierDefinition):
            return self._translate_modifier_declaration(part, record)
        if isinstance(part, ast.EventDefinition):
            event = cpg.EventDeclaration(name=part.name, code=part.code,
                                         line=part.line, column=part.column)
            self.graph.add_node(event)
            return event
        if isinstance(part, ast.StructDefinition):
            return self._translate_struct(part)
        if isinstance(part, ast.EnumDefinition):
            enum = cpg.RecordDeclaration(name=part.name, kind="enum", code=part.code,
                                         line=part.line, column=part.column)
            self.graph.add_node(enum)
            return enum
        if isinstance(part, ast.ContractDefinition):
            return self._translate_contract(part)
        if isinstance(part, ast.Statement):
            # snippet-mode stray statement inside a contract body
            synthetic = ast.FunctionDefinition(
                name=self.INFERRED_FUNCTION_NAME, kind="function",
                body=ast.Block(statements=[part]),
                line=part.line, column=part.column, code=part.code,
            )
            function = self._translate_function(synthetic, record)
            function.is_inferred = True
            return function
        return None

    def _modifier_definitions(
        self, record: cpg.RecordDeclaration, function: ast.FunctionDefinition
    ) -> dict[str, ast.ModifierDefinition]:
        """Collect AST modifier definitions available for expansion.

        The AST is re-scanned because expansion needs the *source* AST of
        the modifier (a fresh CPG copy is created per application).
        """
        del record, function  # resolution happens per translation unit below
        return self._known_modifiers

    def _translate_struct(self, struct: ast.StructDefinition) -> cpg.RecordDeclaration:
        record = cpg.RecordDeclaration(name=struct.name, kind="struct", code=struct.code,
                                       line=struct.line, column=struct.column)
        self.graph.add_node(record)
        for member in struct.members:
            field = cpg.FieldDeclaration(
                name=member.name, code=member.code, line=member.line, column=member.column,
                type_name=self._type_text(member.type_name),
            )
            self.graph.add_node(field)
            self.graph.add_edge(record, field, EdgeLabel.AST)
            self.graph.add_edge(record, field, EdgeLabel.FIELDS)
        return record

    def _translate_field(
        self, declaration: ast.StateVariableDeclaration, record: cpg.RecordDeclaration
    ) -> cpg.FieldDeclaration:
        field = cpg.FieldDeclaration(
            name=declaration.name, code=declaration.code,
            line=declaration.line, column=declaration.column,
            type_name=self._type_text(declaration.type_name),
            visibility=declaration.visibility,
        )
        field.is_constant = declaration.is_constant or declaration.is_immutable
        self.graph.add_node(field)
        self.graph.add_edge(record, field, EdgeLabel.FIELDS)
        if declaration.initial_value is not None:
            value = self._translate_expression(declaration.initial_value)
            self.graph.add_edge(field, value, EdgeLabel.AST)
            self.graph.add_edge(field, value, EdgeLabel.INITIALIZER)
        return field

    def _translate_modifier_declaration(
        self, modifier: ast.ModifierDefinition, record: cpg.RecordDeclaration
    ) -> cpg.ModifierDeclaration:
        declaration = cpg.ModifierDeclaration(
            name=modifier.name, code=modifier.code, line=modifier.line, column=modifier.column,
        )
        self.graph.add_node(declaration)
        for index, parameter in enumerate(modifier.parameters):
            param = self._translate_parameter(parameter, index)
            self.graph.add_edge(declaration, param, EdgeLabel.AST)
            self.graph.add_edge(declaration, param, EdgeLabel.PARAMETERS, index=index)
        # The modifier body is *not* translated here: it is expanded into
        # every function that applies it (Section 4.2.2).
        return declaration

    # -- functions ----------------------------------------------------------------------
    def _translate_function(
        self,
        function: ast.FunctionDefinition,
        record: cpg.RecordDeclaration,
        modifier_definitions: Optional[dict[str, ast.ModifierDefinition]] = None,
    ) -> cpg.FunctionDeclaration:
        if function.is_constructor:
            declaration: cpg.FunctionDeclaration = cpg.ConstructorDeclaration(
                name=function.name or record.name, kind="constructor",
            )
        else:
            declaration = cpg.FunctionDeclaration(
                name=function.name, kind=function.kind,
                visibility=function.visibility, mutability=function.mutability,
            )
        declaration.code = function.code
        declaration.line, declaration.column = function.line, function.column
        self.graph.add_node(declaration)
        self.graph.add_edge(declaration, record, EdgeLabel.RECORD_DECLARATION)

        for index, parameter in enumerate(function.parameters):
            param = self._translate_parameter(parameter, index)
            self.graph.add_edge(declaration, param, EdgeLabel.AST)
            self.graph.add_edge(declaration, param, EdgeLabel.PARAMETERS, index=index)
        for index, parameter in enumerate(function.return_parameters):
            param = self._translate_parameter(parameter, index)
            param.properties["is_return_parameter"] = True
            self.graph.add_edge(declaration, param, EdgeLabel.AST)

        body = None
        if function.body is not None:
            body = self._translate_statement(function.body)
        body = self._expand_modifiers(function, body, modifier_definitions or {})
        if body is not None:
            self.graph.add_edge(declaration, body, EdgeLabel.AST)
            self.graph.add_edge(declaration, body, EdgeLabel.BODY)
        for invocation in function.modifiers:
            marker = cpg.CallExpression(name=invocation.name, code=invocation.code or invocation.name,
                                        line=invocation.line, column=invocation.column)
            marker.properties["modifier_invocation"] = True
            self.graph.add_node(marker)
            self.graph.add_edge(declaration, marker, EdgeLabel.MODIFIERS)
        return declaration

    def _expand_modifiers(
        self,
        function: ast.FunctionDefinition,
        body: Optional[cpg.CPGNode],
        modifier_definitions: dict[str, ast.ModifierDefinition],
    ) -> Optional[cpg.CPGNode]:
        """Wrap the function body in the bodies of applied modifiers.

        Modifiers are applied inside-out: the last modifier in the header is
        closest to the function body (matching Solidity semantics where the
        first modifier is entered first).
        """
        if not function.modifiers:
            return body
        current = body
        for invocation in reversed(function.modifiers):
            definition = modifier_definitions.get(invocation.name)
            if definition is None or definition.body is None:
                continue
            current = self._translate_statement(definition.body, placeholder_body=current)
        return current

    def _translate_parameter(self, parameter: ast.Parameter, index: int) -> cpg.ParamVariableDeclaration:
        node = cpg.ParamVariableDeclaration(
            name=parameter.name, code=parameter.code,
            line=parameter.line, column=parameter.column,
            type_name=self._type_text(parameter.type_name),
            storage_location=parameter.storage_location,
            index=index,
        )
        self.graph.add_node(node)
        return node

    # -- statements ------------------------------------------------------------------------
    def _translate_statement(
        self, statement: ast.Statement, placeholder_body: Optional[cpg.CPGNode] = None
    ) -> cpg.CPGNode:
        if isinstance(statement, ast.Block):
            block = cpg.CompoundStatement(code=statement.code, line=statement.line, column=statement.column)
            block.unchecked = statement.unchecked
            self.graph.add_node(block)
            for child in statement.statements:
                node = self._translate_statement(child, placeholder_body=placeholder_body)
                self.graph.add_edge(block, node, EdgeLabel.AST)
            return block
        if isinstance(statement, ast.PlaceholderStatement):
            if placeholder_body is not None:
                return placeholder_body
            marker = cpg.UnknownStatement(code="_;", line=statement.line, column=statement.column)
            self.graph.add_node(marker)
            return marker
        if isinstance(statement, ast.ExpressionStatement):
            if statement.expression is None:
                empty = cpg.UnknownStatement(code=statement.code)
                self.graph.add_node(empty)
                return empty
            return self._translate_expression(statement.expression)
        if isinstance(statement, ast.VariableDeclarationStatement):
            return self._translate_local_declaration(statement)
        if isinstance(statement, ast.IfStatement):
            node = cpg.IfStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            if statement.condition is not None:
                condition = self._translate_expression(statement.condition)
                self.graph.add_edge(node, condition, EdgeLabel.AST)
                self.graph.add_edge(node, condition, EdgeLabel.CONDITION)
            if statement.true_body is not None:
                true_body = self._translate_statement(statement.true_body, placeholder_body)
                self.graph.add_edge(node, true_body, EdgeLabel.AST)
                self.graph.add_edge(node, true_body, EdgeLabel.BODY, branch="then")
            if statement.false_body is not None:
                false_body = self._translate_statement(statement.false_body, placeholder_body)
                self.graph.add_edge(node, false_body, EdgeLabel.AST)
                self.graph.add_edge(node, false_body, EdgeLabel.BODY, branch="else")
            return node
        if isinstance(statement, ast.WhileStatement):
            node = cpg.WhileStatement(code=statement.code, line=statement.line, column=statement.column)
            return self._translate_loop(node, statement.condition, statement.body, placeholder_body)
        if isinstance(statement, ast.DoWhileStatement):
            node = cpg.DoStatement(code=statement.code, line=statement.line, column=statement.column)
            return self._translate_loop(node, statement.condition, statement.body, placeholder_body)
        if isinstance(statement, ast.ForStatement):
            node = cpg.ForStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            if statement.init is not None:
                init = self._translate_statement(statement.init, placeholder_body)
                self.graph.add_edge(node, init, EdgeLabel.AST, role="init")
            if statement.condition is not None:
                condition = self._translate_expression(statement.condition)
                self.graph.add_edge(node, condition, EdgeLabel.AST)
                self.graph.add_edge(node, condition, EdgeLabel.CONDITION)
            if statement.update is not None:
                update = self._translate_expression(statement.update)
                self.graph.add_edge(node, update, EdgeLabel.AST, role="update")
            if statement.body is not None:
                body = self._translate_statement(statement.body, placeholder_body)
                self.graph.add_edge(node, body, EdgeLabel.AST)
                self.graph.add_edge(node, body, EdgeLabel.BODY)
            return node
        if isinstance(statement, ast.ReturnStatement):
            node = cpg.ReturnStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            if statement.expression is not None:
                value = self._translate_expression(statement.expression)
                self.graph.add_edge(node, value, EdgeLabel.AST)
            return node
        if isinstance(statement, ast.EmitStatement):
            node = cpg.EmitStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            if statement.call is not None:
                call = self._translate_expression(statement.call)
                self.graph.add_edge(node, call, EdgeLabel.AST)
            return node
        if isinstance(statement, (ast.RevertStatement, ast.ThrowStatement)):
            rollback = cpg.Rollback(code=statement.code, line=statement.line, column=statement.column,
                                    name="revert" if isinstance(statement, ast.RevertStatement) else "throw")
            self.graph.add_node(rollback)
            if isinstance(statement, ast.RevertStatement) and statement.call is not None:
                for argument in statement.call.arguments:
                    value = self._translate_expression(argument)
                    self.graph.add_edge(rollback, value, EdgeLabel.AST)
                    self.graph.add_edge(rollback, value, EdgeLabel.ARGUMENTS)
            return rollback
        if isinstance(statement, ast.BreakStatement):
            node = cpg.BreakStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            return node
        if isinstance(statement, ast.ContinueStatement):
            node = cpg.ContinueStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(node)
            return node
        if isinstance(statement, ast.TryStatement):
            block = cpg.CompoundStatement(code=statement.code, line=statement.line, column=statement.column)
            self.graph.add_node(block)
            if statement.expression is not None:
                expression = self._translate_expression(statement.expression)
                self.graph.add_edge(block, expression, EdgeLabel.AST)
            if statement.body is not None:
                body = self._translate_statement(statement.body, placeholder_body)
                self.graph.add_edge(block, body, EdgeLabel.AST)
            for catch in statement.catch_bodies:
                handler = self._translate_statement(catch, placeholder_body)
                self.graph.add_edge(block, handler, EdgeLabel.AST)
            return block
        if isinstance(statement, ast.InlineAssemblyStatement):
            node = cpg.UnknownStatement(code=statement.code, name="assembly",
                                        line=statement.line, column=statement.column)
            self.graph.add_node(node)
            return node
        if isinstance(statement, ast.UnparsedStatement):
            declaration = getattr(statement, "declaration", None)
            if isinstance(declaration, ast.FunctionDefinition):
                # a nested pasted function: hoist it as its own (inferred) function
                inferred_record = cpg.RecordDeclaration(name=self.INFERRED_CONTRACT_NAME, kind="contract")
                inferred_record.is_inferred = True
                self.graph.add_node(inferred_record)
                function = self._translate_function(declaration, inferred_record)
                node = cpg.UnknownStatement(code=statement.code, line=statement.line, column=statement.column)
                self.graph.add_node(node)
                self.graph.add_edge(node, function, EdgeLabel.AST)
                return node
            node = cpg.UnknownStatement(code=statement.text or statement.code,
                                        line=statement.line, column=statement.column)
            self.graph.add_node(node)
            return node
        # default: opaque statement
        node = cpg.UnknownStatement(code=statement.code, line=statement.line, column=statement.column)
        self.graph.add_node(node)
        return node

    def _translate_loop(
        self,
        node: cpg.CPGNode,
        condition: Optional[ast.Expression],
        body: Optional[ast.Statement],
        placeholder_body: Optional[cpg.CPGNode],
    ) -> cpg.CPGNode:
        self.graph.add_node(node)
        if condition is not None:
            condition_node = self._translate_expression(condition)
            self.graph.add_edge(node, condition_node, EdgeLabel.AST)
            self.graph.add_edge(node, condition_node, EdgeLabel.CONDITION)
        if body is not None:
            body_node = self._translate_statement(body, placeholder_body)
            self.graph.add_edge(node, body_node, EdgeLabel.AST)
            self.graph.add_edge(node, body_node, EdgeLabel.BODY)
        return node

    def _translate_local_declaration(self, statement: ast.VariableDeclarationStatement) -> cpg.CPGNode:
        declarations = []
        for declaration in statement.declarations:
            node = cpg.VariableDeclaration(
                name=declaration.name, code=declaration.code or statement.code,
                line=declaration.line, column=declaration.column,
                type_name=self._type_text(declaration.type_name),
                storage_location=declaration.storage_location,
            )
            self.graph.add_node(node)
            declarations.append(node)
        if statement.initial_value is not None and declarations:
            value = self._translate_expression(statement.initial_value)
            self.graph.add_edge(declarations[0], value, EdgeLabel.AST)
            self.graph.add_edge(declarations[0], value, EdgeLabel.INITIALIZER)
        if len(declarations) == 1:
            return declarations[0]
        wrapper = cpg.CompoundStatement(code=statement.code, line=statement.line, column=statement.column)
        self.graph.add_node(wrapper)
        for node in declarations:
            self.graph.add_edge(wrapper, node, EdgeLabel.AST)
        return wrapper

    # -- expressions --------------------------------------------------------------------------
    def _translate_expression(self, expression: ast.Expression) -> cpg.CPGNode:
        if isinstance(expression, ast.FunctionCall):
            return self._translate_call(expression)
        if isinstance(expression, ast.Assignment):
            node = cpg.BinaryOperator(operator_code=expression.operator, code=expression.code,
                                      line=expression.line, column=expression.column)
            self.graph.add_node(node)
            if expression.left is not None:
                left = self._translate_expression(expression.left)
                self.graph.add_edge(node, left, EdgeLabel.AST)
                self.graph.add_edge(node, left, EdgeLabel.LHS)
            if expression.right is not None:
                right = self._translate_expression(expression.right)
                self.graph.add_edge(node, right, EdgeLabel.AST)
                self.graph.add_edge(node, right, EdgeLabel.RHS)
            return node
        if isinstance(expression, ast.BinaryOperation):
            node = cpg.BinaryOperator(operator_code=expression.operator, code=expression.code,
                                      line=expression.line, column=expression.column)
            self.graph.add_node(node)
            if expression.left is not None:
                left = self._translate_expression(expression.left)
                self.graph.add_edge(node, left, EdgeLabel.AST)
                self.graph.add_edge(node, left, EdgeLabel.LHS)
            if expression.right is not None:
                right = self._translate_expression(expression.right)
                self.graph.add_edge(node, right, EdgeLabel.AST)
                self.graph.add_edge(node, right, EdgeLabel.RHS)
            return node
        if isinstance(expression, ast.UnaryOperation):
            node = cpg.UnaryOperator(operator_code=expression.operator, prefix=expression.prefix,
                                     code=expression.code, line=expression.line, column=expression.column)
            self.graph.add_node(node)
            if expression.operand is not None:
                operand = self._translate_expression(expression.operand)
                self.graph.add_edge(node, operand, EdgeLabel.AST)
                self.graph.add_edge(node, operand, EdgeLabel.INPUT)
            return node
        if isinstance(expression, ast.Conditional):
            node = cpg.ConditionalExpression(code=expression.code,
                                             line=expression.line, column=expression.column)
            self.graph.add_node(node)
            for child, label in (
                (expression.condition, EdgeLabel.CONDITION),
                (expression.true_expression, EdgeLabel.LHS),
                (expression.false_expression, EdgeLabel.RHS),
            ):
                if child is not None:
                    child_node = self._translate_expression(child)
                    self.graph.add_edge(node, child_node, EdgeLabel.AST)
                    self.graph.add_edge(node, child_node, label)
            return node
        if isinstance(expression, ast.MemberAccess):
            node = cpg.MemberExpression(member=expression.member, name=expression.member,
                                        code=expression.code,
                                        line=expression.line, column=expression.column)
            self.graph.add_node(node)
            if expression.base is not None:
                base = self._translate_expression(expression.base)
                self.graph.add_edge(node, base, EdgeLabel.AST)
                self.graph.add_edge(node, base, EdgeLabel.BASE)
            return node
        if isinstance(expression, ast.IndexAccess):
            node = cpg.SubscriptExpression(code=expression.code,
                                           line=expression.line, column=expression.column)
            self.graph.add_node(node)
            if expression.base is not None:
                base = self._translate_expression(expression.base)
                self.graph.add_edge(node, base, EdgeLabel.AST)
                self.graph.add_edge(node, base, EdgeLabel.BASE)
                self.graph.add_edge(node, base, EdgeLabel.ARRAY_EXPRESSION)
            if expression.index is not None:
                index = self._translate_expression(expression.index)
                self.graph.add_edge(node, index, EdgeLabel.AST)
                self.graph.add_edge(node, index, EdgeLabel.SUBSCRIPT_EXPRESSION)
            return node
        if isinstance(expression, ast.Identifier):
            node = cpg.DeclaredReferenceExpression(name=expression.name, code=expression.code,
                                                   line=expression.line, column=expression.column)
            self.graph.add_node(node)
            return node
        if isinstance(expression, ast.NumberLiteral):
            node = cpg.Literal(value=expression.numeric_value(), code=expression.code,
                               line=expression.line, column=expression.column)
            self.graph.add_node(node)
            return node
        if isinstance(expression, ast.StringLiteral):
            node = cpg.Literal(value=expression.value, code=expression.code,
                               line=expression.line, column=expression.column)
            node.properties["literal_kind"] = "string"
            self.graph.add_node(node)
            return node
        if isinstance(expression, ast.BoolLiteral):
            node = cpg.Literal(value=expression.value, code=expression.code,
                               line=expression.line, column=expression.column)
            self.graph.add_node(node)
            return node
        if isinstance(expression, ast.NewExpression):
            node = cpg.NewExpression(code=expression.code, line=expression.line, column=expression.column,
                                     name=expression.type_name.name if expression.type_name else "")
            self.graph.add_node(node)
            return node
        if isinstance(expression, ast.TupleExpression):
            node = cpg.TupleExpression(code=expression.code, line=expression.line, column=expression.column)
            self.graph.add_node(node)
            for component in expression.components:
                if component is not None:
                    child = self._translate_expression(component)
                    self.graph.add_edge(node, child, EdgeLabel.AST)
            return node
        if isinstance(expression, ast.ElementaryTypeNameExpression):
            type_name = expression.type_name.name if expression.type_name else ""
            node = cpg.CastExpression(name=type_name, code=expression.code or type_name,
                                      line=expression.line, column=expression.column,
                                      type_name=type_name)
            self.graph.add_node(node)
            return node
        node = cpg.Literal(code=expression.code, line=expression.line, column=expression.column)
        self.graph.add_node(node)
        return node

    def _translate_call(self, call: ast.FunctionCall) -> cpg.CPGNode:
        callee_name = self._callee_name(call.callee)
        # revert(...) used as an expression and require/assert produce rollback semantics
        if callee_name == "revert":
            rollback = cpg.Rollback(code=call.code, name="revert", line=call.line, column=call.column)
            self.graph.add_node(rollback)
            for argument in call.arguments:
                node = self._translate_expression(argument)
                self.graph.add_edge(rollback, node, EdgeLabel.AST)
                self.graph.add_edge(rollback, node, EdgeLabel.ARGUMENTS)
            return rollback

        node = cpg.CallExpression(name=callee_name, code=call.code, line=call.line, column=call.column)
        if callee_name in {"require", "assert"}:
            node.properties["reverting"] = True
        self.graph.add_node(node)
        if call.callee is not None and not isinstance(call.callee, ast.Identifier):
            callee = self._translate_expression(call.callee)
            self.graph.add_edge(node, callee, EdgeLabel.AST)
            self.graph.add_edge(node, callee, EdgeLabel.CALLEE)
            bases = self.graph.successors(callee, EdgeLabel.BASE)
            for base in bases:
                self.graph.add_edge(node, base, EdgeLabel.BASE)
        for argument in call.arguments:
            child = self._translate_expression(argument)
            self.graph.add_edge(node, child, EdgeLabel.AST)
            self.graph.add_edge(node, child, EdgeLabel.ARGUMENTS)
        if call.call_options:
            specified = cpg.SpecifiedExpression(code=call.code, line=call.line, column=call.column)
            self.graph.add_node(specified)
            self.graph.add_edge(node, specified, EdgeLabel.AST)
            self.graph.add_edge(node, specified, EdgeLabel.SPECIFIERS)
            for key, value in call.call_options.items():
                pair = cpg.KeyValueExpression(key=key, name=key, code=f"{key}: {value.code}",
                                              line=value.line, column=value.column)
                self.graph.add_node(pair)
                self.graph.add_edge(specified, pair, EdgeLabel.AST)
                key_node = cpg.Literal(value=key, code=key, name=key)
                self.graph.add_node(key_node)
                self.graph.add_edge(pair, key_node, EdgeLabel.KEY)
                value_node = self._translate_expression(value)
                self.graph.add_edge(pair, value_node, EdgeLabel.AST)
                self.graph.add_edge(pair, value_node, EdgeLabel.VALUE)
        # reverting builtins get an attached Rollback node; the EOG pass wires
        # the failing branch to it (Section 4.2.1)
        if node.properties.get("reverting"):
            rollback = cpg.Rollback(code=call.code, name=callee_name, line=call.line, column=call.column)
            self.graph.add_node(rollback)
            self.graph.add_edge(node, rollback, EdgeLabel.AST, role="rollback")
        return node

    @staticmethod
    def _callee_name(callee: Optional[ast.Expression]) -> str:
        if callee is None:
            return ""
        if isinstance(callee, ast.Identifier):
            return callee.name
        if isinstance(callee, ast.MemberAccess):
            return callee.member
        if isinstance(callee, ast.FunctionCall):
            return SolidityFrontend._callee_name(callee.callee)
        if isinstance(callee, ast.ElementaryTypeNameExpression) and callee.type_name is not None:
            return callee.type_name.name
        return ""

    @staticmethod
    def _type_text(type_name: Optional[ast.TypeName]) -> str:
        if type_name is None:
            return "uint"  # the paper's default for missing types (Section 5.2)
        if isinstance(type_name, ast.MappingTypeName):
            key = SolidityFrontend._type_text(type_name.key_type)
            value = SolidityFrontend._type_text(type_name.value_type)
            return f"mapping({key} => {value})"
        if isinstance(type_name, ast.ArrayTypeName):
            return SolidityFrontend._type_text(type_name.base_type) + "[]"
        return type_name.name or "uint"

    # -- modifier discovery --------------------------------------------------------------------
    _known_modifiers: dict[str, ast.ModifierDefinition] = {}

    def collect_modifiers(self, unit: ast.SourceUnit) -> None:
        """Pre-scan the AST for modifier definitions used during expansion."""
        modifiers: dict[str, ast.ModifierDefinition] = {}
        for node in unit.walk():
            if isinstance(node, ast.ModifierDefinition) and node.name:
                modifiers[node.name] = node
        self._known_modifiers = modifiers
