"""CPG node classes.

Node labels follow the naming of the Fraunhofer AISEC CPG library so that
the vulnerability queries of the paper's Appendix B translate directly:
``FunctionDeclaration``, ``ConstructorDeclaration``, ``FieldDeclaration``,
``ParamVariableDeclaration``, ``CallExpression``, ``MemberExpression``,
``DeclaredReferenceExpression``, ``BinaryOperator``, ``Rollback``, and so
on.  A node carries every label of its class hierarchy which is how Cypher
``'Label' in labels(n)`` checks are reproduced.
"""

from __future__ import annotations

import itertools
from typing import Optional

_node_counter = itertools.count(1)


class CPGNode:
    """Base class of every CPG node.

    Attributes mirror the properties used by the paper's queries:

    * ``code`` — the raw source excerpt of the node,
    * ``localName`` (exposed as :attr:`local_name`) — the unqualified name,
    * ``line``/``column`` — the source location,
    * ``is_inferred`` — whether the node was inferred to complete a snippet.
    """

    label = "Node"

    def __init__(self, code: str = "", name: str = "", line: int = 0, column: int = 0):
        self.id = next(_node_counter)
        self.code = code
        self.name = name
        self.line = line
        self.column = column
        self.is_inferred = False
        self.properties: dict[str, object] = {}

    # -- naming -------------------------------------------------------------
    @property
    def local_name(self) -> str:
        """The unqualified name of the node (``localName`` in the paper)."""
        if not self.name:
            return ""
        return self.name.rsplit(".", 1)[-1]

    # -- labels -------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """Every label in the node's class hierarchy, most specific first."""
        result = []
        for klass in type(self).__mro__:
            label = getattr(klass, "label", None)
            if label and label not in result:
                result.append(label)
            if klass is CPGNode:
                break
        return tuple(result)

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def __repr__(self):
        snippet = (self.code or "")[:40].replace("\n", " ")
        return f"<{type(self).__name__} #{self.id} {self.name!r} {snippet!r}>"


# ---------------------------------------------------------------------------
# Structural / declaration nodes
# ---------------------------------------------------------------------------


class Declaration(CPGNode):
    label = "Declaration"


class TranslationUnit(Declaration):
    """The root node of a translated snippet or contract file."""

    label = "TranslationUnitDeclaration"


class RecordDeclaration(Declaration):
    """A contract, interface, library, or struct (the paper maps contracts to records)."""

    label = "RecordDeclaration"

    def __init__(self, *args, kind: str = "contract", **kwargs):
        super().__init__(*args, **kwargs)
        self.kind = kind
        self.base_names: list[str] = []


class FieldDeclaration(Declaration):
    """A contract state variable (persisted across transactions)."""

    label = "FieldDeclaration"

    def __init__(self, *args, type_name: str = "", visibility: str = "internal", **kwargs):
        super().__init__(*args, **kwargs)
        self.type_name = type_name
        self.visibility = visibility
        self.is_constant = False


class ValueDeclaration(Declaration):
    label = "ValueDeclaration"

    def __init__(self, *args, type_name: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.type_name = type_name


class VariableDeclaration(ValueDeclaration):
    """A local variable declaration."""

    label = "VariableDeclaration"

    def __init__(self, *args, storage_location: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.storage_location = storage_location


class ParamVariableDeclaration(VariableDeclaration):
    """A function or modifier parameter."""

    label = "ParamVariableDeclaration"

    def __init__(self, *args, index: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.index = index


class FunctionDeclaration(Declaration):
    """A function definition (including fallback/receive/default functions)."""

    label = "FunctionDeclaration"

    def __init__(self, *args, visibility: str = "", mutability: str = "", kind: str = "function", **kwargs):
        super().__init__(*args, **kwargs)
        self.visibility = visibility
        self.mutability = mutability
        self.kind = kind

    @property
    def is_internal(self) -> bool:
        return self.visibility in {"internal", "private"}

    @property
    def is_default_function(self) -> bool:
        return self.kind in {"fallback", "receive"} or not self.name


class ConstructorDeclaration(FunctionDeclaration):
    label = "ConstructorDeclaration"


class ModifierDeclaration(FunctionDeclaration):
    """A modifier definition (kept for reference; bodies are expanded inline)."""

    label = "ModifierDeclaration"


class EventDeclaration(Declaration):
    label = "EventDeclaration"


class TypeNode(CPGNode):
    """A type referenced by ``TYPE`` edges, e.g. ``address`` or ``uint256``."""

    label = "Type"

    def __init__(self, *args, is_object_type: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.is_object_type = is_object_type


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(CPGNode):
    label = "Statement"


class CompoundStatement(Statement):
    label = "CompoundStatement"


class IfStatement(Statement):
    label = "IfStatement"


class WhileStatement(Statement):
    label = "WhileStatement"


class DoStatement(Statement):
    label = "DoStatement"


class ForStatement(Statement):
    label = "ForStatement"


class ForEachStatement(Statement):
    label = "ForEachStatement"


class ReturnStatement(Statement):
    label = "ReturnStatement"


class BreakStatement(Statement):
    label = "BreakStatement"


class ContinueStatement(Statement):
    label = "ContinueStatement"


class EmitStatement(Statement):
    """Persisting an event message (a node type added for Solidity, Section 4.2.1)."""

    label = "EmitStatement"


class Rollback(Statement):
    """Represents transaction termination with state rollback (Section 4.2.1).

    Created for ``revert``/``throw`` statements and as the failing branch of
    ``require``/``assert`` calls.  ``Rollback`` nodes never have outgoing
    EOG edges.
    """

    label = "Rollback"


class UnknownStatement(Statement):
    """A statement the frontend kept opaque (e.g. inline assembly)."""

    label = "UnknownStatement"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(CPGNode):
    label = "Expression"

    def __init__(self, *args, type_name: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.type_name = type_name


class Literal(Expression):
    label = "Literal"

    def __init__(self, *args, value: object = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.value = value


class DeclaredReferenceExpression(Expression):
    """A reference to a declared variable, parameter, or field."""

    label = "DeclaredReferenceExpression"


class MemberExpression(DeclaredReferenceExpression):
    """``base.member`` accesses such as ``msg.sender`` or ``token.owner``."""

    label = "MemberExpression"

    def __init__(self, *args, member: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.member = member


class CallExpression(Expression):
    """A call; ``localName`` is the called function or member name."""

    label = "CallExpression"


class MemberCallExpression(CallExpression):
    label = "MemberCallExpression"


class NewExpression(Expression):
    label = "NewExpression"


class CastExpression(Expression):
    label = "CastExpression"


class BinaryOperator(Expression):
    label = "BinaryOperator"

    def __init__(self, *args, operator_code: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.operator_code = operator_code


class UnaryOperator(Expression):
    label = "UnaryOperator"

    def __init__(self, *args, operator_code: str = "", prefix: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.operator_code = operator_code
        self.prefix = prefix


class ConditionalExpression(Expression):
    label = "ConditionalExpression"


class SubscriptExpression(Expression):
    """``base[index]`` — called ArraySubscriptionExpression in the CPG library."""

    label = "SubscriptExpression"


class TupleExpression(Expression):
    label = "TupleExpression"


class KeyValueExpression(Expression):
    """A ``key: value`` entry inside a specified call, e.g. ``value: 1 ether``."""

    label = "KeyValueExpression"

    def __init__(self, *args, key: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.key = key


class SpecifiedExpression(Expression):
    """The ``{value: .., gas: ..}`` specifier attached to an external call (Section 4.2.1)."""

    label = "SpecifiedExpression"


def is_reverting_builtin(name: Optional[str]) -> bool:
    """Return ``True`` for built-in functions that can roll back the transaction."""
    return name in {"require", "assert", "revert"}
