"""The property-graph container holding CPG nodes and labelled edges.

This module replaces the Neo4j persistence layer of the paper.  The graph
is an in-memory structure optimised for the traversals the vulnerability
queries need: label-indexed node lookup, per-label adjacency lists, and
bounded multi-hop reachability (used by the phase-2 validation that limits
data-flow path lengths, Section 6.3).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.cpg.nodes import CPGNode


def _edge_lists() -> "defaultdict[str, list[CPGEdge]]":
    """Adjacency-map factory (module-level so graphs pickle)."""
    return defaultdict(list)


class EdgeLabel:
    """Edge label constants used throughout the CPG and the queries."""

    AST = "AST"
    EOG = "EOG"
    DFG = "DFG"
    REFERS_TO = "REFERS_TO"
    INVOKES = "INVOKES"
    RETURNS = "RETURNS"
    ARGUMENTS = "ARGUMENTS"
    BASE = "BASE"
    CALLEE = "CALLEE"
    LHS = "LHS"
    RHS = "RHS"
    CONDITION = "CONDITION"
    BODY = "BODY"
    PARAMETERS = "PARAMETERS"
    FIELDS = "FIELDS"
    TYPE = "TYPE"
    INITIALIZER = "INITIALIZER"
    KEY = "KEY"
    VALUE = "VALUE"
    SPECIFIERS = "SPECIFIERS"
    SUBSCRIPT_EXPRESSION = "SUBSCRIPT_EXPRESSION"
    ARRAY_EXPRESSION = "ARRAY_EXPRESSION"
    INPUT = "INPUT"
    MODIFIERS = "MODIFIERS"
    RECORD_DECLARATION = "RECORD_DECLARATION"


@dataclass
class CPGEdge:
    """A directed labelled edge between two CPG nodes."""

    source: CPGNode
    target: CPGNode
    label: str
    properties: dict = field(default_factory=dict)

    def __repr__(self):
        return f"<{self.label} {self.source!r} -> {self.target!r}>"


class CPGGraph:
    """An in-memory property graph.

    The graph is picklable (all adjacency maps use module-level factory
    functions), which is what lets a
    :class:`~repro.core.persistence.DiskArtifactStore` persist built CPGs
    and reload them on warm runs without re-parsing or re-translating.
    """

    def __init__(self):
        self._nodes: list[CPGNode] = []
        self._node_ids: set[int] = set()
        self._by_label: dict[str, list[CPGNode]] = defaultdict(list)
        self._outgoing: dict[int, dict[str, list[CPGEdge]]] = defaultdict(_edge_lists)
        self._incoming: dict[int, dict[str, list[CPGEdge]]] = defaultdict(_edge_lists)
        self._edges: list[CPGEdge] = []

    # -- construction --------------------------------------------------------
    def add_node(self, node: CPGNode) -> CPGNode:
        if node.id not in self._node_ids:
            self._node_ids.add(node.id)
            self._nodes.append(node)
            for label in node.labels:
                self._by_label[label].append(node)
        return node

    def add_edge(self, source: CPGNode, target: CPGNode, label: str, **properties) -> CPGEdge:
        self.add_node(source)
        self.add_node(target)
        edge = CPGEdge(source, target, label, dict(properties))
        self._edges.append(edge)
        self._outgoing[source.id][label].append(edge)
        self._incoming[target.id][label].append(edge)
        return edge

    def has_edge(self, source: CPGNode, target: CPGNode, label: str) -> bool:
        return any(edge.target is target for edge in self._outgoing[source.id].get(label, ()))

    # -- node access ----------------------------------------------------------
    @property
    def nodes(self) -> list[CPGNode]:
        return list(self._nodes)

    @property
    def edges(self) -> list[CPGEdge]:
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes_by_label(self, label: str) -> list[CPGNode]:
        return list(self._by_label.get(label, ()))

    def find(
        self,
        label: Optional[str] = None,
        code: Optional[str] = None,
        name: Optional[str] = None,
        local_name: Optional[str] = None,
        where: Optional[Callable[[CPGNode], bool]] = None,
    ) -> list[CPGNode]:
        """Find nodes by label and simple property equality filters."""
        candidates: Iterable[CPGNode]
        candidates = self._by_label.get(label, ()) if label is not None else self._nodes
        result = []
        for node in candidates:
            if code is not None and node.code != code:
                continue
            if name is not None and node.name != name:
                continue
            if local_name is not None and node.local_name != local_name:
                continue
            if where is not None and not where(node):
                continue
            result.append(node)
        return result

    # -- edge traversal --------------------------------------------------------
    def out_edges(self, node: CPGNode, *labels: str) -> list[CPGEdge]:
        edge_map = self._outgoing.get(node.id, {})
        if not labels:
            return [edge for edge_list in edge_map.values() for edge in edge_list]
        return [edge for label in labels for edge in edge_map.get(label, ())]

    def in_edges(self, node: CPGNode, *labels: str) -> list[CPGEdge]:
        edge_map = self._incoming.get(node.id, {})
        if not labels:
            return [edge for edge_list in edge_map.values() for edge in edge_list]
        return [edge for label in labels for edge in edge_map.get(label, ())]

    def successors(self, node: CPGNode, *labels: str) -> list[CPGNode]:
        return [edge.target for edge in self.out_edges(node, *labels)]

    def predecessors(self, node: CPGNode, *labels: str) -> list[CPGNode]:
        return [edge.source for edge in self.in_edges(node, *labels)]

    # -- reachability ------------------------------------------------------------
    def reachable(
        self,
        start: CPGNode,
        *labels: str,
        max_depth: Optional[int] = None,
        include_start: bool = False,
        reverse: bool = False,
    ) -> list[CPGNode]:
        """Nodes reachable from ``start`` over edges with any of ``labels``.

        ``max_depth`` bounds the number of hops; it is the mechanism behind
        the paper's phase-2 "path reduction" (iteratively shortening the
        maximal length of explored data flows).
        """
        seen: set[int] = {start.id}
        order: list[CPGNode] = [start] if include_start else []
        queue: deque[tuple[CPGNode, int]] = deque([(start, 0)])
        step = self.predecessors if reverse else self.successors
        while queue:
            node, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for successor in step(node, *labels):
                if successor.id in seen:
                    continue
                seen.add(successor.id)
                order.append(successor)
                queue.append((successor, depth + 1))
        return order

    def is_reachable(
        self,
        start: CPGNode,
        target: CPGNode,
        *labels: str,
        max_depth: Optional[int] = None,
    ) -> bool:
        """Return ``True`` when ``target`` can be reached from ``start``."""
        if start is target:
            return True
        seen: set[int] = {start.id}
        queue: deque[tuple[CPGNode, int]] = deque([(start, 0)])
        while queue:
            node, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for successor in self.successors(node, *labels):
                if successor is target:
                    return True
                if successor.id in seen:
                    continue
                seen.add(successor.id)
                queue.append((successor, depth + 1))
        return False

    def any_path(
        self,
        start: CPGNode,
        predicate: Callable[[CPGNode], bool],
        *labels: str,
        max_depth: Optional[int] = None,
        include_start: bool = False,
    ) -> Optional[list[CPGNode]]:
        """Return one path from ``start`` to a node satisfying ``predicate``.

        The returned list contains the nodes on the path (excluding ``start``
        unless ``include_start``).  ``None`` when no such node is reachable.
        """
        if include_start and predicate(start):
            return [start]
        parents: dict[int, CPGNode] = {}
        seen: set[int] = {start.id}
        queue: deque[tuple[CPGNode, int]] = deque([(start, 0)])
        while queue:
            node, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for successor in self.successors(node, *labels):
                if successor.id in seen:
                    continue
                seen.add(successor.id)
                parents[successor.id] = node
                if predicate(successor):
                    path = [successor]
                    current = successor
                    while current.id in parents and parents[current.id] is not start:
                        current = parents[current.id]
                        path.append(current)
                    if include_start:
                        path.append(start)
                    path.reverse()
                    return path
                queue.append((successor, depth + 1))
        return None

    def terminal_nodes(self, start: CPGNode, *labels: str, max_depth: Optional[int] = None) -> list[CPGNode]:
        """Reachable nodes that have no outgoing edge with any of ``labels``.

        These are the "last" nodes of the paper's queries: EOG path ends
        that either return normally or hit a Rollback.
        """
        result = []
        for node in self.reachable(start, *labels, max_depth=max_depth, include_start=True):
            if not self.out_edges(node, *labels):
                result.append(node)
        return result

    # -- convenience ---------------------------------------------------------------
    def ast_children(self, node: CPGNode) -> list[CPGNode]:
        return self.successors(node, EdgeLabel.AST)

    def ast_descendants(self, node: CPGNode, include_self: bool = True) -> Iterator[CPGNode]:
        if include_self:
            yield node
        for child in self.ast_children(node):
            yield from self.ast_descendants(child, include_self=True)

    def ast_parent(self, node: CPGNode) -> Optional[CPGNode]:
        parents = self.predecessors(node, EdgeLabel.AST)
        return parents[0] if parents else None

    def enclosing(self, node: CPGNode, label: str) -> Optional[CPGNode]:
        """The nearest AST ancestor carrying ``label`` (e.g. the enclosing function)."""
        current = self.ast_parent(node)
        while current is not None:
            if current.has_label(label):
                return current
            current = self.ast_parent(current)
        return None

    def statistics(self) -> dict[str, int]:
        """Basic size statistics (useful for benchmarks and debugging)."""
        per_label: dict[str, int] = defaultdict(int)
        for edge in self._edges:
            per_label[edge.label] += 1
        stats = {"nodes": len(self._nodes), "edges": len(self._edges)}
        stats.update({f"edges_{label.lower()}": count for label, count in sorted(per_label.items())})
        return stats
