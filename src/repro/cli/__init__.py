"""``repro`` — the unified reproduction command-line interface.

One console entry point over the analysis-session stack::

    repro analyze <corpus> ...  run registered analyzers over a corpus (streaming)
    repro analyzers list        print the analyzer registry
    repro queries list          print the CCC vulnerability-query registry
    repro index build ...       fingerprint + index a contract corpus, save it sharded
    repro index info ...        inspect a saved index (manifest, shard layout)
    repro study run ...         run the Figure 6 study (checkpointable, cached)
    repro study resume ...      resume a killed study from its checkpoint
    repro cache stats ...       inspect a disk artifact cache
    repro cache gc ...          evict old/excess cache entries
    repro serve ...             run the analysis service daemon (HTTP API);
                                --role coordinator fronts a sharded cluster
    repro submit ...            submit a job to a running daemon
    repro jobs list/show ...    inspect a running daemon's job queue
    repro cluster status ...    per-shard health and routing of a coordinator
    repro watch <dir> ...       re-submit edited files as deltas, print only
                                the changed findings
    repro version               print the package version (also --version)

The CLI is deliberately a thin shell: every subcommand is a few calls
into :mod:`repro.api`, :mod:`repro.core`, :mod:`repro.ccd`, and
:mod:`repro.pipeline`, so everything it does is equally scriptable from
Python.  Corpora are the deterministic synthetic substrates of
:mod:`repro.datasets`; the generation parameters are recorded in the
study checkpoint manifest so ``repro study resume`` can rebuild
byte-identical inputs.

See ``docs/cli.md`` for a walkthrough of every subcommand and
``docs/api.md`` for the session API the ``analyze`` command fronts.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.api import REGISTRY, AnalysisSession, SessionConfig, all_analyzers
from repro.ccc.registry import BUILTIN_QUERY_IDS, all_queries
from repro.ccd.detector import CloneDetector
from repro.ccd.index_io import IndexFormatError, read_manifest
from repro.ccd.matcher import SIMILARITY_BACKENDS
from repro.core.executor import BACKENDS
from repro.core.artifacts import content_key
from repro.core.persistence import DATABASE_NAME, CacheConfigurationError, DiskArtifactStore
from repro.datasets.sanctuary import generate_sanctuary
from repro.datasets.snippets import generate_qa_corpus
from repro.pipeline.checkpoint import StudyCheckpoint, StudyCheckpointError
from repro.pipeline.collection import SnippetCollector
from repro.pipeline.experiment import StudyConfiguration, VulnerableCodeReuseStudy
from repro.pipeline.report import render_cache_stats, render_study_report, render_table
from repro.service import (
    AnalysisService,
    ClusterCoordinator,
    CoordinatorConfig,
    JobFailedError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    load_tenant_quotas,
)
from repro.service.delta import make_unified_diff

PROG = "repro"

#: the installed distribution queried by ``repro --version``
DISTRIBUTION_NAME = "vulnerable-code-reuse-repro"


def package_version() -> str:
    """The package version: installed metadata, or the source tree's own.

    Prefers :func:`importlib.metadata.version` (the single source of
    truth once installed); an uninstalled source checkout (e.g. plain
    ``PYTHONPATH=src``) falls back to ``repro.__version__``.
    """
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version(DISTRIBUTION_NAME)
    except PackageNotFoundError:
        import repro

        return repro.__version__


# ---------------------------------------------------------------------------
# corpus construction (shared by `index build` and `study run`)
# ---------------------------------------------------------------------------

def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("synthetic corpus")
    group.add_argument("--seed", type=int, default=3,
                       help="Q&A corpus generator seed (default: 3)")
    group.add_argument("--sanctuary-seed", type=int, default=11,
                       help="contract corpus generator seed (default: 11)")
    group.add_argument("--posts-stackoverflow", type=int, default=60,
                       help="stackoverflow posts to generate (default: 60)")
    group.add_argument("--posts-ethereum", type=int, default=150,
                       help="ethereum.stackexchange posts to generate (default: 150)")
    group.add_argument("--independent-contracts", type=int, default=60,
                       help="clone-free contracts in the corpus (default: 60)")


def _corpus_metadata(args: argparse.Namespace) -> dict:
    return {
        "seed": args.seed,
        "sanctuary_seed": args.sanctuary_seed,
        "posts_stackoverflow": args.posts_stackoverflow,
        "posts_ethereum": args.posts_ethereum,
        "independent_contracts": args.independent_contracts,
    }


def _build_corpora(metadata: dict):
    qa_corpus = generate_qa_corpus(
        seed=metadata["seed"],
        posts_per_site={
            "stackoverflow": metadata["posts_stackoverflow"],
            "ethereum.stackexchange": metadata["posts_ethereum"],
        })
    sanctuary = generate_sanctuary(
        qa_corpus,
        seed=metadata["sanctuary_seed"],
        independent_contracts=metadata["independent_contracts"])
    return qa_corpus, sanctuary.contracts


def _add_detector_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("CCD configuration")
    group.add_argument("--ngram-size", type=int, default=3,
                       help="N-gram size N (default: 3)")
    group.add_argument("--ngram-threshold", type=float, default=0.5,
                       help="candidate pre-filter threshold eta (default: 0.5)")
    group.add_argument("--similarity-threshold", type=float, default=0.9,
                       help="clone decision threshold epsilon (default: 0.9)")
    group.add_argument("--similarity-backend", choices=sorted(SIMILARITY_BACKENDS),
                       default="bounded",
                       help="clone verification backend: bounded (pruned, "
                            "default), myers (same pruning, bit-parallel "
                            "distance kernel), or exact (naive reference); "
                            "all produce identical matches")


def _open_cache(args: argparse.Namespace, **store_kwargs) -> Optional[DiskArtifactStore]:
    if args.cache is None:
        return None
    return DiskArtifactStore(args.cache, **store_kwargs)


# ---------------------------------------------------------------------------
# repro index
# ---------------------------------------------------------------------------

def _cmd_index_build(args: argparse.Namespace) -> int:
    metadata = _corpus_metadata(args)
    _, contracts = _build_corpora(metadata)
    try:
        store = _open_cache(args, ngram_size=args.ngram_size)
    except CacheConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    detector = CloneDetector(
        ngram_size=args.ngram_size,
        ngram_threshold=args.ngram_threshold,
        similarity_threshold=args.similarity_threshold,
        store=store,
        similarity_backend=args.similarity_backend,
    )
    started = time.perf_counter()
    indexed = detector.add_corpus(
        [(contract.address, contract.source) for contract in contracts])
    elapsed = time.perf_counter() - started
    manifest = detector.save_index(args.output, shards=args.shards)
    print(f"indexed {indexed}/{len(contracts)} contracts in {elapsed:.2f}s "
          f"({len(detector.parse_failures)} unparsable)")
    print(f"saved {manifest['documents']} fingerprints in {manifest['shards']} "
          f"shard(s) to {args.output}")
    if store is not None:
        print(render_cache_stats(store.stats))
        store.close()
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    try:
        manifest = read_manifest(args.index)
    except IndexFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    rows = [["documents", manifest["documents"]],
            ["shards", manifest["shards"]],
            ["parse failures", manifest.get("parse_failures", 0)]]
    rows.extend([key, value] for key, value in sorted(manifest["configuration"].items()))
    print(render_table(["Field", "Value"], rows, title=f"Index at {args.index}"))
    return 0


# ---------------------------------------------------------------------------
# repro study
# ---------------------------------------------------------------------------

def _print_progress(stage: str, done: int, total: int) -> None:
    print(f"  [{stage}] {done}/{total}", file=sys.stderr)


def _run_study(configuration: StudyConfiguration, metadata: dict,
               checkpoint: Optional[StudyCheckpoint], quiet: bool) -> int:
    qa_corpus, contracts = _build_corpora(metadata)
    progress = None if quiet else _print_progress
    with VulnerableCodeReuseStudy(configuration) as study:
        result = study.run(qa_corpus, contracts, checkpoint=checkpoint, progress=progress)
        print(render_study_report(result), end="")
        print(render_cache_stats(study.store.stats,
                                 label=f"artifact cache [{configuration.executor_backend}]"))
        if isinstance(study.store, DiskArtifactStore):
            study.store.close()
    return 0


def _cmd_study_run(args: argparse.Namespace) -> int:
    configuration = StudyConfiguration(
        ngram_size=args.ngram_size,
        ngram_threshold=args.ngram_threshold,
        similarity_threshold=args.similarity_threshold,
        similarity_backend=args.similarity_backend,
        executor_backend=args.backend,
        max_workers=args.max_workers,
        checkpoint_chunk_size=args.checkpoint_chunk_size,
        artifact_cache_dir=args.cache,
    )
    checkpoint = None
    metadata = _corpus_metadata(args)
    if args.checkpoint is not None:
        try:
            checkpoint = StudyCheckpoint(args.checkpoint)
        except StudyCheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        recorded = checkpoint.metadata.get("corpus")
        if recorded is not None and recorded != metadata:
            print(f"error: checkpoint at {args.checkpoint} was created for "
                  f"different corpus parameters; resume it with "
                  f"'{PROG} study resume --checkpoint {args.checkpoint}' or "
                  f"choose a fresh directory", file=sys.stderr)
            return 1
        checkpoint.update_metadata(corpus=metadata)
    try:
        return _run_study(configuration, metadata, checkpoint, args.quiet)
    except (StudyCheckpointError, CacheConfigurationError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_study_resume(args: argparse.Namespace) -> int:
    try:
        checkpoint = StudyCheckpoint(args.checkpoint)
    except StudyCheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    metadata = checkpoint.metadata
    if "configuration" not in metadata or "corpus" not in metadata:
        print(f"error: {args.checkpoint} does not contain a resumable study "
              f"(missing configuration/corpus metadata); start one with "
              f"'{PROG} study run --checkpoint {args.checkpoint}'", file=sys.stderr)
        return 1
    if not args.quiet:
        rows = [[row["stage"], row.get("state", "pending"),
                 f"{row.get('chunks', '')}/{row.get('total', '')}"
                 if "chunks" in row else ""]
                for row in checkpoint.summary()]
        print(render_table(["Stage", "State", "Chunks"], rows,
                           title=f"Resuming study at {args.checkpoint}"), file=sys.stderr)
    configuration = StudyConfiguration(**metadata["configuration"])
    try:
        return _run_study(configuration, metadata["corpus"], checkpoint, args.quiet)
    except (StudyCheckpointError, CacheConfigurationError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# repro analyze
# ---------------------------------------------------------------------------

def _analysis_tally(payload, tally: dict) -> None:
    """Fold one per-contract payload into the analyzer's summary counters."""
    tally["items"] += 1
    if payload is None:
        tally["errors"] += 1
        return
    parse_error = getattr(payload, "parse_error", None)
    analysis_error = getattr(payload, "analysis_error", None)
    if parse_error is not None or analysis_error is not None:
        tally["errors"] += 1
    if getattr(payload, "timed_out", False):
        tally["timeouts"] += 1
    if isinstance(payload, list):
        flagged = bool(payload)  # ccd: non-empty clone-match list
    else:
        flagged = bool(getattr(payload, "findings", None)) \
            or bool(getattr(payload, "vulnerable", False))
    if flagged:
        tally["flagged"] += 1


def _render_corpus_envelope(envelope) -> str:
    """A table for one corpus-scope envelope (temporal, correlation, ...)."""
    payload = envelope.payload
    title = f"{envelope.analyzer} (corpus scope)"
    if hasattr(payload, "summary"):
        rows = sorted(payload.summary().items())
        return render_table(["Metric", "Value"], rows, title=title)
    if isinstance(payload, list) and payload and hasattr(payload[0], "as_row"):
        rows = [list(item.as_row().values()) for item in payload]
        headers = [key.replace("_", " ") for key in payload[0].as_row()]
        return render_table(headers, rows, title=title)
    return render_table(["Payload"], [[repr(payload)[:120]]], title=title)


def _cmd_analyze(args: argparse.Namespace) -> int:
    analyses = [name.strip() for name in args.analyses.split(",") if name.strip()]
    if not analyses:
        print("error: --analyses needs at least one analyzer id", file=sys.stderr)
        return 1
    unknown = [name for name in analyses if name not in REGISTRY]
    if unknown:
        print(f"error: unknown analyzer(s) {', '.join(unknown)}; registered: "
              f"{', '.join(REGISTRY.ids())} (see '{PROG} analyzers list')",
              file=sys.stderr)
        return 1
    metadata = _corpus_metadata(args)
    qa_corpus, contracts = _build_corpora(metadata)
    configuration = SessionConfig(
        backend=args.backend,
        max_workers=args.max_workers,
        cache_dir=args.cache,
        ngram_size=args.ngram_size,
        ngram_threshold=args.ngram_threshold,
        similarity_threshold=args.similarity_threshold,
        similarity_backend=args.similarity_backend,
        checker_timeout=args.timeout,
    )
    try:
        session = AnalysisSession(configuration)
    except CacheConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    with session:
        if args.corpus == "contracts":
            corpus = contracts
        else:
            corpus = SnippetCollector(store=session.store).collect(qa_corpus).snippets
        # temporal/correlation categorize the snippet corpus against the
        # deployed contracts; harmless to offer when not requested
        options = {"temporal": {"contracts": contracts},
                   "correlation": {"contracts": contracts}}
        profile_sink: list = []
        if args.profile:
            if "ccd" in analyses:
                options["ccd"] = {"profile_sink": profile_sink}
            else:
                print("note: --profile shows the clone-matcher stages and "
                      "needs 'ccd' among --analyses; no profile will be "
                      "printed", file=sys.stderr)
        started = time.perf_counter()
        tallies: dict[str, dict] = {}
        corpus_scope = []
        try:
            if args.batch:
                envelopes = iter(session.run(corpus, analyses=analyses, options=options))
            else:
                envelopes = session.run_iter(corpus, analyses=analyses, options=options)
            for envelope in envelopes:
                if envelope.contract_id is None:
                    corpus_scope.append(envelope)
                    continue
                tally = tallies.setdefault(envelope.analyzer, {
                    "items": 0, "flagged": 0, "errors": 0, "timeouts": 0})
                _analysis_tally(envelope.payload, tally)
                if args.verbose:
                    print(f"  [{envelope.analyzer}] {envelope.contract_id}: "
                          f"{'-' if envelope.payload is None else 'ok'} "
                          f"({envelope.elapsed_seconds * 1000.0:.1f} ms)", file=sys.stderr)
        except ValueError as error:
            # an analyzer rejected its inputs (e.g. temporal/correlation
            # without a snippet corpus): report it like every other CLI error
            print(f"error: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        mode = "batch" if args.batch else "streaming"
        rows = [[analyzer_id, tally["items"], tally["flagged"],
                 tally["errors"], tally["timeouts"]]
                for analyzer_id, tally in tallies.items()]
        if rows:
            print(render_table(
                ["Analyzer", "Items", "Flagged", "Errors", "Timeouts"], rows,
                title=f"Analyses over {len(corpus)} {args.corpus} ({mode})"))
        for envelope in corpus_scope:
            print(_render_corpus_envelope(envelope))
        for detector in profile_sink:
            stats = detector.match_stats
            print(render_table(
                ["Stage", "Counter", "Value"], stats.stage_rows(),
                title=f"Match pipeline profile "
                      f"[{detector.similarity_backend} backend]"))
        print(f"analyzed {len(corpus)} {args.corpus} with "
              f"{', '.join(analyses)} in {elapsed:.2f}s [{args.backend}]")
        print(render_cache_stats(session.stats,
                                 label=f"artifact cache [{args.backend}]"))
    return 0


# ---------------------------------------------------------------------------
# repro analyzers / repro queries
# ---------------------------------------------------------------------------

def _cmd_analyzers_list(args: argparse.Namespace) -> int:
    rows = [[analyzer.analyzer_id, analyzer.scope,
             analyzer.dasp_category.value if analyzer.dasp_category is not None else "-",
             analyzer.title]
            for analyzer in all_analyzers()]
    print(render_table(["Id", "Scope", "DASP Category", "Title"], rows,
                       title=f"Analyzer registry ({len(rows)} analyzers)"))
    return 0


def _cmd_queries_list(args: argparse.Namespace) -> int:
    if getattr(args, "url", None):
        client = ServiceClient(args.url)
        try:
            listed = client.queries()
        except (ServiceError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        rows = [[entry["query_id"], entry["category"],
                 "custom" if entry["custom"] else "built-in", entry["title"]]
                for entry in listed]
        title = f"CCC query registry at {args.url} ({len(rows)} queries)"
    else:
        rows = [[query.query_id, query.category.value,
                 "built-in" if query.query_id in BUILTIN_QUERY_IDS
                 else "custom", query.title]
                for query in all_queries()]
        title = f"CCC query registry ({len(rows)} queries)"
    print(render_table(["Id", "DASP Category", "Kind", "Title"], rows,
                       title=title))
    return 0


def _cmd_queries_register(args: argparse.Namespace) -> int:
    try:
        spec = json.loads(Path(args.spec).read_text(encoding="utf-8"))
    except OSError as error:
        print(f"error: cannot read {args.spec}: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {args.spec} is not valid JSON: {error}",
              file=sys.stderr)
        return 1
    client = ServiceClient(args.url)
    try:
        response = client.register_query(spec)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    registered = response["query"]
    where = (f" on shards {', '.join(response['shards'])}"
             if "shards" in response else "")
    print(f"registered custom query {registered['query_id']} "
          f"({registered['category']}){where}")
    return 0


# ---------------------------------------------------------------------------
# repro cache
# ---------------------------------------------------------------------------

def _cmd_cache_stats(args: argparse.Namespace) -> int:
    database = Path(args.cache) / DATABASE_NAME
    if not database.is_file():
        print(f"error: no artifact cache at {args.cache} (missing "
              f"{DATABASE_NAME}); create one by passing --cache {args.cache} "
              f"to '{PROG} study run', '{PROG} index build', or "
              f"'{PROG} analyze'", file=sys.stderr)
        return 1
    usage = DiskArtifactStore.read_usage(args.cache)
    if usage.get("corrupt"):
        print(f"error: {database} is not a valid SQLite artifact cache "
              f"(corrupt or not SQLite); delete it to start fresh, or point "
              f"at a directory created with --cache", file=sys.stderr)
        return 1
    rows = [["entries", usage["entries"]],
            ["payload bytes", usage["payload_bytes"]]]
    if "file_bytes" in usage:
        rows.append(["database bytes", usage["file_bytes"]])
    configuration = usage.get("configuration") or {}
    rows.extend([key, value] for key, value in sorted(configuration.items()))
    print(render_table(["Field", "Value"], rows, title=f"Artifact cache at {args.cache}"))
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    max_age_seconds = args.max_age_days * 86400.0 if args.max_age_days is not None else None
    deleted = DiskArtifactStore.collect_garbage(
        args.cache,
        max_entries=args.max_entries,
        max_age_seconds=max_age_seconds,
        vacuum=not args.no_vacuum,
    )
    print(f"evicted {deleted} cache entries from {args.cache}")
    return 0


# ---------------------------------------------------------------------------
# repro serve / submit / jobs
# ---------------------------------------------------------------------------

def _build_daemon(args: argparse.Namespace):
    """Construct the worker service or the cluster coordinator for `serve`."""
    # parse the quota file up front so a malformed one fails before bind
    tenant_quotas = (load_tenant_quotas(args.tenant_quotas)
                     if args.tenant_quotas else None)
    if args.role == "coordinator":
        workers = tuple(url.strip() for url in (args.workers or "").split(",")
                        if url.strip())
        if not workers:
            raise ValueError(
                "--role coordinator needs --workers URL[,URL...] "
                "(the worker daemons, in stable shard order)")
        return ClusterCoordinator(CoordinatorConfig(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            workers=workers,
            shard_timeout=args.shard_timeout,
            connect_timeout=args.connect_timeout,
            log_requests=args.verbose,
            frontend=args.frontend,
            max_pending_jobs=args.max_pending_jobs,
            max_connections=args.max_connections,
            tenant_quotas=tenant_quotas,
            coalesce=not args.no_coalesce,
            batch_aging=args.batch_aging,
        ))
    try:
        scheduler_workers = int(args.workers)
    except ValueError:
        raise ValueError(
            "--workers takes a thread count for worker daemons "
            "(URL lists are for --role coordinator)") from None
    return AnalysisService(ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        backend=args.backend,
        max_workers=args.max_workers,
        workers=scheduler_workers,
        cache=not args.no_cache,
        ngram_size=args.ngram_size,
        ngram_threshold=args.ngram_threshold,
        similarity_threshold=args.similarity_threshold,
        similarity_backend=args.similarity_backend,
        index_shards=args.index_shards,
        log_requests=args.verbose,
        frontend=args.frontend,
        max_pending_jobs=args.max_pending_jobs,
        max_connections=args.max_connections,
        tenant_quotas=tenant_quotas,
        coalesce=not args.no_coalesce,
        batch_aging=args.batch_aging,
    ))


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        service = _build_daemon(args)
    except (CacheConfigurationError, IndexFormatError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: cannot start service: {error}", file=sys.stderr)
        return 1

    def _request_stop(signum, frame):
        service.request_stop()

    try:  # signal handlers only exist in the main thread (tests run elsewhere)
        signal.signal(signal.SIGINT, _request_stop)
        signal.signal(signal.SIGTERM, _request_stop)
    except ValueError:
        pass
    try:
        service.start()  # this is where the socket bind happens
    except OSError as error:
        print(f"error: cannot start service: {error}", file=sys.stderr)
        service.stop()
        return 1
    if args.role == "coordinator":
        print(f"serving on {service.url} (role: coordinator, frontend: "
              f"{args.frontend}, data dir: {args.data_dir}, "
              f"shards: {len(service.shards)}, "
              f"recovered jobs: {service.recovered_jobs})", flush=True)
    else:
        print(f"serving on {service.url} (frontend: {args.frontend}, "
              f"data dir: {args.data_dir}, "
              f"index: {len(service.detector)} documents, "
              f"recovered jobs: {service.recovered_jobs})", flush=True)
    # a machine-readable line so scripts (and the cluster test harness)
    # can scrape the resolved port of a --port 0 daemon
    print(f"PORT={service.port}", flush=True)
    service.serve_forever()
    print("service stopped", flush=True)
    return 0


def _payload_flagged(payload) -> bool:
    """Whether a wire-form (canonicalized) payload flags its contract."""
    if isinstance(payload, list):
        return bool(payload)  # ccd: non-empty clone-match list
    if isinstance(payload, dict):
        return bool(payload.get("findings")) or bool(payload.get("vulnerable"))
    return False


def _summarize_envelopes(results: list, title: str) -> str:
    """The `repro submit --wait` summary table over wire-form envelopes."""
    tallies: dict[str, dict] = {}
    for envelope in results:
        tally = tallies.setdefault(
            envelope["analyzer"], {"items": 0, "flagged": 0, "errors": 0})
        tally["items"] += 1
        payload = envelope["payload"]
        if payload is None or (isinstance(payload, dict)
                               and (payload.get("parse_error")
                                    or payload.get("analysis_error"))):
            tally["errors"] += 1
        if _payload_flagged(payload):
            tally["flagged"] += 1
    rows = [[analyzer_id, tally["items"], tally["flagged"], tally["errors"]]
            for analyzer_id, tally in tallies.items()]
    return render_table(["Analyzer", "Items", "Flagged", "Errors"], rows, title=title)


def _cmd_submit(args: argparse.Namespace) -> int:
    analyses = [name.strip() for name in args.analyses.split(",") if name.strip()]
    if not analyses:
        print("error: --analyses needs at least one analyzer id", file=sys.stderr)
        return 1
    metadata = _corpus_metadata(args)
    qa_corpus, contracts = _build_corpora(metadata)
    if args.corpus == "contracts":
        sources = [(contract.address, contract.source) for contract in contracts]
    else:
        snippets = SnippetCollector().collect(qa_corpus).snippets
        sources = [(snippet.snippet_id, snippet.text) for snippet in snippets]
    client = ServiceClient(args.url)
    try:
        if args.ingest:
            summary = client.ingest(
                [(contract.address, contract.source) for contract in contracts])
            if "routed" in summary:  # a coordinator routed it across shards
                placement = ", ".join(
                    f"{shard}: {count}"
                    for shard, count in sorted(summary["routed"].items()))
                placement = f"routed {{{placement}}}"
            else:
                placement = (f"{summary['shards_rewritten']} shard(s) "
                             f"rewritten")
            print(f"ingested {summary['ingested']} contracts "
                  f"({len(summary['rejected'])} unparsable; index now "
                  f"{summary['documents']} documents, {placement})")
        job = client.submit(sources, analyses=analyses,
                            priority=args.priority, tenant=args.tenant)
        print(f"submitted job {job['id']} ({len(sources)} {args.corpus}, "
              f"analyses: {', '.join(analyses)}, lane: {job['priority']})")
        if not args.wait:
            return 0
        started = time.perf_counter()
        finished = client.wait(job["id"], timeout=args.timeout)
        elapsed = time.perf_counter() - started
        print(_summarize_envelopes(
            finished["results"],
            title=f"Job {job['id']} over {len(sources)} {args.corpus}"))
        print(f"job {job['id']} done in {elapsed:.2f}s")
        return 0
    except JobFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _job_rows(jobs: list) -> list:
    return [[job["id"], job["state"], job.get("priority", "batch"),
             ",".join(job["analyses"]),
             job["corpus_size"],
             f"{job['elapsed_seconds']:.2f}s" if job["elapsed_seconds"] is not None
             else "-",
             job["error"] or ""]
            for job in jobs]


def _cmd_jobs_list(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        page = client.jobs_page(state=args.state, limit=args.limit,
                                offset=args.offset, tenant=args.tenant)
        health = client.healthz()
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    shown = len(page["jobs"])
    print(render_table(
        ["Id", "State", "Lane", "Analyses", "Items", "Elapsed", "Error"],
        _job_rows(page["jobs"]),
        title=f"Jobs at {args.url} ({page['offset']}-"
              f"{page['offset'] + shown} of {page['total']}, "
              f"queue depth {health['queue_depth']})"))
    return 0


def _cmd_jobs_show(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        status = client.job(args.job_id)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    job = status["job"]
    rows = [[key, job[key]] for key in
            ("id", "state", "analyses", "corpus_size", "created_at",
             "started_at", "finished_at", "duration_seconds", "error")]
    print(render_table(["Field", "Value"], rows, title=f"Job {args.job_id}"))
    if job.get("workload") is not None:
        print(f"workload job ({job['workload']['kind']}); inspect it with: "
              f"repro workload show {args.job_id} --url {args.url}")
        return 0
    results = status["results"]
    if results:
        print(_summarize_envelopes(
            results, title=f"Results ({len(results)} envelopes)"))
    return 0


def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        outcome = client.cancel(args.job_id)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"job {outcome['id']}: {outcome['state']}")
    return 0


# ---------------------------------------------------------------------------
# repro workload
# ---------------------------------------------------------------------------

def _format_eta(eta) -> str:
    return f"{eta:.1f}s" if eta is not None else "-"


def _workload_rows(workloads: list) -> list:
    return [[entry["id"], entry["state"],
             (entry.get("workload") or {}).get("kind", "-"),
             f"{entry['progress']['done']}/{entry['progress']['total']}",
             _format_eta(entry["progress"]["eta"]),
             f"{entry['duration_seconds']:.2f}s"
             if entry["duration_seconds"] is not None else "-",
             entry["error"] or ""]
            for entry in workloads]


def _cmd_workload_run(args: argparse.Namespace) -> int:
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except ValueError as error:
            print(f"error: --params is not valid JSON: {error}",
                  file=sys.stderr)
            return 1
    else:
        params = None
    client = ServiceClient(args.url)
    try:
        submitted = client.submit_workload(
            args.kind, params=params, priority=args.priority,
            tenant=args.tenant)
        print(f"submitted workload {submitted['id']} ({args.kind}, "
              f"lane: {submitted['priority']})")
        if not args.wait:
            return 0
        started = time.perf_counter()
        final = client.wait_workload(submitted["id"], timeout=args.timeout)
        elapsed = time.perf_counter() - started
        progress = client.workload(submitted["id"])["progress"]
        print(f"workload {submitted['id']} {final['job']['state']} in "
              f"{elapsed:.2f}s ({progress['done']}/{progress['total']} "
              f"chunks)")
        if final["job"]["state"] == "done" and final["results"]:
            report = final["results"][0]
            if args.output is not None:
                Path(args.output).write_text(
                    json.dumps(report, indent=2, sort_keys=True),
                    encoding="utf-8")
                print(f"merged report written to {args.output}")
            else:
                print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    except JobFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_workload_list(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        page = client.workloads_page(state=args.state, limit=args.limit,
                                     offset=args.offset)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    shown = len(page["workloads"])
    print(render_table(
        ["Id", "State", "Kind", "Chunks", "ETA", "Elapsed", "Error"],
        _workload_rows(page["workloads"]),
        title=f"Workloads at {args.url} ({page['offset']}-"
              f"{page['offset'] + shown} of {page['total']})"))
    return 0


def _cmd_workload_show(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        entry = client.workload(args.job_id, chunks=args.chunks)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    descriptor = entry.get("workload") or {}
    progress = entry["progress"]
    rows = [
        ["id", entry["id"]],
        ["state", entry["state"]],
        ["kind", descriptor.get("kind", "-")],
        ["progress", f"{progress['done']}/{progress['total']}"],
        ["eta", _format_eta(progress["eta"])],
        ["created_at", entry["created_at"]],
        ["started_at", entry["started_at"]],
        ["finished_at", entry["finished_at"]],
        ["duration_seconds", entry["duration_seconds"]],
        ["error", entry["error"]],
    ]
    print(render_table(["Field", "Value"], rows,
                       title=f"Workload {args.job_id}"))
    if args.chunks:
        chunk_rows = [[row["chunk"], row["state"], row["spec"]]
                      for row in entry["chunks"]]
        print(render_table(["Chunk", "State", "Spec"], chunk_rows,
                           title=f"Chunks ({len(chunk_rows)})"))
    return 0


def _cmd_workload_resume(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        entry = client.resume_workload(args.job_id)
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    progress = entry["progress"]
    print(f"workload {entry['id']} requeued "
          f"({progress['done']}/{progress['total']} chunks already done)")
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        status = client.cluster()
    except (ServiceError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    rows = []
    for name in sorted(status["workers"]):
        worker = status["workers"][name]
        rows.append([
            name,
            worker["url"],
            worker["status"],
            worker.get("indexed_documents", "-"),
            worker["routed_documents"],
            worker.get("queue_depth", "-"),
        ])
    print(render_table(
        ["Shard", "Url", "Status", "Indexed", "Routed", "Queue"],
        rows,
        title=f"Cluster at {args.url} ({status['status']}, "
              f"{status['documents']} documents, "
              f"ring replicas: {status['ring']['replicas']})"))
    if status["degraded"]:
        print(f"degraded shards: {', '.join(status['degraded'])}")
    return 0


def _render_changed_envelope(envelope: dict) -> str:
    """One human line for a wire-form envelope of changed findings.

    Returns ``""`` for envelopes with nothing to report (no changed
    matches/findings) so ``repro watch`` prints only what the edit
    actually touched.
    """
    contract = envelope["contract_id"]
    analyzer = envelope["analyzer"]
    payload = envelope["payload"]
    if payload is None:
        return f"{contract}: {analyzer}: unanalyzable"
    if isinstance(payload, list):  # ccd: changed clone matches
        # a freshly re-ingested file always matches itself — not news
        payload = [match for match in payload
                   if match["document_id"] != contract]
        if not payload:
            return ""
        matches = ", ".join(
            f"{match['document_id']} ({match['similarity']:.2f})"
            for match in payload)
        return f"{contract}: {analyzer}: {len(payload)} changed match(es): {matches}"
    if isinstance(payload, dict):
        if payload.get("parse_error"):
            return f"{contract}: {analyzer}: parse error"
        findings = payload.get("findings") or []
        if not findings:
            return ""
        rendered = ", ".join(
            f"{finding['query_id']} @ line {finding['line']}"
            for finding in findings)
        return (f"{contract}: {analyzer}: "
                f"{len(findings)} changed finding(s): {rendered}")
    return ""


class _WatchSession:
    """The state machine behind ``repro watch``.

    Keeps the last-submitted source of every watched file; each
    :meth:`poll` rescans the directory, ships edits to the daemon as
    unified-diff deltas (new files as full sources, deleted files as
    removals), and re-runs the requested analyses with ``changed_only``
    bases so only findings touching the edited functions are printed.
    Factored out of the command handler so tests can drive cycles
    directly, without the sleep loop.
    """

    #: analyzers that understand the ``changed_only`` option
    DELTA_ANALYSES = ("ccd", "ccc")

    def __init__(self, client: ServiceClient, directory: Path,
                 analyses: Sequence[str], pattern: str = "*.sol",
                 timeout: float = 120.0, out=print) -> None:
        self.client = client
        self.directory = directory
        self.analyses = list(analyses)
        self.pattern = pattern
        self.timeout = timeout
        self.out = out
        #: document id (path relative to ``directory``) -> last source
        self.baseline: dict[str, str] = {}

    def scan(self) -> dict[str, str]:
        """Current watched files as ``{relative posix path: source}``."""
        files: dict[str, str] = {}
        for path in sorted(self.directory.rglob(self.pattern)):
            if not path.is_file():
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue  # mid-write or binary junk; pick it up next cycle
            files[path.relative_to(self.directory).as_posix()] = text
        return files

    def start(self) -> int:
        """Initial cycle: ingest every watched file, set the baseline."""
        files = self.scan()
        if files:
            summary = self.client.ingest(sorted(files.items()))
            self.out(f"watching {len(files)} file(s) under {self.directory} "
                     f"({summary['ingested']} ingested, "
                     f"{len(summary['rejected'])} unparsable, "
                     f"{summary.get('unchanged', 0)} already current)")
        else:
            self.out(f"watching {self.directory} "
                     f"(no files match {self.pattern!r} yet)")
        self.baseline = files
        return len(files)

    def poll(self) -> int:
        """One change-detection cycle; returns the number of edited files."""
        files = self.scan()
        changed = {doc_id: text for doc_id, text in files.items()
                   if self.baseline.get(doc_id) != text}
        removed = sorted(set(self.baseline) - set(files))
        if removed:
            self.client.ingest(remove=removed)
            for doc_id in removed:
                self.out(f"{doc_id}: removed from index")
        if not changed:
            self.baseline = files
            return 0
        documents: list = []
        bases: dict[str, str] = {}
        for doc_id in sorted(changed):
            base = self.baseline.get(doc_id)
            if base is None:
                documents.append([doc_id, changed[doc_id]])
            else:
                # ship the edit as a unified diff against the daemon's
                # retained copy, guarded by the base content key
                documents.append({
                    "id": doc_id,
                    "diff": make_unified_diff(base, changed[doc_id]),
                    "base_version": content_key(base),
                })
                bases[doc_id] = base
        summary = self.client.ingest(documents)
        options = {analysis: {"changed_only": bases}
                   for analysis in self.analyses
                   if analysis in self.DELTA_ANALYSES and bases}
        job = self.client.submit(sorted(changed.items()),
                                 analyses=self.analyses,
                                 options=options or None,
                                 priority="interactive")
        finished = self.client.wait(job["id"], timeout=self.timeout)
        quiet = 0
        for envelope in finished["results"]:
            line = _render_changed_envelope(envelope)
            if line:
                self.out(line)
            else:
                quiet += 1
        self.out(f"{len(changed)} file(s) re-analyzed, "
                 f"{len(summary['rejected'])} unparsable, "
                 f"{quiet} envelope(s) unchanged")
        self.baseline = files
        return len(changed)


def _cmd_watch(args: argparse.Namespace) -> int:
    analyses = [name.strip() for name in args.analyses.split(",") if name.strip()]
    if not analyses:
        print("error: --analyses needs at least one analyzer id", file=sys.stderr)
        return 1
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 1
    session = _WatchSession(ServiceClient(args.url), directory, analyses,
                            pattern=args.pattern, timeout=args.timeout)
    try:
        session.start()
        if args.once:
            session.poll()
            return 0
        while True:
            time.sleep(args.interval)
            session.poll()
    except KeyboardInterrupt:
        print("watch stopped", flush=True)
        return 0
    except JobFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_version(args: argparse.Namespace) -> int:
    print(f"{PROG} {package_version()}")
    return 0


# ---------------------------------------------------------------------------
# parser wiring
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro`` argument parser (exposed for the docs/tests)."""
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Reproduction toolchain: run analyses through the unified "
                    "session API, index corpora, run resumable studies, "
                    "manage artifact caches, serve analyses as a daemon.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    commands = parser.add_subparsers(dest="command", required=True)

    # -- analyze ------------------------------------------------------------
    analyze = commands.add_parser(
        "analyze",
        help="run registered analyzers over a corpus via the session API")
    analyze.add_argument("corpus", choices=("contracts", "snippets"),
                         help="which synthetic corpus to analyze: deployed "
                              "contracts or collected Q&A snippets")
    analyze.add_argument("--analyses", default="ccd,ccc",
                         help="comma-separated analyzer ids (default: ccd,ccc; "
                              "see 'repro analyzers list')")
    analyze.add_argument("--batch", action="store_true",
                         help="materialize all results at once via session.run "
                              "(default: stream via session.run_iter)")
    analyze.add_argument("--backend", choices=BACKENDS, default="serial",
                         help="executor backend (default: serial)")
    analyze.add_argument("--max-workers", type=int, default=None,
                         help="worker count for thread/process backends")
    analyze.add_argument("--cache", default=None,
                         help="disk artifact cache directory (warm reruns)")
    analyze.add_argument("--timeout", type=float, default=None,
                         help="CCC per-unit timeout in seconds (default: none)")
    analyze.add_argument("--verbose", action="store_true",
                         help="print one line per analyzed item to stderr")
    analyze.add_argument("--profile", action="store_true",
                         help="print the per-stage clone-matcher profile "
                              "(candidate generation vs verification: "
                              "counts, pruning, wall time)")
    _add_detector_arguments(analyze)
    _add_corpus_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    # -- analyzers / queries ------------------------------------------------
    analyzers = commands.add_parser(
        "analyzers", help="inspect the analyzer registry")
    analyzers_commands = analyzers.add_subparsers(dest="subcommand", required=True)
    analyzers_list = analyzers_commands.add_parser(
        "list", help="print every registered analyzer (id, scope, title)")
    analyzers_list.set_defaults(handler=_cmd_analyzers_list)

    queries = commands.add_parser(
        "queries", help="inspect the CCC vulnerability-query registry")
    queries_commands = queries.add_subparsers(dest="subcommand", required=True)
    queries_list = queries_commands.add_parser(
        "list", help="print every CCC query (id, DASP category, title)")
    queries_list.add_argument("--url", default=None,
                              help="base URL of a daemon; lists its registry "
                                   "(built-in plus registered custom queries) "
                                   "instead of the local one")
    queries_list.set_defaults(handler=_cmd_queries_list)
    queries_register = queries_commands.add_parser(
        "register", help="register a custom DASP-style predicate query with "
                         "a running daemon")
    queries_register.add_argument("--url", required=True,
                                  help="base URL of the daemon")
    queries_register.add_argument("--spec", required=True,
                                  help="path to a JSON query spec file")
    queries_register.set_defaults(handler=_cmd_queries_register)

    # -- index --------------------------------------------------------------
    index = commands.add_parser(
        "index", help="build or inspect a saved CCD corpus index")
    index_commands = index.add_subparsers(dest="subcommand", required=True)
    build = index_commands.add_parser(
        "build", help="fingerprint a contract corpus and save it sharded")
    build.add_argument("--output", required=True, help="index output directory")
    build.add_argument("--shards", type=int, default=4,
                       help="number of hash-prefix shards (default: 4)")
    build.add_argument("--cache", default=None,
                       help="disk artifact cache directory (warm restarts)")
    _add_detector_arguments(build)
    _add_corpus_arguments(build)
    build.set_defaults(handler=_cmd_index_build)
    info = index_commands.add_parser("info", help="print a saved index's manifest")
    info.add_argument("index", help="index directory")
    info.set_defaults(handler=_cmd_index_info)

    # -- study --------------------------------------------------------------
    study = commands.add_parser(
        "study", help="run or resume the vulnerable-code-reuse study")
    study_commands = study.add_subparsers(dest="subcommand", required=True)
    run = study_commands.add_parser(
        "run", help="run the full Figure 6 study (optionally checkpointed)")
    run.add_argument("--checkpoint", default=None,
                     help="checkpoint directory (enables kill-and-resume)")
    run.add_argument("--cache", default=None,
                     help="disk artifact cache directory (warm reruns)")
    run.add_argument("--backend", choices=BACKENDS, default="serial",
                     help="executor backend for the hot loops (default: serial)")
    run.add_argument("--max-workers", type=int, default=None,
                     help="worker count for thread/process backends")
    run.add_argument("--checkpoint-chunk-size", type=int, default=32,
                     help="snippets/candidates per durable chunk (default: 32)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-chunk progress output")
    _add_detector_arguments(run)
    _add_corpus_arguments(run)
    run.set_defaults(handler=_cmd_study_run)
    resume = study_commands.add_parser(
        "resume", help="resume a killed study from its checkpoint directory")
    resume.add_argument("--checkpoint", required=True, help="checkpoint directory")
    resume.add_argument("--quiet", action="store_true",
                        help="suppress progress and stage-state output")
    resume.set_defaults(handler=_cmd_study_resume)

    # -- cache --------------------------------------------------------------
    cache = commands.add_parser("cache", help="inspect or garbage-collect artifact caches")
    cache_commands = cache.add_subparsers(dest="subcommand", required=True)
    stats = cache_commands.add_parser("stats", help="print disk cache statistics")
    stats.add_argument("cache", help="cache directory")
    stats.set_defaults(handler=_cmd_cache_stats)
    gc = cache_commands.add_parser("gc", help="evict old or excess cache entries")
    gc.add_argument("cache", help="cache directory")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="keep at most this many most-recently-used entries")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="evict entries not used within this many days")
    gc.add_argument("--no-vacuum", action="store_true",
                    help="skip reclaiming file space after eviction")
    gc.set_defaults(handler=_cmd_cache_gc)

    # -- serve ----------------------------------------------------------------
    serve = commands.add_parser(
        "serve", help="run the analysis service daemon (resident index + "
                      "persistent job queue + HTTP API)")
    serve.add_argument("--data-dir", required=True,
                       help="service state directory (job store, persisted "
                            "index, artifact cache)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8741,
                       help="TCP port; 0 picks a free port (default: 8741)")
    serve.add_argument("--backend", choices=BACKENDS, default="thread",
                       help="executor backend of the resident session "
                            "(default: thread)")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="worker count for thread/process backends")
    serve.add_argument("--workers", default="1",
                       help="worker role: scheduler worker threads (1 keeps "
                            "job execution strictly FIFO; default: 1). "
                            "coordinator role: comma-separated worker daemon "
                            "URLs, in stable shard order")
    serve.add_argument("--role", choices=("worker", "coordinator"),
                       default="worker",
                       help="worker (default): one resident daemon over its "
                            "own corpus slice; coordinator: scatter-gather "
                            "front fanning jobs out across --workers URLs")
    serve.add_argument("--shard-timeout", type=float, default=300.0,
                       help="coordinator role: seconds a fan-out waits for "
                            "its slowest shard before declaring the missing "
                            "shards degraded (default: 300)")
    serve.add_argument("--connect-timeout", type=float, default=10.0,
                       help="coordinator role: seconds a refused worker "
                            "connection is retried with backoff before the "
                            "shard counts as unreachable (default: 10)")
    serve.add_argument("--frontend", choices=("threaded", "asyncio"),
                       default="threaded",
                       help="HTTP front end: threaded (default) uses the "
                            "blocking http.server stack; asyncio serves the "
                            "same /v1/* API from an event loop with "
                            "admission control (bounded queues, tenant "
                            "quotas, priority lanes, request coalescing)")
    serve.add_argument("--tenant-quotas", default=None, metavar="PATH",
                       help="asyncio front end: TOML/JSON file of per-tenant "
                            "rate/burst/max_inflight admission quotas keyed "
                            "by X-Repro-Tenant header")
    serve.add_argument("--max-pending-jobs", type=int, default=256,
                       help="asyncio front end: queued-job bound beyond "
                            "which submissions are shed with 503 "
                            "(default: 256)")
    serve.add_argument("--max-connections", type=int, default=1024,
                       help="asyncio front end: open-connection bound beyond "
                            "which new connections are shed with 503 "
                            "(default: 1024)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="asyncio front end: disable content-hash "
                            "coalescing of concurrent identical submissions")
    serve.add_argument("--batch-aging", type=int, default=4,
                       help="serve at most this many consecutive interactive "
                            "jobs before a waiting batch job runs "
                            "(default: 4)")
    serve.add_argument("--index-shards", type=int, default=4,
                       help="hash-prefix shards of the persisted index "
                            "(default: 4)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the disk artifact cache under the data dir")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request to stderr")
    _add_detector_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    # -- submit ---------------------------------------------------------------
    submit = commands.add_parser(
        "submit", help="submit an analysis job to a running daemon")
    submit.add_argument("corpus", choices=("contracts", "snippets"),
                        help="which synthetic corpus to submit: deployed "
                             "contracts or collected Q&A snippets")
    submit.add_argument("--url", required=True,
                        help="base URL of the daemon (e.g. http://127.0.0.1:8741)")
    submit.add_argument("--analyses", default="ccd,ccc",
                        help="comma-separated analyzer ids (default: ccd,ccc)")
    submit.add_argument("--ingest", action="store_true",
                        help="POST the synthetic contract corpus to /v1/corpus "
                             "first, so submitted snippets match against it")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job completes and print a summary")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait timeout in seconds (default: 300)")
    submit.add_argument("--priority", choices=("interactive", "batch"),
                        default=None,
                        help="scheduling lane (daemon default: batch)")
    submit.add_argument("--tenant", default=None,
                        help="tenant label sent as X-Repro-Tenant (quota "
                             "accounting on the asyncio front end)")
    _add_corpus_arguments(submit)
    submit.set_defaults(handler=_cmd_submit)

    # -- jobs -----------------------------------------------------------------
    jobs = commands.add_parser(
        "jobs", help="inspect a running daemon's job queue")
    jobs_commands = jobs.add_subparsers(dest="subcommand", required=True)
    jobs_list = jobs_commands.add_parser("list", help="list recent jobs")
    jobs_list.add_argument("--url", required=True, help="base URL of the daemon")
    jobs_list.add_argument("--state", default=None,
                           choices=("queued", "running", "done", "failed",
                                    "cancelled"),
                           help="only jobs in this state")
    jobs_list.add_argument("--limit", type=int, default=20,
                           help="maximum jobs to list (default: 20)")
    jobs_list.add_argument("--offset", type=int, default=0,
                           help="matching jobs to skip before the page "
                                "(default: 0)")
    jobs_list.add_argument("--tenant", default=None,
                           help="only jobs submitted under this tenant label")
    jobs_list.set_defaults(handler=_cmd_jobs_list)
    jobs_show = jobs_commands.add_parser(
        "show", help="show one job's status and result summary")
    jobs_show.add_argument("job_id", type=int, help="job id")
    jobs_show.add_argument("--url", required=True, help="base URL of the daemon")
    jobs_show.set_defaults(handler=_cmd_jobs_show)
    jobs_cancel = jobs_commands.add_parser(
        "cancel", help="cancel a queued or running job")
    jobs_cancel.add_argument("job_id", type=int, help="job id")
    jobs_cancel.add_argument("--url", required=True,
                             help="base URL of the daemon")
    jobs_cancel.set_defaults(handler=_cmd_jobs_cancel)

    # -- workload -------------------------------------------------------------
    workload = commands.add_parser(
        "workload", help="submit and track durable, resumable evaluation "
                         "workloads on a daemon")
    workload_commands = workload.add_subparsers(dest="subcommand",
                                                required=True)
    workload_run = workload_commands.add_parser(
        "run", help="submit a workload job (suite, baseline, or sweep)")
    workload_run.add_argument("kind",
                              help="workload kind (see GET /v1/workloads "
                                   "for the registry)")
    workload_run.add_argument("--url", required=True,
                              help="base URL of the daemon")
    workload_run.add_argument("--params", default=None,
                              help="JSON object of workload parameters")
    workload_run.add_argument("--priority", default=None,
                              choices=("interactive", "batch"),
                              help="scheduling lane (default: batch)")
    workload_run.add_argument("--tenant", default=None,
                              help="tenant label sent as X-Repro-Tenant")
    workload_run.add_argument("--wait", action="store_true",
                              help="block until the workload finishes and "
                                   "print the merged report")
    workload_run.add_argument("--timeout", type=float, default=600.0,
                              help="seconds to wait with --wait "
                                   "(default: 600)")
    workload_run.add_argument("--output", default=None,
                              help="with --wait, write the merged report "
                                   "JSON here instead of stdout")
    workload_run.set_defaults(handler=_cmd_workload_run)
    workload_list = workload_commands.add_parser(
        "list", help="list workload jobs with chunk progress")
    workload_list.add_argument("--url", required=True,
                               help="base URL of the daemon")
    workload_list.add_argument("--state", default=None,
                               choices=("queued", "running", "done",
                                        "failed", "cancelled"),
                               help="only workloads in this state")
    workload_list.add_argument("--limit", type=int, default=20,
                               help="maximum workloads to list (default: 20)")
    workload_list.add_argument("--offset", type=int, default=0,
                               help="matching workloads to skip before the "
                                    "page (default: 0)")
    workload_list.set_defaults(handler=_cmd_workload_list)
    workload_show = workload_commands.add_parser(
        "show", help="show one workload's progress and chunk table")
    workload_show.add_argument("job_id", type=int, help="workload job id")
    workload_show.add_argument("--url", required=True,
                               help="base URL of the daemon")
    workload_show.add_argument("--chunks", action="store_true",
                               help="also print the per-chunk state table")
    workload_show.set_defaults(handler=_cmd_workload_show)
    workload_resume = workload_commands.add_parser(
        "resume", help="requeue a failed or cancelled workload; completed "
                       "chunks are kept and skipped")
    workload_resume.add_argument("job_id", type=int, help="workload job id")
    workload_resume.add_argument("--url", required=True,
                                 help="base URL of the daemon")
    workload_resume.set_defaults(handler=_cmd_workload_resume)

    # -- cluster --------------------------------------------------------------
    cluster = commands.add_parser(
        "cluster", help="inspect a running cluster coordinator")
    cluster_commands = cluster.add_subparsers(dest="subcommand", required=True)
    cluster_status = cluster_commands.add_parser(
        "status", help="per-shard health, index sizes, and routing")
    cluster_status.add_argument("--url", required=True,
                                help="base URL of the coordinator")
    cluster_status.set_defaults(handler=_cmd_cluster_status)

    # -- watch ----------------------------------------------------------------
    watch = commands.add_parser(
        "watch", help="watch a directory, re-analyze edited files via a "
                      "daemon, print only the changed findings")
    watch.add_argument("directory",
                       help="directory of Solidity sources to watch")
    watch.add_argument("--url", required=True,
                       help="base URL of the daemon (e.g. http://127.0.0.1:8741)")
    watch.add_argument("--analyses", default="ccd,ccc",
                       help="comma-separated analyzer ids (default: ccd,ccc)")
    watch.add_argument("--pattern", default="*.sol",
                       help="glob of files to watch, matched recursively "
                            "(default: *.sol)")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="seconds between directory scans (default: 1)")
    watch.add_argument("--once", action="store_true",
                       help="run the initial ingest plus a single change-"
                            "detection cycle, then exit")
    watch.add_argument("--timeout", type=float, default=120.0,
                       help="per-job wait timeout in seconds (default: 120)")
    watch.set_defaults(handler=_cmd_watch)

    # -- version --------------------------------------------------------------
    version = commands.add_parser("version", help="print the package version")
    version.set_defaults(handler=_cmd_version)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` console script; returns the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


__all__ = ["build_parser", "main"]
