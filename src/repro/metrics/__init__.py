"""Evaluation metrics used by the benchmarks (precision/recall, correlation)."""

from repro.metrics.classification import (
    ConfusionCounts,
    f1_score,
    precision,
    recall,
)
from repro.metrics.correlation import spearman_rho

__all__ = ["ConfusionCounts", "f1_score", "precision", "recall", "spearman_rho"]
