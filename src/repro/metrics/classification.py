"""Confusion counting and derived classification metrics."""

from __future__ import annotations

from dataclasses import dataclass


def precision(true_positives: int, false_positives: int) -> float:
    """TP / (TP + FP); defined as 0.0 when nothing was reported."""
    reported = true_positives + false_positives
    if reported == 0:
        return 0.0
    return true_positives / reported


def recall(true_positives: int, false_negatives: int) -> float:
    """TP / (TP + FN); defined as 0.0 when there is nothing to find."""
    relevant = true_positives + false_negatives
    if relevant == 0:
        return 0.0
    return true_positives / relevant


def f1_score(precision_value: float, recall_value: float) -> float:
    """Harmonic mean of precision and recall."""
    if precision_value + recall_value == 0:
        return 0.0
    return 2 * precision_value * recall_value / (precision_value + recall_value)


@dataclass
class ConfusionCounts:
    """Accumulator for TP/FP/FN/TN counts with derived metrics."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    def add(self, predicted: bool, actual: bool) -> None:
        if predicted and actual:
            self.true_positives += 1
        elif predicted and not actual:
            self.false_positives += 1
        elif not predicted and actual:
            self.false_negatives += 1
        else:
            self.true_negatives += 1

    def merge(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            true_negatives=self.true_negatives + other.true_negatives,
        )

    @property
    def precision(self) -> float:
        return precision(self.true_positives, self.false_positives)

    @property
    def recall(self) -> float:
        return recall(self.true_positives, self.false_negatives)

    @property
    def f1(self) -> float:
        return f1_score(self.precision, self.recall)

    def as_dict(self) -> dict:
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "tn": self.true_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }
