"""Spearman rank correlation used by the popularity analysis (Table 5)."""

from __future__ import annotations

import math
from typing import Sequence


def _ranks(values: Sequence[float]) -> list[float]:
    """Fractional ranks (ties receive the average of their positions)."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tie_end = position
        while tie_end + 1 < len(order) and values[order[tie_end + 1]] == values[order[position]]:
            tie_end += 1
        average_rank = (position + tie_end) / 2 + 1
        for index in range(position, tie_end + 1):
            ranks[order[index]] = average_rank
        position = tie_end + 1
    return ranks


def _pearson(first: Sequence[float], second: Sequence[float]) -> float:
    n = len(first)
    mean_first = sum(first) / n
    mean_second = sum(second) / n
    covariance = sum((a - mean_first) * (b - mean_second) for a, b in zip(first, second))
    variance_first = sum((a - mean_first) ** 2 for a in first)
    variance_second = sum((b - mean_second) ** 2 for b in second)
    denominator = math.sqrt(variance_first * variance_second)
    if denominator == 0:
        return 0.0
    return covariance / denominator


def spearman_rho(first: Sequence[float], second: Sequence[float]) -> tuple[float, float]:
    """Spearman's rank correlation coefficient ρ and an approximate p-value.

    The paper uses Spearman's ρ because views and adoption counts are not
    normally distributed (Section 6.2).  The p-value uses the large-sample
    t-approximation; for the sample sizes of the study (thousands of
    snippets) the approximation is accurate.
    """
    if len(first) != len(second):
        raise ValueError("samples must have the same length")
    n = len(first)
    if n < 3:
        return 0.0, 1.0
    rho = _pearson(_ranks(first), _ranks(second))
    rho = max(-1.0, min(1.0, rho))
    if abs(rho) >= 1.0:
        return rho, 0.0
    t_statistic = rho * math.sqrt((n - 2) / (1 - rho * rho))
    p_value = _two_sided_t_p_value(t_statistic, n - 2)
    return rho, p_value


def _two_sided_t_p_value(t_statistic: float, degrees_of_freedom: int) -> float:
    """Two-sided p-value of a t statistic via the normal approximation.

    For the degrees of freedom involved here (hundreds to thousands) the
    Student t distribution is indistinguishable from the normal.
    """
    z = abs(t_statistic)
    # survival function of the standard normal
    survival = 0.5 * math.erfc(z / math.sqrt(2))
    return min(1.0, 2 * survival)
