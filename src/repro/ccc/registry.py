"""Registry of all vulnerability queries: 17 built-ins plus custom ones.

The built-in tuple :data:`ALL_QUERIES` is immutable (the paper's 17
queries across 10 categories).  User-defined queries — compiled from the
declarative :mod:`repro.ccc.custom` DSL, never from code — are added at
runtime with :func:`register_query` and participate in every lookup
(:func:`query_by_id`, :func:`queries_for_categories`,
:func:`all_queries`), which is what makes them usable in ccc jobs and
workloads the moment they are registered.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ccc.dasp import DaspCategory
from repro.ccc.queries import (
    access_control,
    arithmetic,
    bad_randomness,
    denial_of_service,
    front_running,
    reentrancy,
    short_addresses,
    time_manipulation,
    unchecked_calls,
    unknown_unknowns,
)
from repro.ccc.queries.base import VulnerabilityQuery

#: All registered queries in a stable order (17 queries across 10 categories,
#: matching Section 4.4 of the paper).
ALL_QUERIES: tuple[VulnerabilityQuery, ...] = tuple(
    access_control.QUERIES
    + arithmetic.QUERIES
    + bad_randomness.QUERIES
    + denial_of_service.QUERIES
    + front_running.QUERIES
    + reentrancy.QUERIES
    + short_addresses.QUERIES
    + time_manipulation.QUERIES
    + unchecked_calls.QUERIES
    + unknown_unknowns.QUERIES
)


#: runtime-registered custom queries, in registration order
_CUSTOM_QUERIES: dict[str, VulnerabilityQuery] = {}

#: the ids of the built-in queries (custom ids may never collide)
BUILTIN_QUERY_IDS = frozenset(query.query_id for query in ALL_QUERIES)


def all_queries() -> tuple[VulnerabilityQuery, ...]:
    """Every active query: the built-ins, then customs in registration order."""
    return ALL_QUERIES + tuple(_CUSTOM_QUERIES.values())


def register_query(query: VulnerabilityQuery,
                   replace: bool = False) -> VulnerabilityQuery:
    """Register a custom query under its ``query_id``.

    Built-in ids are permanently reserved; re-registering a custom id
    requires ``replace=True`` (the service uses that to reload its
    persisted queries on startup).
    """
    query_id = query.query_id
    if not query_id:
        raise ValueError("query must define a non-empty query_id")
    if query_id in BUILTIN_QUERY_IDS:
        raise ValueError(f"query id {query_id!r} is a built-in query")
    if query_id in _CUSTOM_QUERIES and not replace:
        raise ValueError(f"query id {query_id!r} is already registered")
    _CUSTOM_QUERIES[query_id] = query
    return query


def unregister_query(query_id: str) -> None:
    """Remove a custom query (:class:`KeyError` when unknown or built-in)."""
    del _CUSTOM_QUERIES[query_id]


def registered_queries() -> tuple[VulnerabilityQuery, ...]:
    """The custom queries only, in registration order."""
    return tuple(_CUSTOM_QUERIES.values())


def query_by_id(query_id: str) -> VulnerabilityQuery:
    """Look up a query by its stable identifier."""
    for query in all_queries():
        if query.query_id == query_id:
            return query
    raise KeyError(f"unknown query id: {query_id!r}")


def queries_for_categories(categories: Optional[Iterable[DaspCategory]]) -> tuple[VulnerabilityQuery, ...]:
    """Queries belonging to the given DASP categories (all when ``None``)."""
    if categories is None:
        return all_queries()
    wanted = set(categories)
    return tuple(query for query in all_queries() if query.category in wanted)
