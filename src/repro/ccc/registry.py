"""Registry of all 17 vulnerability queries."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ccc.dasp import DaspCategory
from repro.ccc.queries import (
    access_control,
    arithmetic,
    bad_randomness,
    denial_of_service,
    front_running,
    reentrancy,
    short_addresses,
    time_manipulation,
    unchecked_calls,
    unknown_unknowns,
)
from repro.ccc.queries.base import VulnerabilityQuery

#: All registered queries in a stable order (17 queries across 10 categories,
#: matching Section 4.4 of the paper).
ALL_QUERIES: tuple[VulnerabilityQuery, ...] = tuple(
    access_control.QUERIES
    + arithmetic.QUERIES
    + bad_randomness.QUERIES
    + denial_of_service.QUERIES
    + front_running.QUERIES
    + reentrancy.QUERIES
    + short_addresses.QUERIES
    + time_manipulation.QUERIES
    + unchecked_calls.QUERIES
    + unknown_unknowns.QUERIES
)


def query_by_id(query_id: str) -> VulnerabilityQuery:
    """Look up a query by its stable identifier."""
    for query in ALL_QUERIES:
        if query.query_id == query_id:
            return query
    raise KeyError(f"unknown query id: {query_id!r}")


def queries_for_categories(categories: Optional[Iterable[DaspCategory]]) -> tuple[VulnerabilityQuery, ...]:
    """Queries belonging to the given DASP categories (all when ``None``)."""
    if categories is None:
        return ALL_QUERIES
    wanted = set(categories)
    return tuple(query for query in ALL_QUERIES if query.category in wanted)
