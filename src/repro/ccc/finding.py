"""Finding data structures reported by CCC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ccc.dasp import DaspCategory


@dataclass(frozen=True)
class Finding:
    """A single vulnerability finding.

    Attributes
    ----------
    query_id:
        Stable identifier of the query that produced the finding
        (e.g. ``"reentrancy-call-before-write"``).
    category:
        The DASP category the query belongs to.
    title:
        Human-readable description of the underlying issue.
    line / column:
        Source location of the reported node.
    code:
        Source excerpt of the reported node.
    function_name / contract_name:
        Enclosing function and contract (empty for inferred wrappers).
    """

    query_id: str
    category: DaspCategory
    title: str
    line: int = 0
    column: int = 0
    code: str = ""
    function_name: str = ""
    contract_name: str = ""

    def location(self) -> str:
        """``contract.function:line`` style location string."""
        scope = ".".join(part for part in (self.contract_name, self.function_name) if part)
        return f"{scope}:{self.line}" if scope else f"line {self.line}"


@dataclass
class QueryStatistics:
    """Execution statistics for one query run (used by benchmarks)."""

    query_id: str
    findings: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
