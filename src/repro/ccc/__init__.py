"""CCC — the Code property graph Contract Checker.

CCC analyses Solidity source code (complete contracts *and* incomplete
snippets) by translating it into a Code Property Graph and evaluating 17
rule-based vulnerability queries that cover the DASP Top-10 categories
(Section 4 of the paper).

Typical usage::

    from repro.ccc import ContractChecker

    checker = ContractChecker()
    result = checker.analyze("function f() { msg.sender.call{value: 1 ether}(\"\"); }")
    for finding in result.findings:
        print(finding.category.value, finding.line, finding.title)
"""

from repro.ccc.checker import AnalysisResult, ContractChecker
from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.registry import (
    ALL_QUERIES,
    all_queries,
    queries_for_categories,
    query_by_id,
    register_query,
    registered_queries,
    unregister_query,
)

__all__ = [
    "ALL_QUERIES",
    "AnalysisResult",
    "ContractChecker",
    "DaspCategory",
    "Finding",
    "all_queries",
    "queries_for_categories",
    "query_by_id",
    "register_query",
    "registered_queries",
    "unregister_query",
]
