"""The ContractChecker: CCC's public analysis API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.registry import ALL_QUERIES, queries_for_categories, query_by_id
from repro.cpg.builder import build_cpg
from repro.cpg.graph import CPGGraph
from repro.query import QueryContext, QueryTimeout
from repro.solidity.errors import SolidityParseError


@dataclass
class AnalysisResult:
    """The outcome of analysing one snippet or contract."""

    findings: list[Finding] = field(default_factory=list)
    timed_out: bool = False
    parse_error: Optional[str] = None
    elapsed_seconds: float = 0.0
    graph_nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.parse_error is None

    def categories(self) -> set[DaspCategory]:
        return {finding.category for finding in self.findings}

    def query_ids(self) -> set[str]:
        return {finding.query_id for finding in self.findings}


class ContractChecker:
    """Analyse Solidity source (snippets or full contracts) for vulnerabilities.

    Parameters
    ----------
    timeout:
        Wall-clock budget in seconds per analysed unit (the paper uses
        1,800 s per contract in the large-scale validation, Section 6.4).
    max_flow_depth:
        Bound on explored data-flow/control-flow path lengths.  ``None``
        (default) is the unbounded phase-1 configuration; a finite value
        reproduces the phase-2 "path reduction" fallback (Section 6.3).
    """

    def __init__(self, timeout: Optional[float] = None, max_flow_depth: Optional[int] = None):
        self.timeout = timeout
        self.max_flow_depth = max_flow_depth

    # -- public API ---------------------------------------------------------------
    def analyze(
        self,
        source: str,
        *,
        snippet: bool = True,
        categories: Optional[Iterable[DaspCategory]] = None,
        query_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
    ) -> AnalysisResult:
        """Analyse ``source`` and return an :class:`AnalysisResult`.

        ``categories`` or ``query_ids`` restrict the executed queries — the
        validation phase of the study reruns only the query that originally
        flagged the snippet (Section 6.3).
        """
        result = AnalysisResult()
        try:
            graph = build_cpg(source, snippet=snippet)
        except SolidityParseError as exc:
            result.parse_error = str(exc)
            return result
        except RecursionError:
            result.parse_error = "recursion limit exceeded while parsing"
            return result
        return self.analyze_graph(
            graph, categories=categories, query_ids=query_ids,
            timeout=timeout, max_flow_depth=max_flow_depth, result=result,
        )

    def analyze_graph(
        self,
        graph: CPGGraph,
        *,
        categories: Optional[Iterable[DaspCategory]] = None,
        query_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
        result: Optional[AnalysisResult] = None,
    ) -> AnalysisResult:
        """Run the selected queries against an already-built CPG."""
        if result is None:
            result = AnalysisResult()
        result.graph_nodes = len(graph)
        ctx = QueryContext(
            graph,
            max_flow_depth=max_flow_depth if max_flow_depth is not None else self.max_flow_depth,
            timeout=timeout if timeout is not None else self.timeout,
        )
        if query_ids is not None:
            queries = [query_by_id(query_id) for query_id in query_ids]
        else:
            queries = list(queries_for_categories(categories))
        seen: set[tuple] = set()
        for query in queries:
            try:
                findings = query.run(ctx)
            except QueryTimeout:
                result.timed_out = True
                break
            except RecursionError:
                result.timed_out = True
                break
            for finding in findings:
                key = (finding.query_id, finding.line, finding.code)
                if key in seen:
                    continue
                seen.add(key)
                result.findings.append(finding)
        result.elapsed_seconds = ctx.elapsed
        return result

    # -- convenience ---------------------------------------------------------------
    def is_vulnerable(self, source: str, **kwargs) -> bool:
        """``True`` when at least one query reports a finding for ``source``."""
        return bool(self.analyze(source, **kwargs).findings)

    @staticmethod
    def available_queries() -> list[str]:
        return [query.query_id for query in ALL_QUERIES]
