"""The ContractChecker: CCC's public analysis API.

The checker optionally plugs into the shared analysis core
(:mod:`repro.core`): with an :class:`~repro.core.artifacts.ArtifactStore`
attached, the CPG of each unique source is built (and the source parsed)
at most once per process and shared with CCD and the pipeline;
:meth:`ContractChecker.analyze_many` fans a batch of sources out over an
:class:`~repro.core.executor.Executor` (serial, thread, or process).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.registry import all_queries, queries_for_categories, query_by_id
from repro.core.artifacts import ArtifactStore, ArtifactStoreSpec, process_local_store
from repro.core.executor import Executor
from repro.cpg.builder import build_cpg
from repro.cpg.graph import CPGGraph
from repro.query import QueryContext, QueryTimeout
from repro.solidity.errors import SolidityParseError


@dataclass
class AnalysisResult:
    """The outcome of analysing one snippet or contract."""

    findings: list[Finding] = field(default_factory=list)
    timed_out: bool = False
    parse_error: Optional[str] = None
    elapsed_seconds: float = 0.0
    graph_nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.parse_error is None

    def categories(self) -> set[DaspCategory]:
        return {finding.category for finding in self.findings}

    def query_ids(self) -> set[str]:
        return {finding.query_id for finding in self.findings}


class ContractChecker:
    """Analyse Solidity source (snippets or full contracts) for vulnerabilities.

    Parameters
    ----------
    timeout:
        Wall-clock budget in seconds per analysed unit (the paper uses
        1,800 s per contract in the large-scale validation, Section 6.4).
    max_flow_depth:
        Bound on explored data-flow/control-flow path lengths.  ``None``
        (default) is the unbounded phase-1 configuration; a finite value
        reproduces the phase-2 "path reduction" fallback (Section 6.3).
    store:
        Optional shared :class:`~repro.core.artifacts.ArtifactStore`; when
        set, snippet-mode analyses reuse the cached AST/CPG of each unique
        source instead of re-parsing and re-translating it.
    """

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.timeout = timeout
        self.max_flow_depth = max_flow_depth
        self.store = store

    # -- public API ---------------------------------------------------------------
    def analyze(
        self,
        source: str,
        *,
        snippet: bool = True,
        categories: Optional[Iterable[DaspCategory]] = None,
        query_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
    ) -> AnalysisResult:
        """Analyse ``source`` and return an :class:`AnalysisResult`.

        ``categories`` or ``query_ids`` restrict the executed queries — the
        validation phase of the study reruns only the query that originally
        flagged the snippet (Section 6.3).
        """
        result = AnalysisResult()
        try:
            if self.store is not None and snippet:
                # full-contract mode bypasses the store: artifacts are
                # cached for the tolerant snippet grammar only
                graph = self.store.get(source).graph
            else:
                graph = build_cpg(source, snippet=snippet)
        except SolidityParseError as exc:
            result.parse_error = str(exc)
            return result
        except RecursionError:
            result.parse_error = "recursion limit exceeded while parsing"
            return result
        return self.analyze_graph(
            graph, categories=categories, query_ids=query_ids,
            timeout=timeout, max_flow_depth=max_flow_depth, result=result,
        )

    def analyze_graph(
        self,
        graph: CPGGraph,
        *,
        categories: Optional[Iterable[DaspCategory]] = None,
        query_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
        result: Optional[AnalysisResult] = None,
    ) -> AnalysisResult:
        """Run the selected queries against an already-built CPG."""
        if result is None:
            result = AnalysisResult()
        result.graph_nodes = len(graph)
        ctx = QueryContext(
            graph,
            max_flow_depth=max_flow_depth if max_flow_depth is not None else self.max_flow_depth,
            timeout=timeout if timeout is not None else self.timeout,
        )
        if query_ids is not None:
            queries = [query_by_id(query_id) for query_id in query_ids]
        else:
            queries = list(queries_for_categories(categories))
        seen: set[tuple] = set()
        for query in queries:
            try:
                findings = query.run(ctx)
            except QueryTimeout:
                result.timed_out = True
                break
            except RecursionError:
                result.timed_out = True
                break
            for finding in findings:
                key = (finding.query_id, finding.line, finding.code)
                if key in seen:
                    continue
                seen.add(key)
                result.findings.append(finding)
        result.elapsed_seconds = ctx.elapsed
        return result

    def analyze_many(
        self,
        sources: Sequence[str],
        *,
        executor: Optional[Executor] = None,
        snippet: bool = True,
        categories: Optional[Iterable[DaspCategory]] = None,
        query_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
        max_flow_depth: Optional[int] = None,
    ) -> list[AnalysisResult]:
        """Analyse a batch of sources, optionally fanning out over workers.

        .. deprecated::
            Use :meth:`repro.api.AnalysisSession.run` (or
            ``run_iter`` for streaming) with ``analyses=["ccc"]``
            instead; this shim delegates to a session wrapping this
            checker and unwraps the envelopes back to the legacy
            :class:`AnalysisResult` list, in input order.
        """
        warnings.warn(
            "ContractChecker.analyze_many is deprecated; run the 'ccc' "
            "analyzer through repro.api.AnalysisSession instead",
            DeprecationWarning, stacklevel=2)
        from repro.api import AnalysisSession

        session = AnalysisSession(store=self.store, executor=executor)
        try:
            envelopes = session.run(list(sources), analyses=["ccc"], options={"ccc": {
                "checker": self,
                "snippet": snippet,
                "categories": categories,
                "query_ids": query_ids,
                "timeout": timeout,
                "max_flow_depth": max_flow_depth,
            }})
        finally:
            session.close()
        return [envelope.payload for envelope in envelopes]

    # -- convenience ---------------------------------------------------------------
    def is_vulnerable(self, source: str, **kwargs) -> bool:
        """``True`` when at least one query reports a finding for ``source``."""
        return bool(self.analyze(source, **kwargs).findings)

    @staticmethod
    def available_queries() -> list[str]:
        return [query.query_id for query in all_queries()]


@dataclass(frozen=True)
class _AnalysisTaskSpec:
    """Picklable description of one batch-analysis configuration."""

    store_spec: Optional[ArtifactStoreSpec]
    snippet: bool = True
    categories: Optional[tuple[DaspCategory, ...]] = None
    query_ids: Optional[tuple[str, ...]] = None
    timeout: Optional[float] = None
    max_flow_depth: Optional[int] = None


def _analyze_task(spec: _AnalysisTaskSpec, source: str) -> AnalysisResult:
    """Analyse one source inside a process-backend worker."""
    store = process_local_store(spec.store_spec) if spec.store_spec is not None else None
    checker = ContractChecker(
        timeout=spec.timeout, max_flow_depth=spec.max_flow_depth, store=store)
    return checker.analyze(
        source, snippet=spec.snippet, categories=spec.categories, query_ids=spec.query_ids)
