"""User-defined vulnerability queries from a declarative, code-free DSL.

Custom queries let users extend the CCC query set over the API without
ever executing user-supplied code: a query **spec** is a small JSON
object naming one *selector* (which nodes the query starts from) and
two condition lists (*require* — every condition must hold — and
*exclude* — none may hold), all drawn from a fixed vocabulary that maps
onto the :mod:`repro.query.predicates` library the 17 built-in queries
are written against.  A spec compiles to a
:class:`~repro.ccc.queries.base.VulnerabilityQuery` subclass instance
that behaves exactly like a built-in: register it
(:func:`repro.ccc.registry.register_query`) and it participates in
``repro queries list``, ccc jobs, and workloads immediately.

Example spec::

    {
        "query_id": "custom-unguarded-selfbalance-write",
        "category": "Access Control",
        "title": "State write reachable without access control",
        "select": "state_writes",
        "require": ["parameter_influenced"],
        "exclude": ["access_controlled"]
    }

``query_id`` must start with ``custom-`` so user queries can never
shadow a built-in id.  Validation is strict: unknown keys, selectors,
conditions, or categories are rejected with :class:`QuerySpecError`.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.query import QueryContext, predicates

#: mandatory prefix of custom query ids (built-ins can never collide)
CUSTOM_QUERY_ID_PREFIX = "custom-"

#: the keys a query spec may carry
SPEC_KEYS = ("query_id", "category", "title", "select", "require", "exclude")


class QuerySpecError(ValueError):
    """A custom query spec failed validation."""


# ---------------------------------------------------------------------------
# the DSL vocabulary
# ---------------------------------------------------------------------------

def _graph_selector(enumerate_nodes: Callable) -> Callable:
    """Wrap a graph-scope enumerator into (node, enclosing function) pairs."""

    def select(ctx: QueryContext) -> Iterable:
        for node in enumerate_nodes(ctx):
            yield node, predicates.enclosing_function(ctx, node)

    return select


def _function_selector(enumerate_in: Callable) -> Callable:
    """Wrap a per-function enumerator into (node, function) pairs."""

    def select(ctx: QueryContext) -> Iterable:
        for function in predicates.functions(ctx):
            for node in enumerate_in(ctx, function):
                yield node, function

    return select


#: selector name -> generator of ``(node, function)`` pairs
SELECTORS: dict = {
    "timestamp_reads": _graph_selector(predicates.timestamp_nodes),
    "block_attributes": _graph_selector(predicates.block_attribute_nodes),
    "msg_sender_reads": _graph_selector(predicates.msg_sender_nodes),
    "msg_data_reads": _graph_selector(predicates.msg_data_nodes),
    "calls": _function_selector(predicates.calls_in),
    "external_calls": _function_selector(
        lambda ctx, function: [call for call in predicates.calls_in(ctx, function)
                               if predicates.is_external_call(ctx, call)]),
    "ether_transfers": _function_selector(
        lambda ctx, function: [call for call in predicates.calls_in(ctx, function)
                               if predicates.is_ether_transfer(ctx, call)]),
    "state_writes": _function_selector(
        lambda ctx, function: [write for write, _field
                               in predicates.state_writes_in(ctx, function)]),
    "rollbacks": _function_selector(predicates.rollbacks_in),
}

#: condition name -> predicate over ``(ctx, node, function)``
CONDITIONS: dict = {
    "external_call": lambda ctx, node, function:
        predicates.is_external_call(ctx, node),
    "ether_transfer": lambda ctx, node, function:
        predicates.is_ether_transfer(ctx, node),
    "low_level_call": lambda ctx, node, function:
        predicates.is_low_level_call(node),
    "parameter_influenced": lambda ctx, node, function:
        predicates.influenced_by_parameter(ctx, node, function),
    "access_controlled": lambda ctx, node, function:
        predicates.is_access_controlled(ctx, function, node),
}


# ---------------------------------------------------------------------------
# validation and compilation
# ---------------------------------------------------------------------------

def _condition_names(spec: dict, key: str) -> list:
    names = spec.get(key, [])
    if not isinstance(names, (list, tuple)) or any(
            not isinstance(name, str) for name in names):
        raise QuerySpecError(f"{key!r} must be a list of condition names")
    unknown = sorted(set(names) - set(CONDITIONS))
    if unknown:
        raise QuerySpecError(
            f"unknown {key} condition(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(CONDITIONS))}")
    return list(names)


def validate_query_spec(spec) -> dict:
    """Validate one wire spec into its normalized, stored form.

    Raises :class:`QuerySpecError` on any violation; never executes
    anything from the spec — it is pure data.
    """
    if not isinstance(spec, dict):
        raise QuerySpecError("query spec must be a JSON object")
    unknown = sorted(set(spec) - set(SPEC_KEYS))
    if unknown:
        raise QuerySpecError(
            f"unknown spec key(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(SPEC_KEYS)}")
    query_id = spec.get("query_id")
    if not isinstance(query_id, str) \
            or not query_id.startswith(CUSTOM_QUERY_ID_PREFIX) \
            or len(query_id) <= len(CUSTOM_QUERY_ID_PREFIX):
        raise QuerySpecError(
            f"'query_id' must be a string starting with "
            f"{CUSTOM_QUERY_ID_PREFIX!r}")
    category = spec.get("category")
    try:
        DaspCategory(category)
    except ValueError:
        raise QuerySpecError(
            f"'category' must be one of: "
            f"{', '.join(c.value for c in DaspCategory)}") from None
    title = spec.get("title")
    if not isinstance(title, str) or not title.strip():
        raise QuerySpecError("'title' must be a non-empty string")
    select = spec.get("select")
    if select not in SELECTORS:
        raise QuerySpecError(
            f"'select' must be one of: {', '.join(sorted(SELECTORS))}")
    return {
        "query_id": query_id,
        "category": category,
        "title": title.strip(),
        "select": select,
        "require": _condition_names(spec, "require"),
        "exclude": _condition_names(spec, "exclude"),
    }


class CustomQuery(VulnerabilityQuery):
    """A vulnerability query compiled from a validated DSL spec."""

    def __init__(self, spec: dict):
        self.spec = spec
        self.query_id = spec["query_id"]
        self.category = DaspCategory(spec["category"])
        self.title = spec["title"]
        self._select = SELECTORS[spec["select"]]
        self._require = [CONDITIONS[name] for name in spec["require"]]
        self._exclude = [CONDITIONS[name] for name in spec["exclude"]]

    def run(self, ctx: QueryContext) -> list[Finding]:
        """Evaluate the compiled selector and condition lists."""
        findings: list[Finding] = []
        for node, function in self._select(ctx):
            ctx.check_deadline()
            if function is None:
                continue
            if not all(condition(ctx, node, function)
                       for condition in self._require):
                continue
            if any(condition(ctx, node, function)
                   for condition in self._exclude):
                continue
            findings.append(self.finding(ctx, node, function))
        return findings


def compile_query(spec) -> CustomQuery:
    """Validate ``spec`` and compile it into a runnable query."""
    return CustomQuery(validate_query_spec(spec))


__all__ = [
    "CONDITIONS",
    "CUSTOM_QUERY_ID_PREFIX",
    "CustomQuery",
    "QuerySpecError",
    "SELECTORS",
    "SPEC_KEYS",
    "compile_query",
    "validate_query_spec",
]
