"""Arithmetic (integer over-/underflow) query (Listing 16 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates

_OVERFLOW_OPERATORS = {"+", "+=", "-", "-=", "*", "*="}
_SAFEMATH_CALL_NAMES = {"add", "sub", "mul", "div", "mod", "safeAdd", "safeSub", "safeMul",
                        "tryAdd", "trySub", "tryMul"}


class UncheckedArithmetic(VulnerabilityQuery):
    """Arithmetic on externally supplied values that can over- or underflow.

    Base pattern: an addition, subtraction, or multiplication inside a
    non-constructor function.

    Conditions of relevancy (disjunctive): the operation is influenced by a
    parameter of an externally callable function, and its result is
    persisted to a field, used in a rollback-guarding comparison, passed to
    an unresolved call, or used as a call value specifier.

    Mitigations: compilation with Solidity >= 0.8 (checked arithmetic),
    SafeMath-style guarded operations on the same values, explicit bounds
    checks (a comparison between the operands or the result appearing as a
    guard on the same path), or operations inside ``unchecked`` blocks are
    still reported while constant-only expressions are not.
    """

    query_id = "arithmetic-overflow"
    category = DaspCategory.ARITHMETIC
    title = "Arithmetic operation may overflow or underflow"

    def run(self, ctx: QueryContext) -> list[Finding]:
        version = predicates.solidity_pragma_version(ctx)
        checked_by_compiler = version is not None and version >= (0, 8)
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            if getattr(function, "visibility", "") in {"internal", "private"}:
                continue
            for node in predicates.body_nodes(ctx, function):
                ctx.check_deadline()
                if not node.has_label("BinaryOperator"):
                    continue
                operator = getattr(node, "operator_code", "")
                if operator not in _OVERFLOW_OPERATORS:
                    continue
                if checked_by_compiler and not self._in_unchecked_block(ctx, node):
                    continue
                if not self._influenced_by_external_input(ctx, node, function):
                    continue
                if not self._result_matters(ctx, node):
                    continue
                if self._is_guarded(ctx, function, node):
                    continue
                if self._uses_safemath(ctx, node):
                    continue
                findings.append(self.finding(ctx, node, function))
        return findings

    # -- relevancy -------------------------------------------------------------
    def _influenced_by_external_input(self, ctx: QueryContext, node, function) -> bool:
        for source in ctx.flow_sources(node, EdgeLabel.DFG, include_start=True):
            if source.has_label("ParamVariableDeclaration"):
                owner = predicates.enclosing_parameter_function(ctx, source)
                if owner is None:
                    return True
                if owner.has_label("ConstructorDeclaration"):
                    continue
                if getattr(owner, "visibility", "") in {"internal", "private"}:
                    continue
                return True
            if source.code in {"msg.value"}:
                return True
        return False

    def _result_matters(self, ctx: QueryContext, node) -> bool:
        for target in ctx.flow_targets(node, EdgeLabel.DFG):
            if target.has_label("FieldDeclaration"):
                return True
            if target.has_label("CallExpression") and not ctx.graph.successors(target, EdgeLabel.INVOKES):
                return True
            if target.has_label("KeyValueExpression") or target.has_label("SpecifiedExpression"):
                return True
            if target.has_label("BinaryOperator") and getattr(target, "operator_code", "") in {
                "<", ">", "<=", ">=", "=="
            }:
                for user in ctx.flow_targets(target, EdgeLabel.DFG):
                    if user.has_label("IfStatement") or user.properties.get("reverting") \
                            or user.has_label("Rollback"):
                        return True
        return False

    # -- mitigations --------------------------------------------------------------
    def _in_unchecked_block(self, ctx: QueryContext, node) -> bool:
        current = ctx.graph.ast_parent(node)
        while current is not None:
            if current.has_label("CompoundStatement") and getattr(current, "unchecked", False):
                return True
            current = ctx.graph.ast_parent(current)
        return False

    def _is_guarded(self, ctx: QueryContext, function, node) -> bool:
        """A comparison guard involving the operands or the result on the same path."""
        operands = ctx.graph.successors(node, EdgeLabel.LHS) + ctx.graph.successors(node, EdgeLabel.RHS)
        operand_roots: set[int] = set()
        for operand in operands:
            for source in ctx.flow_sources(operand, EdgeLabel.DFG, include_start=True):
                operand_roots.add(source.id)
        for guard in predicates.guard_nodes_in(ctx, function):
            sources = predicates.guard_condition_sources(ctx, guard)
            hits = sum(1 for source in sources if source.id in operand_roots)
            result_checked = any(ctx.flows_to(node, source, EdgeLabel.DFG) for source in sources
                                 if source.has_label("BinaryOperator") or source.has_label("DeclaredReferenceExpression"))
            if hits >= 2 or result_checked:
                return True
        return False

    def _uses_safemath(self, ctx: QueryContext, node) -> bool:
        """The operands already flow through SafeMath-style library calls."""
        for source in ctx.flow_sources(node, EdgeLabel.DFG, include_start=True):
            if source.has_label("CallExpression") and source.local_name in _SAFEMATH_CALL_NAMES:
                return True
        for target in ctx.flow_targets(node, EdgeLabel.DFG):
            if target.has_label("CallExpression") and target.local_name in _SAFEMATH_CALL_NAMES:
                return True
        return False


QUERIES = [UncheckedArithmetic()]
