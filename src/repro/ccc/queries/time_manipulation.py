"""Time Manipulation query (Listing 18 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


class MinerControlledTimestamp(VulnerabilityQuery):
    """Transaction outcomes that depend on the miner-chosen block timestamp.

    Base pattern: a reference to ``now`` or ``block.timestamp``.

    Conditions of relevancy (disjunctive, following Listing 18): the value
    (a) is returned to a caller, (b) flows into an unresolved/external call,
    (c) is persisted into a field, or (d) decides a branch where one of the
    branch outcomes is an external call or a rollback — i.e. the miner can
    flip which outcome happens by nudging the timestamp.
    """

    query_id = "time-manipulation-timestamp"
    category = DaspCategory.TIME_MANIPULATION
    title = "Outcome depends on the miner-controlled block timestamp"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for reference in predicates.timestamp_nodes(ctx):
            ctx.check_deadline()
            function = predicates.enclosing_function(ctx, reference)
            if function is None:
                continue
            if self._relevant(ctx, reference):
                findings.append(self.finding(ctx, reference, function))
        return findings

    def _relevant(self, ctx: QueryContext, reference) -> bool:
        for target in ctx.flow_targets(reference, EdgeLabel.DFG, include_start=False):
            if target.has_label("ReturnStatement"):
                return True
            if target.has_label("FieldDeclaration"):
                return True
            if target.has_label("CallExpression") and not target.properties.get("reverting") \
                    and not ctx.graph.successors(target, EdgeLabel.INVOKES) \
                    and target.local_name not in {"keccak256", "sha3", "sha256"}:
                return True
            if target.has_label("IfStatement") or target.properties.get("reverting") \
                    or target.has_label("Rollback"):
                for follower in ctx.eog_successors(target):
                    if follower.has_label("Rollback"):
                        return True
                    if follower.has_label("CallExpression") and predicates.is_external_call(ctx, follower):
                        return True
        return False


QUERIES = [MinerControlledTimestamp()]
