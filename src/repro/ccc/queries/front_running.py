"""Front Running query (Listing 14 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


class MinerReplayableBenefit(VulnerabilityQuery):
    """A transaction whose benefit any observer (e.g. a miner) can claim first.

    Base pattern (disjunctive): inside a non-constructor function either
    (a) ``msg.sender`` is stored into contract state where the stored value
    does not otherwise depend on the caller (first-come-first-served
    registration of a beneficiary), or (b) ether is paid out to
    ``msg.sender`` where the amount does not depend on caller-specific
    state.

    Mitigation: a guard on the path that depends on ``msg.sender`` (or on
    caller-keyed state such as ``balances[msg.sender]``) restricts who can
    obtain the benefit, so the transaction is not profitably replayable.
    """

    query_id = "front-running-replayable-benefit"
    category = DaspCategory.FRONT_RUNNING
    title = "Beneficial effect can be claimed by whoever gets their transaction mined first"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        sender_nodes = predicates.msg_sender_nodes(ctx)
        for function in predicates.functions(ctx, include_constructors=False):
            if getattr(function, "visibility", "") in {"internal", "private"}:
                continue
            candidate = self._stored_beneficiary(ctx, function, sender_nodes) \
                or self._payout_to_sender(ctx, function)
            if candidate is None:
                continue
            if self._caller_restricted(ctx, function, candidate):
                continue
            findings.append(self.finding(ctx, candidate, function))
        return findings

    # -- base patterns -----------------------------------------------------------
    def _stored_beneficiary(self, ctx: QueryContext, function, sender_nodes):
        """``someField = msg.sender`` style assignments guarded only by payment."""
        for write, field in predicates.state_writes_in(ctx, function):
            if not write.has_label("BinaryOperator") or getattr(write, "operator_code", "") != "=":
                continue
            rhs_nodes = ctx.graph.successors(write, EdgeLabel.RHS)
            stores_sender = any(
                rhs.code == "msg.sender" or predicates.flows_from_any(ctx, sender_nodes, rhs)
                for rhs in rhs_nodes
            )
            if not stores_sender:
                continue
            type_names = [t.name for t in ctx.graph.successors(field, EdgeLabel.TYPE)]
            if "address" not in type_names:
                continue
            # relevancy: the field gates a later benefit (compared or paid out)
            if self._field_gates_benefit(ctx, field):
                return write
        return None

    def _field_gates_benefit(self, ctx: QueryContext, field) -> bool:
        for target in ctx.flow_targets(field, EdgeLabel.DFG):
            if target.has_label("CallExpression") and predicates.is_ether_transfer(ctx, target):
                return True
            if target.has_label("BinaryOperator") and getattr(target, "operator_code", "") in {"==", "!="}:
                return True
        return False

    def _payout_to_sender(self, ctx: QueryContext, function):
        """``msg.sender.transfer(x)`` where ``x`` does not depend on caller state."""
        for call in predicates.calls_in(ctx, function):
            if not predicates.is_ether_transfer(ctx, call):
                continue
            base = predicates.call_base(ctx, call)
            if base is None or base.code not in {"msg.sender", "payable(msg.sender)"}:
                continue
            values = predicates.call_value_expressions(ctx, call)
            if not values:
                continue
            function_nodes = {node.id for node in predicates.body_nodes(ctx, function)}
            caller_specific = False
            for value in values:
                for source in ctx.flow_sources(value, EdgeLabel.DFG, include_start=True):
                    if source.has_label("SubscriptExpression") and "msg.sender" in (source.code or ""):
                        caller_specific = True
                    if source.code == "msg.value" and source.id in function_nodes:
                        # only a payment made in the same transaction makes the
                        # payout caller-specific; msg.value captured elsewhere
                        # (e.g. in the constructor) does not
                        caller_specific = True
            if not caller_specific:
                return call
        return None

    # -- mitigation ------------------------------------------------------------------
    def _caller_restricted(self, ctx: QueryContext, function, target) -> bool:
        for guard in predicates.guard_nodes_in(ctx, function):
            if not predicates.guard_dominates(ctx, function, guard, target):
                continue
            sources = predicates.guard_condition_sources(ctx, guard)
            for source in sources:
                if source.code == "msg.sender":
                    return True
                if source.has_label("SubscriptExpression") and "msg.sender" in (source.code or ""):
                    return True
        return False


QUERIES = [MinerReplayableBenefit()]
