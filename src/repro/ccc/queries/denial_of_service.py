"""Denial of Service queries (Listings 8, 9, 11, 13 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates

_LOOP_LABELS = ("ForStatement", "WhileStatement", "DoStatement", "ForEachStatement")


class ExternalCallBlocksTransfers(VulnerabilityQuery):
    """External call whose failure prevents later ether transfers (Listing 8).

    Base pattern: an ether-moving external call followed on the EOG by
    another ether-moving call.  Relevancy: for ``transfer`` (which reverts on
    failure) the ordering alone is the issue; for ``send``/``call`` the
    finding requires that no alternative path avoids the second call.
    """

    query_id = "dos-call-blocks-transfer"
    category = DaspCategory.DENIAL_OF_SERVICE
    title = "Failure of an external call can block subsequent transfers"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            calls = [call for call in predicates.calls_in(ctx, function)
                     if call.local_name in {"transfer", "send", "call"}]
            if len(calls) < 2:
                continue
            for first in calls:
                ctx.check_deadline()
                followers = [other for other in calls if other is not first
                             and ctx.eog_reaches(first, other)]
                if not followers:
                    continue
                if first.local_name in {"send", "call"}:
                    # the result may be checked, making the follow-up avoidable
                    if self._failure_is_handled(ctx, first, followers):
                        continue
                # the recipient of the first call must be distinct from the sender
                # (sending to msg.sender twice is a self-DoS only)
                findings.append(self.finding(ctx, first, function))
                break
        return findings

    def _failure_is_handled(self, ctx: QueryContext, call, followers) -> bool:
        for user in ctx.flow_targets(call, EdgeLabel.DFG):
            if user.has_label("IfStatement") or user.properties.get("reverting"):
                return True
        return False


class ExternalCallBlocksStateChange(VulnerabilityQuery):
    """External call whose failure prevents a required state change (Listing 9)."""

    query_id = "dos-call-blocks-state"
    category = DaspCategory.DENIAL_OF_SERVICE
    title = "Failure of an external call can permanently block a state change"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            writes = predicates.state_writes_in(ctx, function)
            if not writes:
                continue
            for call in predicates.calls_in(ctx, function):
                ctx.check_deadline()
                if call.local_name not in {"transfer", "send"}:
                    continue
                blocked = [(write, field) for write, field in writes if ctx.eog_reaches(call, write)]
                if not blocked:
                    continue
                # mitigation: the same field can be written from another
                # function without passing through the external call
                if all(self._written_elsewhere(ctx, function, field) for _, field in blocked):
                    continue
                findings.append(self.finding(ctx, call, function))
                break
        return findings

    def _written_elsewhere(self, ctx: QueryContext, function, field) -> bool:
        for edge in ctx.graph.in_edges(field, EdgeLabel.DFG):
            if edge.properties.get("kind") != "write":
                continue
            other = predicates.enclosing_function(ctx, edge.source)
            if other is not None and other is not function and not other.has_label("ConstructorDeclaration"):
                return True
        return False


class AttackerControlledExpensiveLoop(VulnerabilityQuery):
    """Loops whose gas cost an attacker can inflate (Listing 11).

    Base pattern: a loop whose body writes persistent state or performs
    unresolved calls.  Relevancy: the loop bound is a large literal, is
    influenced by a caller-supplied parameter, or iterates over a dynamic
    array field whose length callers can grow.
    """

    query_id = "dos-expensive-loop"
    category = DaspCategory.DENIAL_OF_SERVICE
    title = "Loop with attacker-controllable bound performs expensive operations"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for loop in self._loops(ctx):
            ctx.check_deadline()
            function = predicates.enclosing_function(ctx, loop)
            if function is None or function.has_label("ConstructorDeclaration"):
                continue
            if not self._expensive_body(ctx, loop):
                continue
            if not self._attacker_controlled_bound(ctx, loop, function):
                continue
            findings.append(self.finding(ctx, loop, function))
        return findings

    def _loops(self, ctx: QueryContext):
        result = []
        for label in _LOOP_LABELS:
            result.extend(ctx.graph.nodes_by_label(label))
        return result

    def _expensive_body(self, ctx: QueryContext, loop) -> bool:
        for node in ctx.graph.ast_descendants(loop, include_self=False):
            if node.has_label("BinaryOperator") and getattr(node, "operator_code", "") in {
                "=", "+=", "-=", "*=", "/=",
            }:
                if predicates.writes_to_field(ctx, node):
                    return True
            if node.has_label("UnaryOperator") and getattr(node, "operator_code", "") in {"++", "--"}:
                for operand in ctx.graph.successors(node, EdgeLabel.INPUT):
                    if predicates.field_targets_of_reference(ctx, operand):
                        return True
            if node.has_label("CallExpression") and not node.properties.get("reverting") \
                    and not ctx.graph.successors(node, EdgeLabel.INVOKES) \
                    and node.local_name not in predicates.BUILTIN_CALLS:
                return True
            if node.has_label("CallExpression") and predicates.is_ether_transfer(ctx, node):
                return True
        return False

    def _attacker_controlled_bound(self, ctx: QueryContext, loop, function) -> bool:
        conditions = ctx.graph.successors(loop, EdgeLabel.CONDITION)
        for condition in conditions:
            for source in ctx.flow_sources(condition, EdgeLabel.DFG, include_start=True):
                if source.has_label("Literal") and isinstance(getattr(source, "value", None), float) \
                        and source.value > 100:
                    return True
                if source.has_label("ParamVariableDeclaration"):
                    owner = predicates.enclosing_parameter_function(ctx, source)
                    if owner is None or not owner.has_label("ConstructorDeclaration"):
                        return True
                if source.has_label("MemberExpression") and getattr(source, "member", "") == "length":
                    for base in ctx.graph.successors(source, EdgeLabel.BASE):
                        if predicates.field_targets_of_reference(ctx, base):
                            return True
                if source.has_label("FieldDeclaration") and "[" in getattr(source, "type_name", ""):
                    return True
        return False


class ClearableTransferCollection(VulnerabilityQuery):
    """Array state used for payouts that can be reassigned outside the constructor (Listing 13)."""

    query_id = "dos-clearable-collection"
    category = DaspCategory.DENIAL_OF_SERVICE
    title = "Collection backing ether transfers can be cleared or replaced"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        transfer_fields = self._fields_used_in_transfers(ctx)
        if not transfer_fields:
            return findings
        for operator in ctx.graph.nodes_by_label("BinaryOperator"):
            ctx.check_deadline()
            if getattr(operator, "operator_code", "") != "=":
                continue
            function = predicates.enclosing_function(ctx, operator)
            if function is None or function.has_label("ConstructorDeclaration"):
                continue
            for lhs in ctx.graph.successors(operator, EdgeLabel.LHS):
                # only direct reassignment of the whole collection counts
                if not lhs.has_label("DeclaredReferenceExpression") or lhs.has_label("SubscriptExpression"):
                    continue
                for field in predicates.field_targets_of_reference(ctx, lhs):
                    if field.id in transfer_fields and "[" in getattr(field, "type_name", ""):
                        findings.append(self.finding(ctx, operator, function))
        return findings

    def _fields_used_in_transfers(self, ctx: QueryContext) -> set[int]:
        result: set[int] = set()
        for call in ctx.graph.nodes_by_label("CallExpression"):
            if call.local_name not in {"transfer", "send", "call"}:
                continue
            involved = list(ctx.graph.successors(call, EdgeLabel.ARGUMENTS))
            base = predicates.call_base(ctx, call)
            if base is not None:
                involved.append(base)
            for node in involved:
                for source in ctx.flow_sources(node, EdgeLabel.DFG, include_start=True):
                    if source.has_label("FieldDeclaration"):
                        result.add(source.id)
        return result


QUERIES = [
    ExternalCallBlocksTransfers(),
    ExternalCallBlocksStateChange(),
    AttackerControlledExpensiveLoop(),
    ClearableTransferCollection(),
]
