"""The 17 vulnerability queries of CCC, one module per DASP category.

Each query follows the three-part structure of Section 4.3:

* a **base pattern** selecting candidate nodes,
* **conditions of relevancy** (disjunctive) that qualify a candidate as a
  potential vulnerability, and
* **mitigations and exceptions** (negated) that suppress a finding when
  the surrounding program prevents the issue.
"""

from repro.ccc.queries.base import VulnerabilityQuery
from repro.ccc.queries import (  # noqa: F401  (imported for registration side effects)
    access_control,
    arithmetic,
    bad_randomness,
    denial_of_service,
    front_running,
    reentrancy,
    short_addresses,
    time_manipulation,
    unchecked_calls,
    unknown_unknowns,
)

__all__ = ["VulnerabilityQuery"]
