"""Access Control queries (Listings 3, 4, 12, 19 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


class UnrestrictedAccessControlStateWrite(VulnerabilityQuery):
    """Unrestricted writes to state variables used for access control (Listing 3).

    Base pattern: a non-constructor, externally reachable function contains a
    write to a field.  Relevancy: the field is compared with ``msg.sender``
    somewhere in the unit, i.e. it acts as access-control state (an owner
    variable).  Mitigation: the write itself is protected by an
    access-control guard, or the written value is derived from the current
    owner/msg.sender comparison context (e.g. ``require(msg.sender == owner)``
    before the write).
    """

    query_id = "access-control-state-write"
    category = DaspCategory.ACCESS_CONTROL
    title = "State variable used for access control can be overwritten without authorization"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        control_fields = {field.id: field for field in predicates.fields_compared_to_sender(ctx)}
        if not control_fields:
            return findings
        for function in predicates.functions(ctx, include_constructors=False):
            if getattr(function, "visibility", "") in {"internal", "private"}:
                continue
            for write, field in predicates.state_writes_in(ctx, function):
                ctx.check_deadline()
                if field.id not in control_fields:
                    continue
                if predicates.is_access_controlled(ctx, function, write):
                    continue
                findings.append(self.finding(ctx, write, function))
        return findings


class UnprotectedSelfdestruct(VulnerabilityQuery):
    """Unrestricted access to functions that destroy the contract (Listing 4)."""

    query_id = "access-control-selfdestruct"
    category = DaspCategory.ACCESS_CONTROL
    title = "selfdestruct/suicide is reachable without access control"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            for call in predicates.calls_in(ctx, function):
                ctx.check_deadline()
                if call.local_name.upper() not in {"SELFDESTRUCT", "SUICIDE"}:
                    continue
                if not ctx.eog_reaches(function, call):
                    continue
                if predicates.is_access_controlled(ctx, function, call):
                    continue
                findings.append(self.finding(ctx, call, function))
        return findings


class DefaultProxyDelegate(VulnerabilityQuery):
    """Call delegation in a default function with unsanitised ``msg.data`` (Listing 12).

    This is the Parity-wallet pattern discussed in Section 4.4: the default
    (fallback) function forwards ``msg.data`` to a library via
    ``delegatecall`` without restricting which function selectors may be
    relayed.
    """

    query_id = "access-control-default-delegatecall"
    category = DaspCategory.ACCESS_CONTROL
    title = "Default function delegates msg.data without sanitisation"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        msg_data = [node for node in predicates.msg_data_nodes(ctx) if node.code == "msg.data"]
        for function in predicates.functions(ctx, include_constructors=False):
            if not function.is_default_function:
                continue
            for call in predicates.calls_in(ctx, function):
                ctx.check_deadline()
                if call.local_name.upper() not in {"DELEGATECALL", "CALLCODE"}:
                    continue
                arguments = ctx.graph.successors(call, EdgeLabel.ARGUMENTS)
                uses_msg_data = any(
                    argument.code == "msg.data" or predicates.flows_from_any(ctx, msg_data, argument)
                    for argument in arguments
                )
                if not uses_msg_data:
                    continue
                # the call must be able to complete (not guaranteed to roll back)
                if not self._completes(ctx, function, call):
                    continue
                # mitigation: a guard depending on msg.data content before the call
                if predicates.has_guard_depending_on(ctx, function, call, msg_data):
                    continue
                findings.append(self.finding(ctx, call, function))
        return findings

    @staticmethod
    def _completes(ctx: QueryContext, function, call) -> bool:
        for terminal in ctx.graph.terminal_nodes(call, EdgeLabel.EOG):
            if not terminal.has_label("Rollback"):
                return True
        return ctx.eog_reaches(function, call)


class TxOriginAuthentication(VulnerabilityQuery):
    """Uses of ``tx.origin`` for authorization branching (Listing 19)."""

    query_id = "access-control-tx-origin"
    category = DaspCategory.ACCESS_CONTROL
    title = "tx.origin is used in an authorization decision"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        origins = [node for node in ctx.graph.nodes_by_label("MemberExpression") if node.code == "tx.origin"]
        for origin in origins:
            ctx.check_deadline()
            function = predicates.enclosing_function(ctx, origin)
            if function is None:
                continue
            for target in ctx.flow_targets(origin, EdgeLabel.DFG, include_start=True):
                if not (target.has_label("BinaryOperator")
                        and getattr(target, "operator_code", "") in {"==", "!="}):
                    continue
                # relevancy: the comparison also involves persisted state and
                # influences branching
                sources = ctx.flow_sources(target, EdgeLabel.DFG, include_start=True)
                touches_state = any(source.has_label("FieldDeclaration") for source in sources)
                branches = any(
                    user.has_label("IfStatement") or user.properties.get("reverting")
                    for user in ctx.flow_targets(target, EdgeLabel.DFG)
                )
                if touches_state and branches:
                    findings.append(self.finding(ctx, origin, function))
                    break
        return findings


QUERIES = [
    UnrestrictedAccessControlStateWrite(),
    UnprotectedSelfdestruct(),
    DefaultProxyDelegate(),
    TxOriginAuthentication(),
]
