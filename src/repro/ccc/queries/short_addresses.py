"""Short Addresses queries (Listings 5 and 6 of the paper)."""

from __future__ import annotations

from typing import Optional

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


def _address_before_trailing_amount(ctx: QueryContext, function) -> Optional[tuple]:
    """Return ``(address_param, amount_param)`` when the signature is paddable.

    The classic short-address attack requires an ``address`` parameter that
    is followed by a (trailing) value parameter: a truncated address shifts
    the calldata so the amount gains trailing zero bytes.
    """
    parameters = predicates.parameters_of(ctx, function)
    if len(parameters) < 2:
        return None
    address_params = [
        parameter for parameter in parameters
        if "address" in [t.name for t in ctx.graph.successors(parameter, EdgeLabel.TYPE)]
    ]
    if not address_params:
        return None
    last = parameters[-1]
    if last in address_params:
        return None
    for address_param in address_params:
        if getattr(address_param, "index", 0) < getattr(last, "index", 0):
            return address_param, last
    return None


def _msg_data_length_checked(ctx: QueryContext, function, target) -> bool:
    """Mitigation shared by both queries: a guard on ``msg.data.length``."""
    length_nodes = [node for node in ctx.graph.nodes_by_label("MemberExpression")
                    if node.code == "msg.data.length"]
    if not length_nodes:
        return False
    return predicates.has_guard_depending_on(ctx, function, target, length_nodes)


class ShortAddressCall(VulnerabilityQuery):
    """Address-padding issues at transfer call sites (Listing 5)."""

    query_id = "short-address-call"
    category = DaspCategory.SHORT_ADDRESSES
    title = "Trailing amount parameter reaches a transfer without calldata length check"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            if getattr(function, "visibility", "") in {"internal", "private"}:
                continue
            pair = _address_before_trailing_amount(ctx, function)
            if pair is None:
                continue
            _, amount_param = pair
            for call in predicates.calls_in(ctx, function):
                ctx.check_deadline()
                if not predicates.is_ether_transfer(ctx, call):
                    continue
                sinks = predicates.call_value_expressions(ctx, call) \
                    + ctx.graph.successors(call, EdgeLabel.ARGUMENTS)
                reaches = any(ctx.flows_to(amount_param, sink, EdgeLabel.DFG) for sink in sinks)
                if not reaches:
                    continue
                if _msg_data_length_checked(ctx, function, call):
                    continue
                findings.append(self.finding(ctx, call, function))
                break
        return findings


class ShortAddressStateWrite(VulnerabilityQuery):
    """Address-padding issues on state writes (Listing 6)."""

    query_id = "short-address-state-write"
    category = DaspCategory.SHORT_ADDRESSES
    title = "Trailing amount parameter is persisted without calldata length check"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            if getattr(function, "visibility", "") in {"internal", "private"}:
                continue
            pair = _address_before_trailing_amount(ctx, function)
            if pair is None:
                continue
            address_param, amount_param = pair
            write_node = None
            for write, _field in predicates.state_writes_in(ctx, function):
                if ctx.flows_to(amount_param, write, EdgeLabel.DFG):
                    write_node = write
                    break
            if write_node is None:
                continue
            if _msg_data_length_checked(ctx, function, write_node):
                continue
            findings.append(self.finding(ctx, address_param, function))
        return findings


QUERIES = [ShortAddressCall(), ShortAddressStateWrite()]
