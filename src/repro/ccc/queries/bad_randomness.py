"""Bad Randomness query (Listing 7 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates

_RANDOM_HINTS = ("rand", "lottery", "lucky", "winner", "roll", "seed")


class PredictableRandomness(VulnerabilityQuery):
    """Usage of miner-controllable block attributes as a source of randomness.

    Base pattern: a reference to ``block.timestamp``, ``block.number``,
    ``block.difficulty``, ``block.coinbase``, ``blockhash(..)`` or ``now``.

    Conditions of relevancy (disjunctive): the value is returned by a
    function whose code suggests random-number generation, it is persisted
    into a write-only field (a stored seed), it feeds the value/target of an
    ether transfer, or it decides a branch that guards an ether transfer or
    a rollback.

    Mitigations: uses where the block attribute only feeds event emission or
    pure bookkeeping (e.g. recording a deadline that is also compared with
    user input) are not reported.
    """

    query_id = "bad-randomness-block-attributes"
    category = DaspCategory.BAD_RANDOMNESS
    title = "Block attribute is used as a source of randomness"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for reference in predicates.block_attribute_nodes(ctx):
            ctx.check_deadline()
            if reference.code in {"block.timestamp", "now"} and not self._randomness_context(ctx, reference):
                # plain timestamp reads are handled by the Time Manipulation query
                continue
            function = predicates.enclosing_function(ctx, reference)
            if function is None:
                continue
            if self._relevant(ctx, reference, function):
                findings.append(self.finding(ctx, reference, function))
        return findings

    def _randomness_context(self, ctx: QueryContext, reference) -> bool:
        function = predicates.enclosing_function(ctx, reference)
        haystacks = [reference.code or ""]
        if function is not None:
            haystacks.append(function.name or "")
            haystacks.append((function.code or "")[:400])
        for target in ctx.flow_targets(reference, EdgeLabel.DFG):
            if target.has_label("CallExpression") and target.local_name in {"keccak256", "sha3", "sha256"}:
                return True
        text = " ".join(haystacks).lower()
        return any(hint in text for hint in _RANDOM_HINTS) or "%" in text

    def _relevant(self, ctx: QueryContext, reference, function) -> bool:
        # (a) returned from a randomness-related function
        for target in ctx.flow_targets(reference, EdgeLabel.DFG):
            if target.has_label("ReturnStatement") and any(
                hint in (function.name or "").lower() or hint in (function.code or "").lower()
                for hint in _RANDOM_HINTS
            ):
                return True
        # (b) persisted into a field that is never read onwards (a stored seed)
        for target in ctx.flow_targets(reference, EdgeLabel.DFG):
            if target.has_label("FieldDeclaration"):
                reads = [edge for edge in ctx.graph.out_edges(target, EdgeLabel.DFG)
                         if edge.properties.get("kind") == "read"]
                if not reads:
                    return True
        # (c) influences an ether transfer: value, target, or a guarding branch
        for target in ctx.flow_targets(reference, EdgeLabel.DFG, include_start=True):
            if target.has_label("CallExpression") and predicates.is_ether_transfer(ctx, target):
                return True
            if target.has_label("KeyValueExpression") or target.has_label("SpecifiedExpression"):
                return True
            if target.has_label("IfStatement") or target.properties.get("reverting"):
                for node in ctx.eog_successors(target):
                    if node.has_label("CallExpression") and predicates.is_ether_transfer(ctx, node):
                        return True
                    if node.has_label("Rollback") and self._randomness_context(ctx, reference):
                        return True
        # (d) hashed into a modulo-style winner selection
        if self._randomness_context(ctx, reference):
            for target in ctx.flow_targets(reference, EdgeLabel.DFG):
                if target.has_label("BinaryOperator") and getattr(target, "operator_code", "") == "%":
                    return True
                if target.has_label("CallExpression") and target.local_name in {"keccak256", "sha3", "sha256"}:
                    return True
        return False


QUERIES = [PredictableRandomness()]
