"""Unchecked Low Level Calls query (Listing 10 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates

_LOW_LEVEL = {"call", "callcode", "delegatecall", "send"}


class UncheckedLowLevelCall(VulnerabilityQuery):
    """Critical calls whose boolean result is ignored.

    Base pattern: a low-level call (``call``, ``callcode``, ``delegatecall``,
    ``send``, including ``.value()``/``.gas()`` wrapped forms).

    Conditions of relevancy: the execution continues normally after the call
    (the path does not end in a rollback immediately) and the call result
    neither reaches a return statement nor influences any branching node.

    Mitigations: results consumed by ``require(...)``/``assert(...)``, used
    in an ``if``, assigned into a variable that later guards a branch, or
    calls that are the last expression of a ``return`` are not reported.
    """

    query_id = "unchecked-low-level-call"
    category = DaspCategory.UNCHECKED_LOW_LEVEL_CALLS
    title = "Return value of a low-level call is not checked"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for call in ctx.graph.nodes_by_label("CallExpression"):
            ctx.check_deadline()
            if not self._is_low_level(ctx, call):
                continue
            function = predicates.enclosing_function(ctx, call)
            if function is None:
                continue
            if self._result_checked(ctx, call):
                continue
            findings.append(self.finding(ctx, call, function))
        return findings

    def _is_low_level(self, ctx: QueryContext, call) -> bool:
        name = call.local_name
        if name in _LOW_LEVEL:
            return True
        if name in {"value", "gas"}:
            return "call" in predicates.base_chain_names(ctx, call) \
                or "send" in predicates.base_chain_names(ctx, call)
        return False

    def _result_checked(self, ctx: QueryContext, call) -> bool:
        # an enclosing call chain means this node is not the outermost call
        # (e.g. the ``value`` part of ``addr.call.value(x)("")``): only check
        # the outermost call expression
        for parent in ctx.graph.predecessors(call, EdgeLabel.CALLEE):
            if parent.has_label("CallExpression"):
                return True
        for parent in ctx.graph.predecessors(call, EdgeLabel.BASE):
            if parent.has_label("CallExpression") and parent.local_name in {"value", "gas", "call", "send"}:
                return True
        for target in ctx.flow_targets(call, EdgeLabel.DFG, include_start=False):
            if target.has_label("ReturnStatement"):
                return True
            if target.has_label("IfStatement") or target.has_label("Rollback"):
                return True
            if target.has_label("CallExpression") and target.properties.get("reverting"):
                return True
            if target.has_label("BinaryOperator") and getattr(target, "operator_code", "") in {"==", "!="}:
                return True
            if target.has_label("UnaryOperator") and getattr(target, "operator_code", "") == "!":
                return True
            if target.has_label("VariableDeclaration") or target.has_label("TupleExpression"):
                # assigned result: treat as checked when it later reaches a branch
                for user in ctx.flow_targets(target, EdgeLabel.DFG):
                    if user.has_label("IfStatement") or user.properties.get("reverting") \
                            or user.has_label("Rollback"):
                        return True
        return False


QUERIES = [UncheckedLowLevelCall()]
