"""Unknown Unknowns query (Listing 15 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


class UninitializedStoragePointer(VulnerabilityQuery):
    """Writes through uninitialised storage-struct locals that alias contract state.

    Base pattern: a local variable of struct or array type, declared without
    an initialiser and without an explicit ``memory``/``calldata`` location
    (pre-0.5 Solidity defaults such locals to ``storage``, aliasing slot 0).

    Conditions of relevancy: the variable (or one of its members) is written
    inside a non-constructor function, which can silently overwrite the
    contract's first state variables.

    Mitigations: explicitly ``memory``/``calldata`` located variables,
    initialised declarations, and compilation with Solidity >= 0.5 (where
    the compiler rejects the pattern) are not reported.
    """

    query_id = "uninitialized-storage-pointer"
    category = DaspCategory.UNKNOWN_UNKNOWNS
    title = "Uninitialised storage pointer may overwrite state variables"

    def run(self, ctx: QueryContext) -> list[Finding]:
        version = predicates.solidity_pragma_version(ctx)
        if version is not None and version >= (0, 5):
            return []
        struct_names = {
            record.name for record in ctx.graph.nodes_by_label("RecordDeclaration")
            if getattr(record, "kind", "") == "struct"
        }
        findings: list[Finding] = []
        for variable in ctx.graph.nodes_by_label("VariableDeclaration"):
            ctx.check_deadline()
            if variable.has_label("ParamVariableDeclaration") or variable.has_label("FieldDeclaration"):
                continue
            if ctx.graph.successors(variable, EdgeLabel.INITIALIZER):
                continue
            storage = getattr(variable, "storage_location", "")
            if storage in {"memory", "calldata"}:
                continue
            type_name = getattr(variable, "type_name", "")
            is_aggregate = "[" in type_name or type_name.split("[")[0] in struct_names
            if not is_aggregate:
                continue
            function = predicates.enclosing_function(ctx, variable)
            if function is None or function.has_label("ConstructorDeclaration"):
                continue
            if self._is_written(ctx, variable):
                findings.append(self.finding(ctx, variable, function))
        return findings

    def _is_written(self, ctx: QueryContext, variable) -> bool:
        for edge in ctx.graph.in_edges(variable, EdgeLabel.DFG):
            if edge.properties.get("kind") == "write":
                return True
        # member writes: an assignment whose LHS base resolves to the variable
        for reference in ctx.graph.predecessors(variable, EdgeLabel.REFERS_TO):
            for parent in ctx.graph.predecessors(reference, EdgeLabel.BASE):
                for assignment in ctx.graph.predecessors(parent, EdgeLabel.LHS):
                    if assignment.has_label("BinaryOperator"):
                        return True
            for assignment in ctx.graph.predecessors(reference, EdgeLabel.LHS):
                if assignment.has_label("BinaryOperator"):
                    return True
        return False


QUERIES = [UninitializedStoragePointer()]
