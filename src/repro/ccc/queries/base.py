"""Base class and helpers shared by all vulnerability queries."""

from __future__ import annotations

from typing import Optional

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.cpg.nodes import CPGNode
from repro.query import QueryContext, predicates


class VulnerabilityQuery:
    """A single rule-based vulnerability query.

    Subclasses set :attr:`query_id`, :attr:`category`, :attr:`title` and
    implement :meth:`run`.
    """

    query_id: str = ""
    category: DaspCategory = DaspCategory.UNKNOWN_UNKNOWNS
    title: str = ""

    def run(self, ctx: QueryContext) -> list[Finding]:
        """Evaluate the query against a graph and return findings."""
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------
    def finding(self, ctx: QueryContext, node: CPGNode, function: Optional[CPGNode] = None) -> Finding:
        """Create a :class:`Finding` for ``node`` inside ``function``."""
        if function is None:
            function = predicates.enclosing_function(ctx, node)
        contract = None
        if function is not None:
            contract = predicates.record_of(ctx, function)
        function_name = function.name if function is not None and not function.is_inferred else ""
        contract_name = contract.name if contract is not None and not contract.is_inferred else ""
        return Finding(
            query_id=self.query_id,
            category=self.category,
            title=self.title,
            line=node.line,
            column=node.column,
            code=(node.code or "")[:200],
            function_name=function_name,
            contract_name=contract_name,
        )

    def __repr__(self):
        return f"<Query {self.query_id} ({self.category.value})>"
