"""Reentrancy query (Listing 17 of the paper)."""

from __future__ import annotations

from repro.ccc.dasp import DaspCategory
from repro.ccc.finding import Finding
from repro.ccc.queries.base import VulnerabilityQuery
from repro.cpg.graph import EdgeLabel
from repro.query import QueryContext, predicates


class ReentrantExternalCall(VulnerabilityQuery):
    """External call followed by a state write on an attacker-reachable target.

    Base pattern: an external call that hands over control (low-level
    ``call``/``callcode``/``delegatecall`` or an ether transfer with an
    attached value) is followed on the evaluation order graph by a write to
    contract state.

    Conditions of relevancy: the call target (the base of the member call)
    is attacker-influenceable — it originates from ``msg.sender``/
    ``tx.origin`` or from an address-typed value that is not fixed at
    construction time.

    Mitigations: emit statements are ignored; a mutex/locking pattern
    (a field that is both checked by a guard before the call and written
    before the call) suppresses the finding; ``transfer``/``send`` without
    forwarded gas are only reported when the written state is also read in a
    guard after the call.
    """

    query_id = "reentrancy-call-before-write"
    category = DaspCategory.REENTRANCY
    title = "State is modified after an external call, enabling reentrancy"

    def run(self, ctx: QueryContext) -> list[Finding]:
        findings: list[Finding] = []
        for function in predicates.functions(ctx, include_constructors=False):
            writes = predicates.state_writes_in(ctx, function)
            if not writes:
                continue
            for call in predicates.calls_in(ctx, function):
                ctx.check_deadline()
                if not self._is_reentrant_call(ctx, call):
                    continue
                if not self._attacker_reachable_target(ctx, call, function):
                    continue
                following_writes = [
                    (write, field) for write, field in writes
                    if write is not call and ctx.eog_reaches(call, write)
                ]
                if not following_writes:
                    continue
                if self._has_mutex(ctx, function, call):
                    continue
                findings.append(self.finding(ctx, call, function))
                break  # one finding per function/call pattern is enough
        return findings

    # -- base pattern -----------------------------------------------------------
    def _is_reentrant_call(self, ctx: QueryContext, call) -> bool:
        name = call.local_name
        if name in {"call", "callcode", "delegatecall"}:
            return True
        if name == "value" and "call" in predicates.base_chain_names(ctx, call):
            return True
        if name in {"transfer", "send"}:
            # only 2300 gas is forwarded; still reported by the paper's query
            # when the call precedes the state write
            return True
        # member calls on unresolved external contracts can reenter as well
        return predicates.is_external_call(ctx, call) and predicates.call_base(ctx, call) is not None

    # -- relevancy -----------------------------------------------------------------
    def _attacker_reachable_target(self, ctx: QueryContext, call, function) -> bool:
        base = predicates.call_base(ctx, call)
        if base is None:
            return False
        sources = ctx.flow_sources(base, EdgeLabel.DFG, include_start=True)
        for source in sources:
            if source.code in {"msg.sender", "tx.origin"}:
                return True
            if source.has_label("ParamVariableDeclaration"):
                owner = predicates.enclosing_parameter_function(ctx, source)
                if owner is None or not owner.has_label("ConstructorDeclaration"):
                    return True
            if source.has_label("FieldDeclaration"):
                type_names = [t.name for t in ctx.graph.successors(source, EdgeLabel.TYPE)]
                if "address" in type_names or any(
                    t for t in ctx.graph.successors(source, EdgeLabel.TYPE)
                    if getattr(t, "is_object_type", False)
                ):
                    # the field is only safe when it is exclusively written in a constructor
                    if not self._only_written_in_constructor(ctx, source):
                        return True
        return False

    def _only_written_in_constructor(self, ctx: QueryContext, field) -> bool:
        for edge in ctx.graph.in_edges(field, EdgeLabel.DFG):
            if edge.properties.get("kind") != "write":
                continue
            function = predicates.enclosing_function(ctx, edge.source)
            if function is None or not function.has_label("ConstructorDeclaration"):
                return False
        return True

    # -- mitigation -------------------------------------------------------------------
    def _has_mutex(self, ctx: QueryContext, function, call) -> bool:
        """A locking field checked before the call and set before the call."""
        for guard in predicates.guard_nodes_in(ctx, function):
            if not predicates.guard_dominates(ctx, function, guard, call):
                continue
            guarded_fields = {
                source.id for source in predicates.guard_condition_sources(ctx, guard)
                if source.has_label("FieldDeclaration")
                and "bool" in [t.name for t in ctx.graph.successors(source, EdgeLabel.TYPE)]
            }
            if not guarded_fields:
                continue
            for write, field in predicates.state_writes_in(ctx, function):
                if field.id in guarded_fields and ctx.eog_reaches(write, call):
                    return True
        return False


QUERIES = [ReentrantExternalCall()]
