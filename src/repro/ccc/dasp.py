"""The DASP Top-10 vulnerability taxonomy used throughout the study."""

from __future__ import annotations

import enum


class DaspCategory(enum.Enum):
    """The ten categories of the Decentralized Application Security Project.

    The paper maps its 17 queries to these categories (Section 2.2) and
    reports all evaluation tables per category.
    """

    ACCESS_CONTROL = "Access Control"
    ARITHMETIC = "Arithmetic"
    BAD_RANDOMNESS = "Bad Randomness"
    DENIAL_OF_SERVICE = "Denial of Service"
    FRONT_RUNNING = "Front Running"
    REENTRANCY = "Reentrancy"
    SHORT_ADDRESSES = "Short Addresses"
    TIME_MANIPULATION = "Time Manipulation"
    UNCHECKED_LOW_LEVEL_CALLS = "Unchecked Low Level Calls"
    UNKNOWN_UNKNOWNS = "Unknown Unknowns"

    @classmethod
    def from_label(cls, label: str) -> "DaspCategory":
        """Look up a category from a human-readable label (case-insensitive)."""
        normalized = label.strip().lower().replace("_", " ").replace("-", " ")
        for category in cls:
            if category.value.lower() == normalized or category.name.lower().replace("_", " ") == normalized:
                return category
        raise ValueError(f"unknown DASP category: {label!r}")


#: The nine categories used in the SmartBugs comparison (Table 1 excludes
#: "Unknown Unknowns" / the "Other" test set, Section 4.6.1).
EVALUATED_CATEGORIES = tuple(
    category for category in DaspCategory if category is not DaspCategory.UNKNOWN_UNKNOWNS
)
