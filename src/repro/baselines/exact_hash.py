"""A normalized exact-hash clone baseline (Type I/II clones only).

Used in ablation benchmarks to quantify what the fuzzy hashing and the
order-independent matching add on top of plain normalization: an exact
hash of the normalized token stream finds identical and renamed clones but
misses every near-miss (Type III) clone.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Hashable, Iterable

from repro.ccd.normalizer import Normalizer
from repro.solidity.errors import SolidityParseError


class ExactHashCloneBaseline:
    """Exact matching on the SHA-256 of the normalized token stream."""

    name = "exact-hash-baseline"

    def __init__(self):
        self.normalizer = Normalizer()
        self._hash_to_documents: dict[str, set[Hashable]] = defaultdict(set)
        self._document_hashes: dict[Hashable, set[str]] = {}
        self.parse_failures: list[Hashable] = []

    def _function_hashes(self, source: str) -> set[str]:
        unit = self.normalizer.normalize(source)
        hashes = set()
        for contract in unit.contracts:
            for function in contract.functions:
                tokens = list(function.tokens)
                # drop the contract/library header the normalizer attaches to
                # the first function so bare-function queries still match
                if len(tokens) >= 2 and tokens[0] in {"contract", "library"}:
                    tokens = tokens[2:]
                if not tokens:
                    continue
                digest = hashlib.sha256(" ".join(tokens).encode("utf-8")).hexdigest()
                hashes.add(digest)
        return hashes

    def add_document(self, document_id: Hashable, source: str) -> bool:
        try:
            hashes = self._function_hashes(source)
        except (SolidityParseError, RecursionError):
            self.parse_failures.append(document_id)
            return False
        if not hashes:
            return False
        self._document_hashes[document_id] = hashes
        for digest in hashes:
            self._hash_to_documents[digest].add(document_id)
        return True

    def add_corpus(self, documents: Iterable[tuple[Hashable, str]]) -> int:
        return sum(1 for document_id, source in documents if self.add_document(document_id, source))

    def __len__(self) -> int:
        return len(self._document_hashes)

    def find_clones(self, source: str) -> list[Hashable]:
        """Documents sharing at least one exactly matching normalized function."""
        try:
            hashes = self._function_hashes(source)
        except (SolidityParseError, RecursionError):
            return []
        result: set[Hashable] = set()
        for digest in hashes:
            result.update(self._hash_to_documents.get(digest, ()))
        return sorted(result, key=str)
