"""Simplified baseline tools used as comparators in the evaluation.

The paper compares CCC against eight third-party analysers (Table 1) and
CCD against SmartEmbed (Table 3).  Re-implementing symbolic-execution
engines is out of scope for this reproduction; instead this package
provides representative, simplified baselines whose behaviour preserves
the *shape* of the comparison:

* :class:`~repro.baselines.smartcheck.SmartCheckBaseline` — a lexical
  XPath-style rule matcher over raw source (high precision on simple
  patterns, narrow category coverage, requires no semantic reasoning),
* :class:`~repro.baselines.smartembed.SmartEmbedBaseline` — a structural
  code-embedding clone detector (bag of AST-derived features + cosine
  similarity) that requires complete, parsable contracts,
* :class:`~repro.baselines.exact_hash.ExactHashCloneBaseline` — a
  normalized exact-hash clone detector (Type I/II only).
"""

from repro.baselines.exact_hash import ExactHashCloneBaseline
from repro.baselines.smartcheck import SmartCheckBaseline
from repro.baselines.smartembed import SmartEmbedBaseline

__all__ = ["ExactHashCloneBaseline", "SmartCheckBaseline", "SmartEmbedBaseline"]
