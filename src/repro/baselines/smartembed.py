"""A SmartEmbed-style structural code-embedding clone detector baseline.

SmartEmbed detects clones via structural code embeddings learned from the
AST and compares contracts with a similarity threshold of 0.9.  This
baseline reproduces the *mechanism class* without learned weights: each
contract is embedded as a sparse bag of structural features (AST node-type
bigrams plus normalized token unigrams) and compared with cosine
similarity.

Two deliberate fidelity choices mirror the original tool's limitations:

* it requires complete, parsable contract code — snippet-shaped inputs
  (no contract definition) are rejected, and
* it compares whole contracts, so reordered or partially overlapping code
  scores lower than CCD's order-independent per-function matching.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.solidity import ast_nodes as ast
from repro.solidity.errors import SolidityParseError
from repro.solidity.parser import parse


@dataclass(frozen=True)
class EmbeddingMatch:
    """A clone relation reported by the baseline."""

    document_id: Hashable
    similarity: float


class SmartEmbedBaseline:
    """Bag-of-structural-features clone detector with cosine similarity."""

    name = "smartembed-baseline"

    def __init__(self, similarity_threshold: float = 0.9):
        self.similarity_threshold = similarity_threshold
        self.embeddings: dict[Hashable, Counter] = {}
        self.parse_failures: list[Hashable] = []

    # -- embedding ---------------------------------------------------------------
    def embed(self, source: str) -> Counter:
        """Embed a complete contract; raises on incomplete code."""
        unit = parse(source, snippet_mode=False)
        if not unit.contracts():
            raise SolidityParseError("SmartEmbed requires complete contract code")
        features: Counter = Counter()
        for contract in unit.contracts():
            self._collect(contract, None, features)
        return features

    def _collect(self, node: ast.Node, parent_type: Optional[str], features: Counter) -> None:
        node_type = node.node_type
        features[f"type:{node_type}"] += 1
        if parent_type is not None:
            features[f"edge:{parent_type}>{node_type}"] += 1
        if isinstance(node, ast.Identifier):
            features["ident"] += 1
        if isinstance(node, ast.MemberAccess):
            features[f"member:{node.member}"] += 1
        if isinstance(node, (ast.BinaryOperation, ast.Assignment)):
            features[f"op:{node.operator}"] += 1
        if isinstance(node, ast.FunctionDefinition):
            features[f"fn-params:{len(node.parameters)}"] += 1
            features[f"fn-shape:{len(node.parameters)}:{len(node.return_parameters)}:{len(node.modifiers)}"] += 1
        if isinstance(node, ast.Statement) and node.code:
            # a structural sketch of each statement: its own type plus the
            # types of its direct children, which is what tree-based code
            # embeddings predominantly capture
            child_types = ",".join(child.node_type for child in node.children())
            features[f"stmt:{node_type}({child_types})"] += 2
        if isinstance(node, ast.FunctionCall) and node.callee is not None:
            features[f"call:{node.callee.code[:40]}"] += 2
        for child in node.children():
            self._collect(child, node_type, features)

    # -- corpus -------------------------------------------------------------------
    def add_document(self, document_id: Hashable, source: str) -> bool:
        try:
            self.embeddings[document_id] = self.embed(source)
            return True
        except (SolidityParseError, RecursionError):
            self.parse_failures.append(document_id)
            return False

    def add_corpus(self, documents) -> int:
        return sum(1 for document_id, source in documents if self.add_document(document_id, source))

    def __len__(self) -> int:
        return len(self.embeddings)

    # -- similarity ------------------------------------------------------------------
    @staticmethod
    def cosine(first: Counter, second: Counter) -> float:
        if not first or not second:
            return 0.0
        shared = set(first) & set(second)
        dot_product = sum(first[feature] * second[feature] for feature in shared)
        norm_first = math.sqrt(sum(value * value for value in first.values()))
        norm_second = math.sqrt(sum(value * value for value in second.values()))
        if norm_first == 0 or norm_second == 0:
            return 0.0
        return dot_product / (norm_first * norm_second)

    def similarity(self, first_id: Hashable, second_id: Hashable) -> float:
        return self.cosine(self.embeddings[first_id], self.embeddings[second_id])

    def find_clones(self, document_id: Hashable,
                    similarity_threshold: Optional[float] = None) -> list[EmbeddingMatch]:
        """Indexed documents whose embedding is close to ``document_id``'s."""
        threshold = self.similarity_threshold if similarity_threshold is None else similarity_threshold
        query = self.embeddings[document_id]
        matches = []
        for other_id, embedding in self.embeddings.items():
            if other_id == document_id:
                continue
            score = self.cosine(query, embedding)
            if score >= threshold:
                matches.append(EmbeddingMatch(document_id=other_id, similarity=score))
        matches.sort(key=lambda match: -match.similarity)
        return matches

    def pairwise_clones(self, similarity_threshold: Optional[float] = None) -> dict[Hashable, list[EmbeddingMatch]]:
        return {document_id: self.find_clones(document_id, similarity_threshold)
                for document_id in self.embeddings}
