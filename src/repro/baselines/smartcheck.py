"""A SmartCheck-style lexical rule baseline for vulnerability detection.

SmartCheck translates Solidity into XML and matches XPath patterns; the
practical effect is lexical/structural pattern matching without data-flow
reasoning.  This baseline reproduces that behaviour with regular
expressions over the raw source.  It is intentionally narrow: it covers
only the categories SmartCheck-style rules can express, achieving high
precision but low recall and low category coverage — the comparison shape
reported in Table 1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.ccc.dasp import DaspCategory


@dataclass(frozen=True)
class BaselineFinding:
    """A finding reported by a baseline tool."""

    category: DaspCategory
    rule_id: str
    line: int
    excerpt: str


_RULES: list[tuple[str, DaspCategory, re.Pattern]] = [
    (
        "unchecked-send",
        DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
        re.compile(r"^\s*\w[\w\[\]\(\)\.]*\.(send|call|callcode|delegatecall)\s*[({]", re.MULTILINE),
    ),
    (
        "unchecked-call-value",
        DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
        re.compile(r"^\s*\w[\w\[\]\(\)\.]*\.call\.value\s*\(", re.MULTILINE),
    ),
    (
        "tx-origin",
        DaspCategory.ACCESS_CONTROL,
        re.compile(r"(require|if)\s*\([^)]*tx\.origin\s*[=!]="),
    ),
    (
        "timestamp-dependence",
        DaspCategory.TIME_MANIPULATION,
        re.compile(r"(if|require|while)\s*\([^)]*(block\.timestamp|\bnow\b)"),
    ),
    (
        "hardcoded-gas-loop",
        DaspCategory.DENIAL_OF_SERVICE,
        re.compile(r"for\s*\([^)]*\.length[^)]*\)\s*\{[^}]*(transfer|send|call)\(", re.DOTALL),
    ),
]


class SmartCheckBaseline:
    """Lexical rule matcher emulating SmartCheck-style detection."""

    name = "smartcheck-baseline"

    #: DASP categories this baseline can report at all.
    SUPPORTED_CATEGORIES = frozenset(
        {
            DaspCategory.UNCHECKED_LOW_LEVEL_CALLS,
            DaspCategory.ACCESS_CONTROL,
            DaspCategory.TIME_MANIPULATION,
            DaspCategory.DENIAL_OF_SERVICE,
        }
    )

    def analyze(self, source: str) -> list[BaselineFinding]:
        """Match all lexical rules against ``source``."""
        findings: list[BaselineFinding] = []
        if not source:
            return findings
        for rule_id, category, pattern in _RULES:
            for match in pattern.finditer(source):
                # skip matches whose result is obviously checked on the same line
                line_start = source.rfind("\n", 0, match.start()) + 1
                line_end = source.find("\n", match.start())
                line_text = source[line_start:line_end if line_end != -1 else None]
                if rule_id.startswith("unchecked") and re.search(
                    r"\b(require|assert|if|return|bool|=)\s*\(?", line_text.split(".")[0]
                ):
                    if re.search(r"\b(require|assert|if|return)\b|=", line_text.split("call")[0].split("send")[0]):
                        continue
                line_number = source.count("\n", 0, match.start()) + 1
                findings.append(
                    BaselineFinding(
                        category=category,
                        rule_id=rule_id,
                        line=line_number,
                        excerpt=line_text.strip()[:120],
                    )
                )
        return findings

    def categories(self, source: str) -> set[DaspCategory]:
        """The set of DASP categories reported for ``source``."""
        return {finding.category for finding in self.analyze(source)}
